"""A simple per-operator cost model (paper §4.3).

The paper's roadmap is a Cascades-style cost-based optimizer where "each
operator is associated with a cost" and the runtime choice (relational
engine vs ML runtime) is part of the decision. This model estimates
cardinalities from catalog statistics and charges per-row work per
operator, including an engine-switch penalty for crossing between the
relational engine and the tensor runtime — enough to rank realistic plan
alternatives (inline vs translate vs in-process pipeline).
"""

from __future__ import annotations

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.core.optimizer.ml_rewrites import split_pipeline
from repro.core.optimizer.rule import RuleContext
from repro.relational.expressions import CaseWhen, conjuncts
from repro.relational.statistics import (
    DEFAULT_ROW_ESTIMATE,
    DEFAULT_SELECTIVITY,
    TableStatistics,
    column_stats_resolver,
    combine_aggregate_estimate,
    combine_join_estimate,
    estimate_predicate_selectivity,
    group_keys_cardinality,
    join_condition_selectivity,
)

# Fallbacks shared with the SQL physical planner (one source of truth).
DEFAULT_ROWS = DEFAULT_ROW_ESTIMATE
FILTER_SELECTIVITY = DEFAULT_SELECTIVITY  # per-conjunct, no-stats fallback
ENGINE_SWITCH_COST = 500.0  # flat cost of handing a batch across engines


def _graph_stats_resolver(graph: IRGraph, context: RuleContext):
    """Column-statistics lookup over every scan in ``graph``.

    Built on the same :func:`column_stats_resolver` the SQL physical
    planner uses, so the cross-IR cost model prices filters and joins
    from identical catalog histograms/NDVs. Built once per costing
    pass and threaded through the recursion — rebuilding it per node
    made plan costing quadratic in plan size.
    """
    sources: list[tuple[TableStatistics, str | None]] = []
    for candidate in graph.nodes():
        if candidate.op != "ra.scan":
            continue
        stats = context.table_statistics(candidate.attrs["table"])
        if stats is not None:
            sources.append((stats, candidate.attrs.get("alias")))
    return column_stats_resolver(sources)


def estimate_rows(
    graph: IRGraph,
    node: IRNode,
    context: RuleContext,
    _resolve=None,
    _memo: dict[int, float] | None = None,
) -> float:
    """Estimated output cardinality of an IR node.

    ``_resolve``/``_memo`` are threaded through the recursion so one
    costing pass builds the stats resolver once and estimates each
    node once.
    """
    if _resolve is None:
        _resolve = _graph_stats_resolver(graph, context)
    memo = _memo if _memo is not None else {}
    cached = memo.get(node.id)
    if cached is None:
        cached = _estimate_node(graph, node, context, _resolve, memo)
        memo[node.id] = cached
    return cached


def _estimate_node(
    graph: IRGraph,
    node: IRNode,
    context: RuleContext,
    resolve,
    memo: dict[int, float],
) -> float:
    def child_rows(index: int) -> float:
        return estimate_rows(
            graph, graph.node(node.inputs[index]), context, resolve, memo
        )

    op = node.op
    if op == "ra.scan":
        rows = context.table_rows(node.attrs["table"])
        return float(rows) if rows is not None else float(DEFAULT_ROWS)
    if op == "ra.inline_table":
        return float(node.attrs["table_value"].num_rows)
    if op == "ra.filter":
        selectivity = estimate_predicate_selectivity(
            node.attrs["predicate"], resolve, default=FILTER_SELECTIVITY
        )
        return max(1.0, child_rows(0) * selectivity)
    if op == "ra.join":
        left = child_rows(0)
        right = child_rows(1)
        condition = node.attrs.get("condition")
        if condition is None:
            return left * right
        return combine_join_estimate(
            left,
            right,
            node.attrs.get("kind", "INNER"),
            join_condition_selectivity(condition, resolve),
        )
    if op == "ra.union_all":
        return sum(child_rows(i) for i in range(len(node.inputs)))
    if op == "ra.limit":
        return min(child_rows(0), float(node.attrs["count"]))
    if op == "ra.aggregate":
        groups = group_keys_cardinality(
            node.attrs.get("group_by") or (), resolve
        )
        return combine_aggregate_estimate(child_rows(0), groups)
    if op == "ra.gather":
        gather, search_context = _gather_context(node, context)
        return search_context.estimate_tree(gather)
    if op == "ra.shuffle_join":
        exchange, search_context = _exchange_context(node, context)
        return search_context.estimate_tree(exchange)
    if node.inputs:
        return child_rows(0)
    return float(DEFAULT_ROWS)


#: (node, gather, search_context) per ra.gather node, identity-checked.
#: Costing passes estimate and cost each node repeatedly; rebuilding
#: the search context (and re-fetching table statistics) every time
#: would multiply planning latency for distributed plans.
_GATHER_CONTEXTS: dict[int, tuple] = {}
_GATHER_CONTEXT_CAP = 128


def _gather_context(node: IRNode, context: "RuleContext"):
    """Rebuild the logical Gather + a search context to price it.

    Gather fragments are logical subtrees, so the memo's own estimator
    and cost function price them — keeping the legacy IR coster and
    the memo consistent on distributed plans.
    """
    from repro.core.optimizer import search as memo_search

    def build():
        return memo_search.Gather(
            node.attrs["table"],
            node.attrs["fragment"],
            node.attrs["shard_key"],
            tuple(node.attrs["shard_ids"]),
            node.attrs["total_shards"],
            node.attrs.get("pruned_by", "none"),
            node.attrs.get("join", "none"),
        )

    return _priced_exchange(node, context, build)


def _exchange_context(node: IRNode, context: "RuleContext"):
    """Same as :func:`_gather_context`, for ``ra.shuffle_join`` nodes."""
    from repro.core.optimizer import search as memo_search

    def build():
        return memo_search.ShuffleJoin(
            node.attrs["left"],
            node.attrs["right"],
            node.attrs.get("kind", "INNER"),
            node.attrs["condition"],
            node.attrs["num_buckets"],
            tuple(node.attrs.get("stages") or ()),
        )

    return _priced_exchange(node, context, build)


def _priced_exchange(node: IRNode, context: "RuleContext", build):
    cached = _GATHER_CONTEXTS.get(id(node))
    if cached is not None and cached[0] is node:
        return cached[1], cached[2]
    from repro.core.optimizer import search as memo_search

    exchange = build()
    database = getattr(context, "database", None)
    search_context = memo_search.SearchContext(
        catalog=getattr(database, "catalog", None), models=database
    )
    search_context.prepare(exchange)
    if len(_GATHER_CONTEXTS) >= _GATHER_CONTEXT_CAP:
        _GATHER_CONTEXTS.clear()
    _GATHER_CONTEXTS[id(node)] = (node, exchange, search_context)
    return exchange, search_context


def _expression_cost(expression) -> float:
    """Per-row evaluation cost of a scalar expression."""
    if isinstance(expression, CaseWhen):
        return 1.0 + sum(
            _expression_cost(c) + _expression_cost(v)
            for c, v in expression.branches
        )
    children = expression.children()
    return 1.0 + sum(_expression_cost(c) for c in children)


def _pipeline_row_cost(pipeline) -> float:
    """Per-row scoring cost of an in-process pipeline."""
    transformers, predictor = split_pipeline(pipeline)
    cost = 2.0 * len(transformers)
    tree = getattr(predictor, "tree_", None)
    if tree is not None:
        return cost + tree.max_depth() * 1.5
    estimators = getattr(predictor, "estimators_", None)
    if estimators:
        return cost + sum(t.tree_.max_depth() * 1.5 for t in estimators)
    coef = getattr(predictor, "coef_", None)
    if coef is not None:
        return cost + 0.1 * len(coef)
    coefs = getattr(predictor, "coefs_", None)
    if coefs:
        return cost + 0.05 * sum(w.size for w in coefs)
    return cost + 10.0


def node_cost(
    graph: IRGraph,
    node: IRNode,
    context: RuleContext,
    _resolve=None,
    _memo: dict[int, float] | None = None,
) -> float:
    """Total (not per-row) cost of executing one node."""
    if _resolve is None:
        _resolve = _graph_stats_resolver(graph, context)
    memo = _memo if _memo is not None else {}
    rows = estimate_rows(graph, node, context, _resolve, memo)
    op = node.op
    if op in ("ra.scan", "ra.inline_table"):
        return rows * 0.1
    if op == "ra.filter":
        return rows * 0.3 * len(conjuncts(node.attrs["predicate"]))
    if op == "ra.project":
        items = node.attrs.get("items", [])
        return rows * 0.1 * sum(_expression_cost(e) for e, _ in items)
    if op == "ra.join":
        left = estimate_rows(
            graph, graph.node(node.inputs[0]), context, _resolve, memo
        )
        right = estimate_rows(
            graph, graph.node(node.inputs[1]), context, _resolve, memo
        )
        return (left + right) * 1.0 + rows * 0.5
    if op in ("ra.order_by", "ra.distinct"):
        return rows * 2.0
    if op == "ra.aggregate" and node.attrs.get("group_by"):
        # Mirrors the memo's grouped-aggregate pricing: the executor's
        # grouping loops are per input row, not per output group.
        input_rows = estimate_rows(
            graph, graph.node(node.inputs[0]), context, _resolve, memo
        )
        return input_rows * 0.6 + rows * 0.2
    if op in ("ra.limit", "ra.union_all", "ra.aggregate"):
        return rows * 0.2
    if op == "mld.pipeline":
        return ENGINE_SWITCH_COST + rows * _pipeline_row_cost(
            node.attrs["pipeline"]
        )
    if op == "mld.clustered_predictor":
        return ENGINE_SWITCH_COST + rows * 5.0
    if op == "la.tensor_graph":
        tensor_graph = node.attrs["graph"]
        per_row = 0.2 * len(tensor_graph.nodes)
        return ENGINE_SWITCH_COST + rows * per_row
    if op == "udf.python":
        return ENGINE_SWITCH_COST * 4 + rows * 20.0
    if op == "ra.gather":
        from repro.core.optimizer import search as memo_search

        gather, search_context = _gather_context(node, context)
        return memo_search.operator_cost(gather, rows, [], search_context)
    if op == "ra.shuffle_join":
        from repro.core.optimizer import search as memo_search

        exchange, search_context = _exchange_context(node, context)
        return memo_search.operator_cost(exchange, rows, [], search_context)
    if op == "ra.repartition":
        input_rows = estimate_rows(
            graph, graph.node(node.inputs[0]), context, _resolve, memo
        )
        return input_rows * 0.5
    return rows


def plan_cost(graph: IRGraph, context: RuleContext | None = None) -> float:
    """Total estimated cost of an IR plan."""
    context = context or RuleContext()
    resolve = _graph_stats_resolver(graph, context)
    memo: dict[int, float] = {}
    return sum(
        node_cost(graph, node, context, resolve, memo)
        for node in graph.topological_order()
    )
