"""A simple per-operator cost model (paper §4.3).

The paper's roadmap is a Cascades-style cost-based optimizer where "each
operator is associated with a cost" and the runtime choice (relational
engine vs ML runtime) is part of the decision. This model estimates
cardinalities from catalog statistics and charges per-row work per
operator, including an engine-switch penalty for crossing between the
relational engine and the tensor runtime — enough to rank realistic plan
alternatives (inline vs translate vs in-process pipeline).
"""

from __future__ import annotations

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.core.optimizer.ml_rewrites import split_pipeline
from repro.core.optimizer.rule import RuleContext
from repro.relational.expressions import CaseWhen, conjuncts

DEFAULT_ROWS = 10_000
FILTER_SELECTIVITY = 0.33
ENGINE_SWITCH_COST = 500.0  # flat cost of handing a batch across engines


def estimate_rows(graph: IRGraph, node: IRNode, context: RuleContext) -> float:
    """Estimated output cardinality of an IR node."""
    op = node.op
    if op == "ra.scan":
        rows = context.table_rows(node.attrs["table"])
        return float(rows) if rows is not None else float(DEFAULT_ROWS)
    if op == "ra.inline_table":
        return float(node.attrs["table_value"].num_rows)
    if op == "ra.filter":
        child = estimate_rows(graph, graph.node(node.inputs[0]), context)
        selectivity = FILTER_SELECTIVITY ** len(
            conjuncts(node.attrs["predicate"])
        )
        return max(1.0, child * selectivity)
    if op == "ra.join":
        left = estimate_rows(graph, graph.node(node.inputs[0]), context)
        right = estimate_rows(graph, graph.node(node.inputs[1]), context)
        if node.attrs.get("condition") is None:
            return left * right
        return max(left, right)
    if op == "ra.union_all":
        return sum(
            estimate_rows(graph, graph.node(i), context) for i in node.inputs
        )
    if op == "ra.limit":
        child = estimate_rows(graph, graph.node(node.inputs[0]), context)
        return min(child, float(node.attrs["count"]))
    if op == "ra.aggregate":
        child = estimate_rows(graph, graph.node(node.inputs[0]), context)
        return max(1.0, child * 0.1)
    if node.inputs:
        return estimate_rows(graph, graph.node(node.inputs[0]), context)
    return float(DEFAULT_ROWS)


def _expression_cost(expression) -> float:
    """Per-row evaluation cost of a scalar expression."""
    if isinstance(expression, CaseWhen):
        return 1.0 + sum(
            _expression_cost(c) + _expression_cost(v)
            for c, v in expression.branches
        )
    children = expression.children()
    return 1.0 + sum(_expression_cost(c) for c in children)


def _pipeline_row_cost(pipeline) -> float:
    """Per-row scoring cost of an in-process pipeline."""
    transformers, predictor = split_pipeline(pipeline)
    cost = 2.0 * len(transformers)
    tree = getattr(predictor, "tree_", None)
    if tree is not None:
        return cost + tree.max_depth() * 1.5
    estimators = getattr(predictor, "estimators_", None)
    if estimators:
        return cost + sum(t.tree_.max_depth() * 1.5 for t in estimators)
    coef = getattr(predictor, "coef_", None)
    if coef is not None:
        return cost + 0.1 * len(coef)
    coefs = getattr(predictor, "coefs_", None)
    if coefs:
        return cost + 0.05 * sum(w.size for w in coefs)
    return cost + 10.0


def node_cost(graph: IRGraph, node: IRNode, context: RuleContext) -> float:
    """Total (not per-row) cost of executing one node."""
    rows = estimate_rows(graph, node, context)
    op = node.op
    if op in ("ra.scan", "ra.inline_table"):
        return rows * 0.1
    if op == "ra.filter":
        return rows * 0.3 * len(conjuncts(node.attrs["predicate"]))
    if op == "ra.project":
        items = node.attrs.get("items", [])
        return rows * 0.1 * sum(_expression_cost(e) for e, _ in items)
    if op == "ra.join":
        left = estimate_rows(graph, graph.node(node.inputs[0]), context)
        right = estimate_rows(graph, graph.node(node.inputs[1]), context)
        return (left + right) * 1.0 + rows * 0.5
    if op in ("ra.order_by", "ra.distinct"):
        return rows * 2.0
    if op in ("ra.limit", "ra.union_all", "ra.aggregate"):
        return rows * 0.2
    if op == "mld.pipeline":
        return ENGINE_SWITCH_COST + rows * _pipeline_row_cost(
            node.attrs["pipeline"]
        )
    if op == "mld.clustered_predictor":
        return ENGINE_SWITCH_COST + rows * 5.0
    if op == "la.tensor_graph":
        tensor_graph = node.attrs["graph"]
        per_row = 0.2 * len(tensor_graph.nodes)
        return ENGINE_SWITCH_COST + rows * per_row
    if op == "udf.python":
        return ENGINE_SWITCH_COST * 4 + rows * 20.0
    return rows


def plan_cost(graph: IRGraph, context: RuleContext | None = None) -> float:
    """Total estimated cost of an IR plan."""
    context = context or RuleContext()
    return sum(
        node_cost(graph, node, context) for node in graph.topological_order()
    )
