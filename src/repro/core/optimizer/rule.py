"""Transformation-rule protocol for the cross-optimizer.

Every §4 optimization is a :class:`Rule`: it inspects an IR graph, decides
whether it applies, and performs a rewrite. Rules are applied by the
engines in :mod:`repro.core.optimizer.engine`; each application is recorded
so tests and EXPERIMENTS.md can assert which optimizations fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode


@dataclass
class RuleContext:
    """Shared services rules may consult.

    ``database`` gives access to catalog statistics (the paper's
    "data properties"); ``options`` carries optimizer knobs.
    """

    database: object | None = None
    options: dict = field(default_factory=dict)
    applied: list[str] = field(default_factory=list)

    def record(self, rule_name: str, detail: str = "") -> None:
        entry = rule_name if not detail else f"{rule_name}: {detail}"
        self.applied.append(entry)

    # -- statistics helpers ---------------------------------------------------

    def table_rows(self, table_name: str) -> int | None:
        if self.database is None:
            return None
        try:
            return self.database.table(table_name).num_rows
        except Exception:
            return None

    def table_statistics(self, table_name: str):
        """Catalog :class:`~repro.relational.statistics.TableStatistics`.

        The cross-optimizer prices plans from the same histograms and
        NDV counts the SQL-side physical planner uses; ``None`` when the
        table (or a catalog) is unavailable.
        """
        if self.database is None:
            return None
        try:
            return self.database.catalog.table_statistics(table_name)
        except Exception:
            return None

    def is_unique_column(self, table_name: str, column: str) -> bool:
        """True when every value in ``table.column`` is distinct.

        This is the data-statistics check join elimination relies on:
        an INNER equi-join against a unique key is row-preserving for
        the other side.
        """
        if self.database is None:
            return False
        try:
            table = self.database.table(table_name)
            values = table.column(column)
        except Exception:
            return False
        return len(np.unique(values)) == table.num_rows

    def column_constants(self, table_name: str) -> dict[str, float]:
        """Columns that hold a single distinct value (derived predicates).

        The paper: "using data statistics, we might observe that only
        specific unique values appear in the data"; those become facts for
        predicate-based pruning even without a WHERE clause.
        """
        if self.database is None:
            return {}
        try:
            table = self.database.table(table_name)
        except Exception:
            return {}
        from repro.relational.statistics import constant_columns

        return constant_columns(table)


class Rule:
    """Base class: subclasses implement :meth:`apply`."""

    #: Human-readable rule name (defaults to the class name).
    name: str = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        """Try to rewrite ``graph`` in place; True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<rule {self.name}>"


def filters_below(graph: IRGraph, node: IRNode) -> list[IRNode]:
    """All ra.filter nodes in the input subtree of ``node``."""
    return [
        candidate
        for candidate in graph.walk_up(node)
        if candidate.op == "ra.filter" and candidate.id != node.id
    ]
