"""Cross-optimizer engines (paper §4.3).

``HeuristicOptimizer`` is the paper's "initial version": all transformation
rules applied in a fixed order, to fixpoint. ``CostBasedOptimizer`` is a
first cut of the Cascades-style follow-up: it generates plan alternatives
by running the heuristic pipeline under different execution strategies for
the model (in-process pipeline / SQL inlining / NN translation), prices
each with the cost model, and keeps the cheapest.

Both finish with engine assignment: every IR node is tagged with the
runtime that will execute it (relational engine, tensor runtime, in-process
Python, external process, container).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import (
    ENGINE_EXTERNAL,
    ENGINE_PYTHON,
    ENGINE_RELATIONAL,
    ENGINE_TENSOR,
    OpCategory,
)
from repro.core.optimizer.cost import plan_cost
from repro.core.optimizer.rule import Rule, RuleContext
from repro.core.optimizer.rules.inlining import ModelInlining
from repro.core.optimizer.rules.nn_translation import (
    NNTranslation,
    TensorGraphConstantFolding,
)
from repro.core.optimizer.rules.predicate_pruning import PredicateBasedModelPruning
from repro.core.optimizer.rules.projection_pushdown import ModelProjectionPushdown
from repro.core.optimizer.rules.relational import (
    JoinElimination,
    MergeConsecutiveFilters,
    PruneProjectionItems,
    PushFilterBelowPredict,
    PushFilterIntoJoin,
)
from repro.core.optimizer.rules.splitting import ModelQuerySplitting


def default_rules(
    enable_splitting: bool = False,
    enable_inlining: bool = True,
    enable_nn_translation: bool = False,
    max_inline_nodes: int = 255,
) -> list[Rule]:
    """The paper-ordered rule list.

    Cross-IR information passing first (so models shrink before any
    execution-strategy choice), then operator transformations, then the
    standard relational cleanup they enable.
    """
    rules: list[Rule] = [
        MergeConsecutiveFilters(),
        PushFilterBelowPredict(),
        PushFilterIntoJoin(),
        PredicateBasedModelPruning(),
        ModelProjectionPushdown(),
    ]
    if enable_splitting:
        rules.append(ModelQuerySplitting())
    if enable_inlining:
        rules.append(ModelInlining(max_tree_nodes=max_inline_nodes))
    if enable_nn_translation:
        rules.append(NNTranslation())
    rules.extend(
        [
            TensorGraphConstantFolding(),
            PruneProjectionItems(),
            JoinElimination(),
            PushFilterIntoJoin(),
            MergeConsecutiveFilters(),
        ]
    )
    return rules


@dataclass
class OptimizationReport:
    """What the optimizer did — attached to every optimized plan."""

    applied: list[str] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0
    alternatives_considered: int = 1
    strategy: str = "heuristic"


class HeuristicOptimizer:
    """Apply rules in order, repeating until no rule fires (bounded)."""

    def __init__(self, rules: list[Rule] | None = None, max_rounds: int = 5):
        self.rules = rules if rules is not None else default_rules()
        self.max_rounds = max_rounds

    def optimize(
        self, graph: IRGraph, context: RuleContext | None = None
    ) -> tuple[IRGraph, OptimizationReport]:
        context = context or RuleContext()
        graph = graph.copy()
        report = OptimizationReport(cost_before=plan_cost(graph, context))
        for _ in range(self.max_rounds):
            fired = False
            for rule in self.rules:
                if rule.apply(graph, context):
                    fired = True
            if not fired:
                break
        assign_engines(graph)
        graph.validate()
        report.applied = list(context.applied)
        report.cost_after = plan_cost(graph, context)
        return graph, report


class CostBasedOptimizer:
    """Pick the cheapest of several heuristic plans (execution strategies).

    Alternatives differ in how model pipelines execute: kept in-process,
    inlined into SQL, or NN-translated to the tensor runtime — with
    model/query splitting optionally layered on. This mirrors the paper's
    "several plan alternatives will be considered by applying the rules in
    different orders and the best will be picked", restricted to the
    strategy choices that actually change cost class.
    """

    STRATEGIES = (
        ("in-process", dict(enable_inlining=False, enable_nn_translation=False)),
        ("inline", dict(enable_inlining=True, enable_nn_translation=False)),
        ("nn-translate", dict(enable_inlining=False, enable_nn_translation=True)),
        (
            "split+inline",
            dict(
                enable_splitting=True,
                enable_inlining=True,
                enable_nn_translation=False,
            ),
        ),
    )

    def optimize(
        self, graph: IRGraph, context: RuleContext | None = None
    ) -> tuple[IRGraph, OptimizationReport]:
        context = context or RuleContext()
        best: tuple[float, IRGraph, OptimizationReport, str] | None = None
        for strategy_name, flags in self.STRATEGIES:
            candidate_context = RuleContext(
                database=context.database, options=dict(context.options)
            )
            optimizer = HeuristicOptimizer(default_rules(**flags))
            candidate, report = optimizer.optimize(graph, candidate_context)
            cost = report.cost_after
            if best is None or cost < best[0]:
                best = (cost, candidate, report, strategy_name)
        assert best is not None
        _, chosen, report, strategy_name = best
        report.alternatives_considered = len(self.STRATEGIES)
        report.strategy = strategy_name
        context.applied.extend(report.applied)
        return chosen, report


def assign_engines(graph: IRGraph) -> None:
    """Tag every node with its execution engine (paper §5)."""
    for node in graph.nodes():
        if node.category is OpCategory.RA:
            node.engine = ENGINE_RELATIONAL
        elif node.category is OpCategory.LA:
            node.engine = ENGINE_TENSOR
        elif node.category is OpCategory.MLD:
            node.engine = ENGINE_PYTHON
        else:
            node.engine = ENGINE_EXTERNAL
