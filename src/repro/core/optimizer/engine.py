"""Cross-optimizer engines (paper §4.3).

``UnifiedOptimizer`` is the production engine: it runs the query
through the Cascades memo (:mod:`repro.core.optimizer.search`) that the
SQL physical planner also uses, so relational rewrites (pushdown, DP
join ordering) and ML rewrites (predicate-based pruning, projection
pushdown, model inlining) compete as memo rules under one cost model.
IR-level cleanup that depends on graph context (projection pruning,
join elimination, tensor constant folding) runs as a post-pass.

``HeuristicOptimizer`` remains the paper's "initial version" — all
transformation rules applied in a fixed order, to fixpoint — and is
the engine for the strategies the memo does not search (model/query
splitting, NN translation, which are opt-in flags).
``CostBasedOptimizer`` prices four strategies (memo with and without
inlining, NN translation, split+inline) and keeps the cheapest.

All engines finish with engine assignment: every IR node is tagged with
the runtime that will execute it (relational engine, tensor runtime,
in-process Python, external process, container).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import (
    ENGINE_EXTERNAL,
    ENGINE_PYTHON,
    ENGINE_RELATIONAL,
    ENGINE_TENSOR,
    OpCategory,
)
from repro.core.optimizer.cost import plan_cost
from repro.core.optimizer.rule import Rule, RuleContext
from repro.core.optimizer.rules.inlining import ModelInlining
from repro.core.optimizer.rules.nn_translation import (
    NNTranslation,
    TensorGraphConstantFolding,
)
from repro.core.optimizer.rules.predicate_pruning import PredicateBasedModelPruning
from repro.core.optimizer.rules.projection_pushdown import ModelProjectionPushdown
from repro.core.optimizer.rules.relational import (
    JoinElimination,
    MergeConsecutiveFilters,
    PruneProjectionItems,
    PushFilterBelowPredict,
    PushFilterIntoJoin,
)
from repro.core.optimizer.rules.splitting import ModelQuerySplitting


def default_rules(
    enable_splitting: bool = False,
    enable_inlining: bool = True,
    enable_nn_translation: bool = False,
    max_inline_nodes: int = 255,
) -> list[Rule]:
    """The paper-ordered rule list.

    Cross-IR information passing first (so models shrink before any
    execution-strategy choice), then operator transformations, then the
    standard relational cleanup they enable.
    """
    rules: list[Rule] = [
        MergeConsecutiveFilters(),
        PushFilterBelowPredict(),
        PushFilterIntoJoin(),
        PredicateBasedModelPruning(),
        ModelProjectionPushdown(),
    ]
    if enable_splitting:
        rules.append(ModelQuerySplitting())
    if enable_inlining:
        rules.append(ModelInlining(max_tree_nodes=max_inline_nodes))
    if enable_nn_translation:
        rules.append(NNTranslation())
    rules.extend(
        [
            TensorGraphConstantFolding(),
            PruneProjectionItems(),
            JoinElimination(),
            PushFilterIntoJoin(),
            MergeConsecutiveFilters(),
        ]
    )
    return rules


@dataclass
class OptimizationReport:
    """What the optimizer did — attached to every optimized plan.

    ``applied`` is the exploration log: every rule that fired while
    searching, whether or not its alternative won the cost race.
    ``memo`` carries the memo search counters (groups, expressions,
    pruned branches, DP subsets) when the unified engine ran.
    """

    applied: list[str] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0
    alternatives_considered: int = 1
    strategy: str = "heuristic"
    memo: dict | None = None


class HeuristicOptimizer:
    """Apply rules in order, repeating until no rule fires (bounded)."""

    def __init__(self, rules: list[Rule] | None = None, max_rounds: int = 5):
        self.rules = rules if rules is not None else default_rules()
        self.max_rounds = max_rounds

    def optimize(
        self, graph: IRGraph, context: RuleContext | None = None
    ) -> tuple[IRGraph, OptimizationReport]:
        context = context or RuleContext()
        graph = graph.copy()
        report = OptimizationReport(cost_before=plan_cost(graph, context))
        for _ in range(self.max_rounds):
            fired = False
            for rule in self.rules:
                if rule.apply(graph, context):
                    fired = True
            if not fired:
                break
        assign_engines(graph)
        graph.validate()
        report.applied = list(context.applied)
        report.cost_after = plan_cost(graph, context)
        return graph, report


class UnifiedOptimizer:
    """Cross-IR optimization through the shared Cascades memo.

    The IR graph is bridged to a logical tree
    (:func:`repro.core.optimizer.search.ir_to_logical`), searched with
    the cross-IR memo rule set (relational pushdown + DP join ordering
    + the ML rewrites), and lowered back. Rewrites that need whole-graph
    context — projection pruning, join elimination, tensor-graph
    constant folding — then run as a legacy IR post-pass. DAG-shaped
    graphs bridge too: an IR node with several consumers becomes one
    shared logical object that the memo's identity map interns into a
    single group, and lowering preserves the sharing; only graphs with
    unconvertible operators fall back to the heuristic engine.
    """

    #: Bounded rounds for the IR-level cleanup post-pass.
    MAX_POST_ROUNDS = 3

    def __init__(self, options: dict | None = None):
        self.options = dict(options or {})

    def optimize(
        self, graph: IRGraph, context: RuleContext | None = None
    ) -> tuple[IRGraph, OptimizationReport]:
        from repro.core.optimizer.search import (
            MemoOptimizer,
            PlanConversionError,
            SearchContext,
            cross_ir_rules,
            ir_to_logical,
            logical_to_ir,
        )

        context = context or RuleContext()
        cost_before = plan_cost(graph, context)
        try:
            plan = ir_to_logical(graph)
        except PlanConversionError:
            fallback = HeuristicOptimizer(
                default_rules(
                    enable_inlining=bool(
                        self.options.get("enable_inlining", True)
                    ),
                    max_inline_nodes=int(
                        self.options.get("max_inline_nodes", 255)
                    ),
                )
            )
            return fallback.optimize(graph, context)
        database = context.database
        search_context = SearchContext(
            catalog=getattr(database, "catalog", None),
            models=database,
            options=self.options,
        )
        optimizer = MemoOptimizer(cross_ir_rules(self.options), search_context)
        best, memo_report = optimizer.optimize(plan)
        optimized = logical_to_ir(best)
        context.applied.extend(memo_report.applied)
        post_rules = [
            TensorGraphConstantFolding(),
            PruneProjectionItems(),
            JoinElimination(),
            PushFilterIntoJoin(),
            MergeConsecutiveFilters(),
        ]
        for _ in range(self.MAX_POST_ROUNDS):
            fired = False
            for rule in post_rules:
                if rule.apply(optimized, context):
                    fired = True
            if not fired:
                break
        assign_engines(optimized)
        optimized.validate()
        report = OptimizationReport(
            applied=list(context.applied),
            cost_before=cost_before,
            cost_after=plan_cost(optimized, context),
            strategy="memo",
            memo=memo_report.stats.to_dict(),
        )
        return optimized, report


class CostBasedOptimizer:
    """Pick the cheapest of several optimization strategies.

    Two strategies run through the unified memo engine (with and
    without model inlining — the memo's cost competition covers the
    in-process/inline choice natively); the remaining two are the
    legacy heuristic pipelines for the strategies the memo does not
    search (NN translation, model/query splitting). All four final
    plans are priced by the same :func:`plan_cost` model and the
    cheapest wins — the paper's "several plan alternatives will be
    considered ... and the best will be picked".
    """

    LEGACY_STRATEGIES = (
        ("nn-translate", dict(enable_inlining=False, enable_nn_translation=True)),
        (
            "split+inline",
            dict(
                enable_splitting=True,
                enable_inlining=True,
                enable_nn_translation=False,
            ),
        ),
    )

    MEMO_STRATEGIES = (
        ("in-process", dict(enable_inlining=False)),
        ("inline", dict(enable_inlining=True)),
    )

    def optimize(
        self, graph: IRGraph, context: RuleContext | None = None
    ) -> tuple[IRGraph, OptimizationReport]:
        context = context or RuleContext()
        best: tuple[float, IRGraph, OptimizationReport, str] | None = None
        for strategy_name, flags in self.MEMO_STRATEGIES:
            options = dict(context.options)
            options.update(flags)
            candidate_context = RuleContext(
                database=context.database, options=options
            )
            candidate, report = UnifiedOptimizer(options).optimize(
                graph, candidate_context
            )
            cost = report.cost_after
            if best is None or cost < best[0]:
                best = (cost, candidate, report, strategy_name)
        for strategy_name, flags in self.LEGACY_STRATEGIES:
            candidate_context = RuleContext(
                database=context.database, options=dict(context.options)
            )
            optimizer = HeuristicOptimizer(default_rules(**flags))
            candidate, report = optimizer.optimize(graph, candidate_context)
            cost = report.cost_after
            if best is None or cost < best[0]:
                best = (cost, candidate, report, strategy_name)
        assert best is not None
        _, chosen, report, strategy_name = best
        report.alternatives_considered = len(self.MEMO_STRATEGIES) + len(
            self.LEGACY_STRATEGIES
        )
        report.strategy = strategy_name
        context.applied.extend(report.applied)
        return chosen, report


def assign_engines(graph: IRGraph) -> None:
    """Tag every node with its execution engine (paper §5)."""
    for node in graph.nodes():
        if node.category is OpCategory.RA:
            node.engine = ENGINE_RELATIONAL
        elif node.category is OpCategory.LA:
            node.engine = ENGINE_TENSOR
        elif node.category is OpCategory.MLD:
            node.engine = ENGINE_PYTHON
        else:
            node.engine = ENGINE_EXTERNAL
