"""Raven core: unified IR, static analysis, cross-optimizer, runtimes."""

from repro.core.raven import RavenResult, RavenSession

__all__ = ["RavenResult", "RavenSession"]
