"""The unified IR: nodes, DAG, schema inference."""

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode, OpCategory, category_of
from repro.core.ir.schema import columns_required_above, infer_schema

__all__ = [
    "IRGraph",
    "IRNode",
    "OpCategory",
    "category_of",
    "columns_required_above",
    "infer_schema",
]
