"""Schema inference over the unified IR.

Rules need to know which columns flow where (e.g. model-projection
pushdown must keep columns the rest of the query still references).
Schemas are computed on demand from the leaves up; UDF nodes propagate
their input schema plus declared outputs, since their bodies are opaque.
"""

from __future__ import annotations

from repro.errors import IRValidationError, SchemaError
from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.relational.types import Column, DataType, Schema


def infer_schema(graph: IRGraph, node: IRNode) -> Schema:
    """The output schema of ``node`` within ``graph``."""
    op = node.op
    if op == "ra.scan":
        schema: Schema = node.attrs["schema"]
        alias = node.attrs.get("alias")
        # Scan schemas are stored pre-aliased by the analyzer; detect
        # whether the prefix is already applied.
        if alias and not any(name.startswith(f"{alias}.") for name in schema.names):
            return schema.prefixed(alias)
        return schema
    if op == "ra.inline_table":
        table = node.attrs["table_value"]
        alias = node.attrs.get("alias")
        if alias:
            return table.schema.prefixed(alias)
        return table.schema
    if op in ("ra.filter", "ra.order_by", "ra.limit", "ra.distinct"):
        return infer_schema(graph, graph.node(node.inputs[0]))
    if op == "ra.project":
        child = infer_schema(graph, graph.node(node.inputs[0]))
        items = node.attrs.get("items")
        if items is None:
            # analyzer-produced "drop" projection
            return child.drop(node.attrs.get("drop", []))
        columns = []
        for expr, name in items:
            try:
                dtype = expr.output_type(child)
            except SchemaError:
                dtype = DataType.FLOAT
            columns.append(Column(name, dtype))
        return Schema(tuple(columns))
    if op == "ra.join":
        left = infer_schema(graph, graph.node(node.inputs[0]))
        right = infer_schema(graph, graph.node(node.inputs[1]))
        return left.concat(right)
    if op == "ra.union_all":
        return infer_schema(graph, graph.node(node.inputs[0]))
    if op == "ra.aggregate":
        child = infer_schema(graph, graph.node(node.inputs[0]))
        columns = []
        for expr, name in node.attrs.get("group_by", []):
            try:
                dtype = expr.output_type(child)
            except SchemaError:
                dtype = DataType.FLOAT
            columns.append(Column(name, dtype))
        for func, _arg, alias in node.attrs.get("aggregates", []):
            dtype = DataType.INT if func == "COUNT" else DataType.FLOAT
            columns.append(Column(alias, dtype))
        return Schema(tuple(columns))
    if op in ("mld.pipeline", "mld.predictor", "mld.clustered_predictor", "la.tensor_graph"):
        child = infer_schema(graph, graph.node(node.inputs[0]))
        alias = node.attrs.get("alias")
        extra = []
        for name, dtype in node.attrs.get("output_columns", ()):  # type: ignore[assignment]
            dtype = dtype if isinstance(dtype, DataType) else DataType.FLOAT
            out_name = f"{alias}.{name}" if alias else name
            extra.append(Column(out_name, dtype))
        return Schema(child.columns + tuple(extra))
    if op == "mld.transformer":
        # Featurizer output columns are positional features.
        transformer = node.attrs["transformer"]
        width = getattr(transformer, "n_features_out_", None)
        if width is None:
            return infer_schema(graph, graph.node(node.inputs[0]))
        return Schema(
            tuple(Column(f"f{i}", DataType.FLOAT) for i in range(int(width)))
        )
    if op == "udf.python":
        child = infer_schema(graph, graph.node(node.inputs[0]))
        extra = tuple(
            Column(name, dtype if isinstance(dtype, DataType) else DataType.FLOAT)
            for name, dtype in node.attrs.get("output_columns", ())
        )
        return Schema(child.columns + extra)
    raise IRValidationError(f"cannot infer schema of op {op!r}")


def columns_required_above(graph: IRGraph, node: IRNode) -> set[str] | None:
    """Unqualified column names referenced by any ancestor of ``node``.

    Returns ``None`` when an ancestor is opaque (a UDF) or implicitly
    needs all columns (bare-star projection is encoded with items, so it
    is never opaque). The caller must then keep everything.
    """
    required: set[str] = set()
    to_visit = [parent for parent in graph.parents_of(node)]
    seen: set[int] = set()
    while to_visit:
        current = to_visit.pop()
        if current.id in seen:
            continue
        seen.add(current.id)
        if current.op == "udf.python":
            return None
        for expr in _node_expressions(current):
            required.update(ref.split(".")[-1].lower() for ref in expr.columns())
        if current.op in ("mld.pipeline", "mld.predictor", "la.tensor_graph"):
            names = current.attrs.get("feature_names") or []
            required.update(n.lower() for n in names)
        if current.op == "mld.clustered_predictor":
            names = current.attrs.get("feature_names") or []
            required.update(n.lower() for n in names)
            cluster_names = current.attrs.get("cluster_feature_names") or []
            required.update(n.lower() for n in cluster_names)
        to_visit.extend(graph.parents_of(current))
    return required


def _node_expressions(node: IRNode):
    """Every scalar expression attached to an IR node."""
    attrs = node.attrs
    if node.op == "ra.filter":
        yield attrs["predicate"]
    elif node.op == "ra.project":
        for expr, _name in attrs.get("items", []):
            yield expr
    elif node.op == "ra.join":
        if attrs.get("condition") is not None:
            yield attrs["condition"]
    elif node.op == "ra.order_by":
        for expr, _asc in attrs.get("keys", []):
            yield expr
    elif node.op == "ra.aggregate":
        for expr, _name in attrs.get("group_by", []):
            yield expr
        for _func, arg, _alias in attrs.get("aggregates", []):
            if arg is not None:
                yield arg
