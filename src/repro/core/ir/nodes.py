"""Unified IR node definitions.

Raven's IR (paper §3.1) mixes four operator categories in one DAG:

* **RA** — relational algebra (scan/filter/project/join/...),
* **LA** — linear algebra (a tensor graph executed by the NN runtime),
* **MLD** — classical-ML operators and data featurizers (trees, scalers,
  one-hot encoders, whole pipelines),
* **UDF** — opaque code the static analyzer could not translate.

Nodes are lightweight records; the DAG structure and rewriting machinery
live in :mod:`repro.core.ir.graph`. Higher- and lower-level operators
coexist on purpose (an ``ml.pipeline`` node can be expanded into individual
featurizer nodes, or collapsed into a single ``la.tensor_graph``), mirroring
the paper's MLIR-style multi-level design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpCategory(enum.Enum):
    """The four operator families of the unified IR."""

    RA = "relational"
    LA = "linear_algebra"
    MLD = "ml_and_featurizers"
    UDF = "udf"


# Canonical op names. RA ops mirror the logical algebra; MLD ops wrap
# fitted estimators; LA wraps a tensor graph; UDF wraps a callable.
RA_OPS = frozenset(
    {
        "ra.scan",
        "ra.inline_table",
        "ra.filter",
        "ra.project",
        "ra.join",
        "ra.aggregate",
        "ra.order_by",
        "ra.limit",
        "ra.distinct",
        "ra.union_all",
        "ra.gather",  # distributed scatter-gather exchange (leaf)
        "ra.repartition",  # local hash exchange (key-disjoint buckets)
        "ra.shuffle_join",  # distributed hash-shuffle equi-join (leaf)
    }
)

MLD_OPS = frozenset(
    {
        "mld.pipeline",  # a whole fitted model pipeline (featurizers+predictor)
        "mld.transformer",  # one featurizer step
        "mld.predictor",  # one final estimator
        "mld.clustered_predictor",  # model-clustering dispatch (one model/cluster)
    }
)

LA_OPS = frozenset({"la.tensor_graph"})

UDF_OPS = frozenset({"udf.python"})

ALL_OPS = RA_OPS | MLD_OPS | LA_OPS | UDF_OPS


def category_of(op: str) -> OpCategory:
    """The category an op name belongs to."""
    if op in RA_OPS:
        return OpCategory.RA
    if op in MLD_OPS:
        return OpCategory.MLD
    if op in LA_OPS:
        return OpCategory.LA
    if op in UDF_OPS:
        return OpCategory.UDF
    raise ValueError(f"unknown IR op {op!r}")


# Engine assignment values (paper §5: in-process relational/tensor engines,
# out-of-process external scripts, containerized REST fallback).
ENGINE_RELATIONAL = "relational"
ENGINE_TENSOR = "tensor"
ENGINE_PYTHON = "python"
ENGINE_EXTERNAL = "external"
ENGINE_CONTAINER = "container"


@dataclass
class IRNode:
    """One operator in the unified IR DAG.

    ``inputs`` are node ids within the owning :class:`IRGraph`. ``attrs``
    carry op-specific payload (predicates, fitted models, tensor graphs,
    output column descriptors). ``engine`` is filled in by the optimizer's
    engine-assignment step.
    """

    id: int
    op: str
    inputs: list[int] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)
    engine: str | None = None

    @property
    def category(self) -> OpCategory:
        return category_of(self.op)

    def copy(self) -> "IRNode":
        return IRNode(
            self.id, self.op, list(self.inputs), dict(self.attrs), self.engine
        )

    def describe(self) -> str:
        """One-line human-readable description (used by the printer)."""
        detail = ""
        if self.op == "ra.scan":
            detail = self.attrs.get("table", "")
            alias = self.attrs.get("alias")
            if alias:
                detail += f" AS {alias}"
        elif self.op == "ra.filter":
            detail = repr(self.attrs.get("predicate"))
        elif self.op == "ra.project":
            names = [name for _, name in self.attrs.get("items", [])]
            detail = ", ".join(names)
        elif self.op == "ra.join":
            detail = self.attrs.get("kind", "INNER")
            condition = self.attrs.get("condition")
            if condition is not None:
                detail += f" ON {condition!r}"
        elif self.op == "mld.pipeline":
            pipeline = self.attrs.get("pipeline")
            if pipeline is not None:
                detail = type(pipeline).__name__
                steps = getattr(pipeline, "steps", None)
                if steps:
                    detail = "->".join(type(s).__name__ for _, s in steps)
        elif self.op in ("mld.predictor", "mld.transformer"):
            model = self.attrs.get("model") or self.attrs.get("transformer")
            detail = type(model).__name__ if model is not None else ""
        elif self.op == "mld.clustered_predictor":
            models = self.attrs.get("models", [])
            detail = f"{len(models)} cluster models"
        elif self.op == "la.tensor_graph":
            graph = self.attrs.get("graph")
            if graph is not None:
                detail = f"{len(graph.nodes)} tensor ops"
            device = self.attrs.get("device")
            if device:
                detail += f" on {device}"
        elif self.op == "udf.python":
            detail = self.attrs.get("name", "<anonymous>")
        engine = f" [{self.engine}]" if self.engine else ""
        return f"{self.op}({detail}){engine}"
