"""The unified IR DAG and its rewriting machinery.

An :class:`IRGraph` owns a set of :class:`~repro.core.ir.nodes.IRNode`
records keyed by id, with one designated output (sink). The cross-optimizer
mutates graphs through the structured operations here (insert, replace,
splice-out), which maintain edge consistency so rules stay small.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import IRValidationError
from repro.core.ir.nodes import ALL_OPS, IRNode


class IRGraph:
    """A rooted DAG of IR nodes (single sink = the query result)."""

    def __init__(self):
        self._nodes: dict[int, IRNode] = {}
        self._next_id = 0
        self.output_id: int | None = None

    # -- construction -----------------------------------------------------

    def add(self, op: str, inputs: list[int] | None = None, **attrs) -> IRNode:
        """Create a node; input ids must already exist."""
        if op not in ALL_OPS:
            raise IRValidationError(f"unknown IR op {op!r}")
        inputs = list(inputs or [])
        for input_id in inputs:
            if input_id not in self._nodes:
                raise IRValidationError(f"unknown input node id {input_id}")
        node = IRNode(self._next_id, op, inputs, attrs)
        self._nodes[node.id] = node
        self._next_id += 1
        return node

    def set_output(self, node: IRNode | int) -> None:
        node_id = node.id if isinstance(node, IRNode) else node
        if node_id not in self._nodes:
            raise IRValidationError(f"unknown node id {node_id}")
        self.output_id = node_id

    # -- access ---------------------------------------------------------------

    def node(self, node_id: int) -> IRNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise IRValidationError(f"unknown node id {node_id}") from None

    @property
    def output(self) -> IRNode:
        if self.output_id is None:
            raise IRValidationError("graph has no output set")
        return self.node(self.output_id)

    def nodes(self) -> list[IRNode]:
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def find(self, op: str) -> list[IRNode]:
        """All nodes with the given op, in topological order."""
        return [n for n in self.topological_order() if n.op == op]

    def parents_of(self, node: IRNode | int) -> list[IRNode]:
        """Nodes that consume the given node's output."""
        node_id = node.id if isinstance(node, IRNode) else node
        return [n for n in self._nodes.values() if node_id in n.inputs]

    def inputs_of(self, node: IRNode | int) -> list[IRNode]:
        node = self.node(node) if isinstance(node, int) else node
        return [self.node(i) for i in node.inputs]

    # -- traversal ----------------------------------------------------------

    def topological_order(self) -> list[IRNode]:
        """Inputs-before-consumers order over nodes reachable from the sink."""
        if self.output_id is None:
            raise IRValidationError("graph has no output set")
        visited: dict[int, int] = {}  # 0=in progress, 1=done
        order: list[IRNode] = []

        def visit(node_id: int) -> None:
            state = visited.get(node_id)
            if state == 1:
                return
            if state == 0:
                raise IRValidationError(f"cycle through node {node_id}")
            visited[node_id] = 0
            for input_id in self.node(node_id).inputs:
                visit(input_id)
            visited[node_id] = 1
            order.append(self.node(node_id))

        visit(self.output_id)
        return order

    def walk_up(self, node: IRNode) -> Iterator[IRNode]:
        """The node and all its (transitive) inputs, DFS pre-order."""
        seen: set[int] = set()
        stack = [node.id]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            current = self.node(node_id)
            yield current
            stack.extend(current.inputs)

    # -- rewriting -------------------------------------------------------

    def insert_above(self, child: IRNode, op: str, **attrs) -> IRNode:
        """Insert a new unary node between ``child`` and all its consumers."""
        parents = self.parents_of(child)
        new_node = self.add(op, [child.id], **attrs)
        for parent in parents:
            parent.inputs = [
                new_node.id if i == child.id else i for i in parent.inputs
            ]
        if self.output_id == child.id:
            self.output_id = new_node.id
        return new_node

    def insert_below(self, parent: IRNode, input_index: int, op: str, **attrs) -> IRNode:
        """Insert a new unary node on one input edge of ``parent``."""
        old_input = parent.inputs[input_index]
        new_node = self.add(op, [old_input], **attrs)
        parent.inputs[input_index] = new_node.id
        return new_node

    def replace(self, old: IRNode, new: IRNode) -> None:
        """Redirect all consumers of ``old`` to ``new``."""
        for node in self._nodes.values():
            node.inputs = [new.id if i == old.id else i for i in node.inputs]
        if self.output_id == old.id:
            self.output_id = new.id

    def splice_out(self, node: IRNode) -> None:
        """Remove a unary node, connecting its input to its consumers."""
        if len(node.inputs) != 1:
            raise IRValidationError(
                f"can only splice out unary nodes, {node.op} has "
                f"{len(node.inputs)} inputs"
            )
        child_id = node.inputs[0]
        for other in self._nodes.values():
            other.inputs = [
                child_id if i == node.id else i for i in other.inputs
            ]
        if self.output_id == node.id:
            self.output_id = child_id
        del self._nodes[node.id]

    def garbage_collect(self) -> int:
        """Drop nodes unreachable from the output; returns count removed."""
        reachable = {n.id for n in self.topological_order()}
        dead = [node_id for node_id in self._nodes if node_id not in reachable]
        for node_id in dead:
            del self._nodes[node_id]
        return len(dead)

    def copy(self) -> "IRGraph":
        clone = IRGraph()
        clone._nodes = {node_id: node.copy() for node_id, node in self._nodes.items()}
        clone._next_id = self._next_id
        clone.output_id = self.output_id
        return clone

    def rewrite_nodes(self, fn: Callable[[IRNode], None]) -> None:
        """Apply an in-place mutation to every node (topological order)."""
        for node in self.topological_order():
            fn(node)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Structural invariants: known ops, acyclic, arity sanity."""
        if self.output_id is None:
            raise IRValidationError("graph has no output set")
        for node in self._nodes.values():
            if node.op not in ALL_OPS:
                raise IRValidationError(f"unknown op {node.op!r}")
            for input_id in node.inputs:
                if input_id not in self._nodes:
                    raise IRValidationError(
                        f"node {node.id} reads missing node {input_id}"
                    )
            if node.op in ("ra.scan", "ra.inline_table") and node.inputs:
                raise IRValidationError(f"{node.op} must be a leaf")
            if node.op == "ra.join" and len(node.inputs) != 2:
                raise IRValidationError("ra.join needs exactly two inputs")
            unary_ops = {
                "ra.filter",
                "ra.project",
                "ra.order_by",
                "ra.limit",
                "ra.distinct",
                "ra.aggregate",
                "mld.pipeline",
                "mld.transformer",
                "mld.predictor",
                "mld.clustered_predictor",
                "la.tensor_graph",
                "udf.python",
            }
            if node.op in unary_ops and len(node.inputs) != 1:
                raise IRValidationError(
                    f"{node.op} needs exactly one input, has {len(node.inputs)}"
                )
        self.topological_order()  # raises on cycles

    # -- printing -------------------------------------------------------------

    def pretty(self) -> str:
        """Indented tree rendering rooted at the output."""
        lines: list[str] = []

        def render(node_id: int, depth: int, seen: set[int]) -> None:
            node = self.node(node_id)
            marker = " (shared)" if node_id in seen else ""
            lines.append("  " * depth + node.describe() + marker)
            if node_id in seen:
                return
            seen.add(node_id)
            for input_id in node.inputs:
                render(input_id, depth + 1, seen)

        render(self.output.id, 0, set())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"IRGraph(nodes={len(self._nodes)}, output={self.output_id})"
