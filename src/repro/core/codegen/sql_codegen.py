"""Runtime code generation: optimized IR -> SQL text (paper §2, §5).

Raven's Runtime Code Generator "builds a new SQL query that corresponds to
the optimized IR". RA nodes render to plain SQL; scoring nodes render to
``PREDICT(MODEL = @..., DATA = ...) WITH (...)`` table expressions;
inlined models are already plain projection expressions by the time they
get here. The emitted SQL re-parses and re-binds against the same
database, which is how the round-trip tests validate codegen.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.relational.types import DataType


def generate_sql(graph: IRGraph) -> str:
    """Render an IR plan as a SQL query string."""
    body = _render(graph, graph.output)
    return body


def _render(graph: IRGraph, node: IRNode) -> str:
    op = node.op
    if op == "ra.scan":
        table = node.attrs["table"]
        alias = node.attrs.get("alias")
        return f"SELECT * FROM {table}" + (f" AS {alias}" if alias else "")
    if op == "ra.inline_table":
        raise CodegenError(
            "inline tables have no SQL form; pass them via execute(data=...)"
        )
    if op == "ra.filter":
        child = _subquery(graph, node.inputs[0], "sq")
        predicate = node.attrs["predicate"].to_sql()
        return f"SELECT * FROM {child} WHERE {predicate}"
    if op == "ra.project":
        child = _subquery(graph, node.inputs[0], "sq")
        items = node.attrs.get("items")
        if items is None:
            raise CodegenError("cannot emit SQL for drop-style projection")
        # Output names keep their unqualified form so references above the
        # subquery (``d.pregnant``) still resolve via suffix matching.
        used: set[str] = set()
        parts = []
        for expr, name in items:
            short = _safe_name(name.split(".")[-1])
            candidate = short
            suffix = 1
            while candidate in used:
                suffix += 1
                candidate = f"{short}_{suffix}"
            used.add(candidate)
            parts.append(f"{expr.to_sql()} AS {candidate}")
        return f"SELECT {', '.join(parts)} FROM {child}"
    if op == "ra.join":
        left = _subquery(graph, node.inputs[0], "l")
        right = _subquery(graph, node.inputs[1], "r")
        kind = node.attrs.get("kind", "INNER")
        condition = node.attrs.get("condition")
        if kind == "CROSS" or condition is None:
            return f"SELECT * FROM {left} CROSS JOIN {right}"
        return (
            f"SELECT * FROM {left} {kind} JOIN {right} "
            f"ON {condition.to_sql()}"
        )
    if op == "ra.union_all":
        branches = [_render(graph, graph.node(i)) for i in node.inputs]
        return " UNION ALL ".join(branches)
    if op == "ra.order_by":
        child = _subquery(graph, node.inputs[0], "sq")
        keys = ", ".join(
            f"{expr.to_sql()} {'ASC' if ascending else 'DESC'}"
            for expr, ascending in node.attrs["keys"]
        )
        return f"SELECT * FROM {child} ORDER BY {keys}"
    if op == "ra.limit":
        child = _subquery(graph, node.inputs[0], "sq")
        return f"SELECT * FROM {child} LIMIT {node.attrs['count']}"
    if op == "ra.distinct":
        child = _subquery(graph, node.inputs[0], "sq")
        return f"SELECT DISTINCT * FROM {child}"
    if op == "ra.aggregate":
        child = _subquery(graph, node.inputs[0], "sq")
        selects = []
        groups = []
        for expr, name in node.attrs.get("group_by", []):
            selects.append(f"{expr.to_sql()} AS {_safe_name(name)}")
            groups.append(expr.to_sql())
        for func, arg, alias in node.attrs.get("aggregates", []):
            arg_sql = "*" if arg is None else arg.to_sql()
            selects.append(f"{func}({arg_sql}) AS {_safe_name(alias)}")
        sql = f"SELECT {', '.join(selects)} FROM {child}"
        if groups:
            sql += f" GROUP BY {', '.join(groups)}"
        return sql
    if op in ("mld.pipeline", "la.tensor_graph", "mld.clustered_predictor"):
        return _render_predict(graph, node)
    if op == "udf.python":
        model_ref = node.attrs.get("model_ref")
        if model_ref:
            return _render_exec_external(graph, node, model_ref)
        raise CodegenError("cannot emit SQL for an anonymous Python UDF")
    raise CodegenError(f"no SQL rendering for IR op {op!r}")


def _render_predict(graph: IRGraph, node: IRNode) -> str:
    model_ref = node.attrs.get("model_ref", "optimized_model")
    child = _subquery(graph, node.inputs[0], node.attrs.get("alias") or "d")
    outputs = node.attrs.get("output_columns", (("prediction", DataType.FLOAT),))
    with_clause = ", ".join(
        f"{name} {_sql_type(dtype)}" for name, dtype in outputs
    )
    alias = node.attrs.get("alias")
    suffix = f" AS {alias}" if alias else ""
    variable = "@" + _safe_name(model_ref.replace(":", "_").replace(".", "_"))
    return (
        f"SELECT * FROM PREDICT(MODEL = {variable}, DATA = {child}) "
        f"WITH ({with_clause}){suffix}"
    )


def _render_exec_external(graph: IRGraph, node: IRNode, model_ref: str) -> str:
    input_sql = _render(graph, graph.node(node.inputs[0]))
    escaped = input_sql.replace("'", "''")
    return (
        "EXEC sp_execute_external_script @language = 'python', "
        f"@script = '{model_ref}', @input_data_1 = '{escaped}'"
    )


def _subquery(graph: IRGraph, node_id: int, alias_hint: str) -> str:
    node = graph.node(node_id)
    if node.op == "ra.scan":
        table = node.attrs["table"]
        alias = node.attrs.get("alias")
        return f"{table} AS {alias}" if alias else table
    inner = _render(graph, node)
    return f"({inner}) AS {alias_hint}{node_id}"


def _safe_name(name: str) -> str:
    cleaned = name.replace(".", "_")
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"c_{cleaned}"
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in cleaned)


def _sql_type(dtype) -> str:
    if not isinstance(dtype, DataType):
        return "float"
    return {
        DataType.BOOL: "bit",
        DataType.INT: "bigint",
        DataType.FLOAT: "float",
        DataType.STRING: "varchar",
        DataType.BINARY: "varbinary",
    }[dtype]
