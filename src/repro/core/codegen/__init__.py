"""Runtime code generation: optimized IR back to SQL."""

from repro.core.codegen.sql_codegen import generate_sql

__all__ = ["generate_sql"]
