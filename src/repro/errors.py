"""Shared exception hierarchy for the repro package.

Every layer of the system (relational engine, ML library, tensor runtime,
Raven core) raises subclasses of :class:`ReproError`, so callers can catch
one base type at an API boundary without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors from the relational substrate."""


class SQLSyntaxError(RelationalError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(RelationalError):
    """A name in the query could not be resolved against the catalog."""


class SchemaError(RelationalError):
    """A schema is malformed or two schemas are incompatible."""


class CatalogError(RelationalError):
    """A catalog object is missing, duplicated, or otherwise invalid."""


class TransactionError(RelationalError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class ExecutionError(RelationalError):
    """A physical operator failed while executing a plan."""


# ---------------------------------------------------------------------------
# ML library
# ---------------------------------------------------------------------------


class MLError(ReproError):
    """Base class for errors from the ML substrate."""


class NotFittedError(MLError):
    """An estimator was used before ``fit`` was called."""


class ConvergenceWarningError(MLError):
    """An iterative solver failed to make progress."""


class ModelFormatError(MLError):
    """A serialized model bundle is malformed or has an unknown flavor."""


# ---------------------------------------------------------------------------
# Tensor runtime
# ---------------------------------------------------------------------------


class TensorError(ReproError):
    """Base class for errors from the tensor runtime."""


class GraphValidationError(TensorError):
    """A tensor graph is structurally invalid (cycle, dangling edge...)."""


class UnsupportedOpError(TensorError):
    """An op kind has no registered kernel or converter."""


class DeviceError(TensorError):
    """A device cannot run the requested kernel."""


# ---------------------------------------------------------------------------
# Raven core
# ---------------------------------------------------------------------------


class RavenError(ReproError):
    """Base class for errors from the Raven core (IR/analysis/optimizer)."""


class IRValidationError(RavenError):
    """The unified IR DAG violates a structural invariant."""


class StaticAnalysisError(RavenError):
    """The static analyzer could not process an input script."""


class OptimizerError(RavenError):
    """A transformation rule produced an invalid rewrite."""


class CodegenError(RavenError):
    """The runtime code generator could not emit SQL for a plan."""


class RuntimeDispatchError(RavenError):
    """No runtime (in-process/external/container) can execute an operator."""


# ---------------------------------------------------------------------------
# Serving layer
# ---------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for errors from the concurrent serving layer."""


class ParameterBindError(ServingError):
    """A prepared query was executed with missing or extra parameters."""


class ServerOverloadedError(ServingError):
    """The server's bounded admission queue rejected a request."""


class ServerClosedError(ServingError):
    """A request was submitted to a server that has been shut down."""
