"""The workload watchdog: serving traffic as the optimizer's feedback loop.

``EXPLAIN ANALYZE`` folds per-table estimate-vs-actual q-errors into
the catalog (:meth:`Catalog.q_error_summary`); plan-cache and
distributed events describe how well cached decisions are holding up.
Nothing *acted* on those signals until now. The
:class:`WorkloadWatchdog` closes the loop (ROADMAP item 4): it
subscribes to the event bus, polls the catalog's q-error summaries,
and — when a table's estimate quality drifts past a configurable
threshold — triggers ``ANALYZE`` itself. Fresh statistics bump the
table's stats epoch, which stales every cached/prepared plan over it,
so the very next request replans against reality.

Detection is deliberately conservative:

- **EWMA smoothing.** One catastrophic q-error doesn't trigger; the
  per-table exponentially weighted moving average must cross the
  threshold (``q_error_threshold``), and at least
  ``min_observations`` measurements must have been folded.
- **Hysteresis.** A table enters ``drifted`` at the threshold but only
  recovers below ``threshold * recovery_ratio`` — oscillating around
  the line cannot flap the state (and each *entry* into drifted emits
  exactly one ``watchdog.drift_detected``).
- **Per-table cooldowns.** At most one auto-ANALYZE per table per
  ``cooldown_seconds``, whatever the drift does in between — no
  ANALYZE storms. Drift while cooling down is still logged
  (``action: "cooldown"``).
- **Kill-switch.** ``auto_analyze=False`` is observe-only: every
  decision is detected, logged, and exported, but the watchdog never
  mutates the catalog.

Secondary signals — plan-cache hit rate, replan rate, and per-table
shard-prune quality (from ``distributed.gather`` events) — are tracked
under the same EWMA + hysteresis machinery but are observe-only:
re-ANALYZE cannot fix a cold cache or a bad shard layout, so they emit
``watchdog.drift_detected`` and a logged decision for the operator
(re-sharding is a future item) rather than an action.

The watchdog holds no background thread: polls piggyback on
``serving.completed`` / ``trace.completed`` events (debounced to
``poll_interval_seconds``) and tests drive :meth:`poll` directly with
an injected clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.observability import events as _events


class _TableState:
    __slots__ = (
        "ewma",
        "last",
        "observations",
        "seen_count",
        "state",
        "analyzes",
        "last_analyze",
        "prune_ewma",
        "prune_queries",
        "prune_state",
    )

    def __init__(self):
        self.ewma: float | None = None
        self.last = 1.0
        self.observations = 0
        self.seen_count = 0  # catalog summary count already folded
        self.state = "ok"  # "ok" | "drifted"
        self.analyzes = 0
        self.last_analyze: float | None = None
        self.prune_ewma: float | None = None
        self.prune_queries = 0
        self.prune_state = "ok"

    def reset_signal(self) -> None:
        """Fresh statistics invalidate the old estimate errors."""
        self.ewma = None
        self.last = 1.0
        self.observations = 0
        self.seen_count = 0
        self.state = "ok"


class WorkloadWatchdog:
    """Watches q-error / cache / routing drift; auto-triggers ANALYZE."""

    def __init__(
        self,
        database,
        auto_analyze: bool = True,
        q_error_threshold: float = 4.0,
        recovery_ratio: float = 0.5,
        ewma_alpha: float = 0.4,
        min_observations: int = 2,
        cooldown_seconds: float = 60.0,
        poll_interval_seconds: float = 1.0,
        plan_cache_hit_floor: float = 0.2,
        plan_cache_min_events: int = 50,
        shard_prune_floor: float = 0.2,
        shard_prune_min_queries: int = 5,
        max_decisions: int = 256,
        clock=None,
    ):
        self.database = database
        #: The kill-switch; flip at runtime to pause/resume mutation.
        self.auto_analyze = auto_analyze
        self.q_error_threshold = float(q_error_threshold)
        self.recovery_ratio = float(recovery_ratio)
        self.ewma_alpha = float(ewma_alpha)
        self.min_observations = int(min_observations)
        self.cooldown_seconds = float(cooldown_seconds)
        self.poll_interval_seconds = float(poll_interval_seconds)
        self.plan_cache_hit_floor = float(plan_cache_hit_floor)
        self.plan_cache_min_events = int(plan_cache_min_events)
        self.shard_prune_floor = float(shard_prune_floor)
        self.shard_prune_min_queries = int(shard_prune_min_queries)
        self._clock = clock or time.monotonic
        self._lock = threading.RLock()
        self._tables: dict[str, _TableState] = {}
        self._decisions: deque[dict] = deque(maxlen=max(1, max_decisions))
        self._bus = None
        self._last_poll: float | None = None
        # Counters (exported via stats()).
        self.polls = 0
        self.drifts_detected = 0
        self.analyzes_triggered = 0
        self.analyze_errors = 0
        # Plan-cache / replan signal.
        self._pc_hits = 0
        self._pc_misses = 0
        self._pc_hit_ewma: float | None = None
        self._pc_state = "ok"
        self._replans = 0
        self._completed = 0

    # -- bus wiring --------------------------------------------------------

    def attach(self, bus=None) -> "WorkloadWatchdog":
        bus = bus or _events.BUS
        if self._bus is not None:
            raise RuntimeError("WorkloadWatchdog already attached")
        bus.subscribe(self._on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _on_event(self, event) -> None:
        name = event.name
        if name == "plan_cache.hit":
            self._fold_plan_cache(1.0)
        elif name == "plan_cache.miss":
            self._fold_plan_cache(0.0)
        elif name == "serving.replan":
            with self._lock:
                self._replans += 1
        elif name == "distributed.gather":
            self._fold_gather(event.attrs)
        elif name in ("serving.completed", "trace.completed"):
            if name == "serving.completed":
                # Lock-free: a monitoring counter bumped on every served
                # request; a lost increment under contention is benign
                # and not worth a lock acquisition per request.
                self._completed += 1
            self._maybe_poll()

    def _fold_plan_cache(self, hit: float) -> None:
        with self._lock:
            if hit:
                self._pc_hits += 1
            else:
                self._pc_misses += 1
            if self._pc_hit_ewma is None:
                self._pc_hit_ewma = hit
            else:
                self._pc_hit_ewma = (
                    self.ewma_alpha * hit
                    + (1.0 - self.ewma_alpha) * self._pc_hit_ewma
                )

    def _fold_gather(self, attrs: dict) -> None:
        table = attrs.get("table")
        if not table:
            return
        scanned = attrs.get("scanned", 0) or 0
        pruned = attrs.get("pruned", 0) or 0
        total = scanned + pruned
        if total <= 0:
            return
        rate = pruned / total
        with self._lock:
            state = self._tables.setdefault(
                str(table).lower(), _TableState()
            )
            state.prune_queries += 1
            if state.prune_ewma is None:
                state.prune_ewma = rate
            else:
                state.prune_ewma = (
                    self.ewma_alpha * rate
                    + (1.0 - self.ewma_alpha) * state.prune_ewma
                )

    # -- polling -----------------------------------------------------------

    def _maybe_poll(self) -> None:
        # Lock-free debounce: _last_poll is a float updated under the
        # lock; a stale read only costs one redundant poll attempt.
        last = self._last_poll
        now = self._clock()
        if last is not None and now - last < self.poll_interval_seconds:
            return
        self.poll(now=now)

    def poll(self, now: float | None = None) -> list[dict]:
        """Fold fresh catalog q-errors, evaluate drift, and act.

        Returns the decisions made by this poll (also appended to the
        decision log). ANALYZE itself runs outside the watchdog lock —
        an O(rows) statistics pass must not stall the event callbacks
        feeding the other signals.
        """
        now = self._clock() if now is None else now
        catalog = self.database.catalog
        to_analyze: list[str] = []
        decisions: list[dict] = []
        with self._lock:
            self._last_poll = now
            self.polls += 1
            names = set(catalog.q_error_tables()) | set(self._tables)
            for name in sorted(names):
                state = self._tables.setdefault(name, _TableState())
                summary = catalog.q_error_summary(name)
                if summary is None:
                    # ANALYZE (ours or anyone's) cleared the summary:
                    # the error series restarts under fresh statistics.
                    if state.seen_count:
                        state.reset_signal()
                else:
                    self._fold_summary(state, summary)
                decision = self._evaluate_q_error(name, state, now)
                if decision is not None:
                    decisions.append(decision)
                    if decision["action"] == "analyze":
                        to_analyze.append(name)
                prune_decision = self._evaluate_prune(name, state, now)
                if prune_decision is not None:
                    decisions.append(prune_decision)
            pc_decision = self._evaluate_plan_cache(now)
            if pc_decision is not None:
                decisions.append(pc_decision)
        for name in to_analyze:
            self._run_analyze(name, decisions)
        return decisions

    def _fold_summary(self, state: _TableState, summary: dict) -> None:
        count = summary["count"]
        if count <= state.seen_count:
            return
        new = count - state.seen_count
        state.seen_count = count
        state.observations += new
        value = float(summary["last"])
        state.last = value
        if state.ewma is None:
            state.ewma = value
        else:
            # Fold once per poll with the latest measurement: the
            # catalog keeps a summary, not the series, and one poll's
            # worth of requests is one drift datapoint.
            state.ewma = (
                self.ewma_alpha * value
                + (1.0 - self.ewma_alpha) * state.ewma
            )

    def _evaluate_q_error(
        self, name: str, state: _TableState, now: float
    ) -> dict | None:
        ewma = state.ewma
        if ewma is None or state.observations < self.min_observations:
            return None
        if state.state == "drifted":
            if ewma <= self.q_error_threshold * self.recovery_ratio:
                state.state = "ok"
                return self._decide(
                    name, "q_error", ewma, action="recovered"
                )
            return self._maybe_trigger(name, state, ewma, now, fresh=False)
        if ewma >= self.q_error_threshold:
            state.state = "drifted"
            self.drifts_detected += 1
            _events.emit(
                "watchdog.drift_detected",
                table=name,
                signal="q_error",
                value=ewma,
                threshold=self.q_error_threshold,
            )
            return self._maybe_trigger(name, state, ewma, now, fresh=True)
        return None

    def _maybe_trigger(
        self,
        name: str,
        state: _TableState,
        ewma: float,
        now: float,
        fresh: bool,
    ) -> dict | None:
        cooling = (
            state.last_analyze is not None
            and now - state.last_analyze < self.cooldown_seconds
        )
        if not self.auto_analyze:
            # Observe-only: log the detection, never mutate. Persisting
            # drift is only re-logged when freshly detected, so the
            # decision log isn't spammed every poll.
            return (
                self._decide(name, "q_error", ewma, action="observe")
                if fresh
                else None
            )
        if cooling:
            return (
                self._decide(name, "q_error", ewma, action="cooldown")
                if fresh
                else None
            )
        # Commit to the ANALYZE under the lock (cooldown starts now, so
        # a concurrent poll cannot double-trigger); the statistics pass
        # itself runs after the lock is released.
        state.last_analyze = now
        state.analyzes += 1
        self.analyzes_triggered += 1
        state.reset_signal()
        return self._decide(name, "q_error", ewma, action="analyze")

    def _evaluate_prune(
        self, name: str, state: _TableState, now: float
    ) -> dict | None:
        ewma = state.prune_ewma
        if ewma is None or state.prune_queries < self.shard_prune_min_queries:
            return None
        if state.prune_state == "drifted":
            if ewma >= min(1.0, self.shard_prune_floor * 1.5):
                state.prune_state = "ok"
                return self._decide(
                    name, "shard_prune", ewma, action="recovered"
                )
            return None
        if ewma < self.shard_prune_floor:
            state.prune_state = "drifted"
            self.drifts_detected += 1
            _events.emit(
                "watchdog.drift_detected",
                table=name,
                signal="shard_prune",
                value=ewma,
                threshold=self.shard_prune_floor,
            )
            return self._decide(name, "shard_prune", ewma, action="observe")
        return None

    def _evaluate_plan_cache(self, now: float) -> dict | None:
        ewma = self._pc_hit_ewma
        total = self._pc_hits + self._pc_misses
        if ewma is None or total < self.plan_cache_min_events:
            return None
        if self._pc_state == "drifted":
            if ewma >= min(1.0, self.plan_cache_hit_floor * 1.5):
                self._pc_state = "ok"
                return self._decide(
                    None, "plan_cache_hit_rate", ewma, action="recovered"
                )
            return None
        if ewma < self.plan_cache_hit_floor:
            self._pc_state = "drifted"
            self.drifts_detected += 1
            _events.emit(
                "watchdog.drift_detected",
                table=None,
                signal="plan_cache_hit_rate",
                value=ewma,
                threshold=self.plan_cache_hit_floor,
            )
            return self._decide(
                None, "plan_cache_hit_rate", ewma, action="observe"
            )
        return None

    def _decide(
        self, table: str | None, signal: str, value: float, action: str
    ) -> dict:
        threshold = {
            "q_error": self.q_error_threshold,
            "shard_prune": self.shard_prune_floor,
            "plan_cache_hit_rate": self.plan_cache_hit_floor,
        }[signal]
        decision = {
            "ts": time.time(),
            "table": table,
            "signal": signal,
            "value": value,
            "threshold": threshold,
            "action": action,
        }
        self._decisions.append(decision)
        return decision

    def _run_analyze(self, name: str, decisions: list[dict]) -> None:
        """The committed ANALYZE, outside the watchdog lock."""
        catalog = self.database.catalog
        epoch_before = catalog.stats_epoch(name)
        try:
            catalog.analyze_table(name)
        except Exception:
            # The table may have been dropped between poll and act;
            # never let the feedback loop break a serving worker
            # (polls run inside event callbacks).
            with self._lock:
                self.analyze_errors += 1
            for decision in decisions:
                if (
                    decision["table"] == name
                    and decision["action"] == "analyze"
                ):
                    decision["action"] = "analyze_failed"
            return
        epoch_after = catalog.stats_epoch(name)
        for decision in decisions:
            if decision["table"] == name and decision["action"] == "analyze":
                decision["epoch_before"] = epoch_before
                decision["epoch_after"] = epoch_after
        _events.emit(
            "watchdog.analyze_triggered",
            table=name,
            epoch_before=epoch_before,
            epoch_after=epoch_after,
        )

    # -- reporting ---------------------------------------------------------

    def decisions(self) -> list[dict]:
        with self._lock:
            return [dict(d) for d in self._decisions]

    def stats(self) -> dict:
        with self._lock:
            tables = {}
            for name, state in sorted(self._tables.items()):
                entry = {
                    "state": state.state,
                    "ewma": state.ewma,
                    "last": state.last,
                    "observations": state.observations,
                    "analyzes": state.analyzes,
                }
                if state.prune_ewma is not None:
                    entry["prune_ewma"] = state.prune_ewma
                    entry["prune_state"] = state.prune_state
                    entry["prune_queries"] = state.prune_queries
                tables[name] = entry
            pc_total = self._pc_hits + self._pc_misses
            return {
                "auto_analyze": self.auto_analyze,
                "attached": self._bus is not None,
                "polls": self.polls,
                "drifts_detected": self.drifts_detected,
                "analyzes_triggered": self.analyzes_triggered,
                "analyze_errors": self.analyze_errors,
                "q_error_threshold": self.q_error_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "tables": tables,
                "plan_cache": {
                    "hits": self._pc_hits,
                    "misses": self._pc_misses,
                    "hit_ewma": self._pc_hit_ewma,
                    "hit_rate": (
                        self._pc_hits / pc_total if pc_total else 0.0
                    ),
                    "state": self._pc_state,
                    "replans": self._replans,
                    "completed": self._completed,
                },
                "decisions": [dict(d) for d in self._decisions],
            }
