"""Per-query traces: a tree of timed spans carried via contextvars.

A :class:`QueryTrace` is one query's end-to-end execution record — a
root span with nested children for each stage the engine passes
through (parse, bind, memo search, routing, per-fragment dispatch,
gather, execute). The *current* span rides in a
:class:`contextvars.ContextVar`, so instrumentation points simply call
:func:`span` and land under whatever stage is active, without plumbing
a trace handle through every signature.

Two propagation subtleties this module owns:

- **Thread pools.** ``ThreadPoolExecutor`` work items run on whatever
  context the worker thread happens to have; they do *not* inherit the
  submitter's contextvars. :func:`wrap` captures the submitter's
  current span and re-installs it around the callable (set/reset on
  the worker thread's own context — a single ``Context`` object cannot
  be ``run()`` concurrently, so we never share one). Child spans
  append under the trace's lock, making concurrent morsel spans safe.
- **Process pools.** Workers are separate processes; they cannot see
  the coordinator's contextvars at all. Worker-side timings instead
  ride back in the task-protocol reply and the coordinator attaches
  them retroactively with :func:`add_span`.

When no trace is active, :func:`span` returns one shared, stateless
null context manager — no allocation, no lock — so instrumented code
costs a dict-build and a function call per call site at most.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from typing import Callable

from repro.observability import events

#: Hard cap on spans per trace; morsel-parallel plans over many
#: partitions could otherwise make a single trace arbitrarily large.
MAX_SPANS = 2048


class Span:
    """One timed stage. ``duration`` is wall-clock perf_counter time."""

    __slots__ = ("name", "attrs", "start", "end", "children", "_trace")

    def __init__(self, name: str, trace: "QueryTrace", attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list[Span] = []
        self._trace = trace

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def find(self, name: str) -> "list[Span]":
        """All descendant spans (including self) with ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ms": (self.start - self._trace.origin) * 1e3,
            "duration_ms": self.duration * 1e3,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpan:
    """The shared no-trace span: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: The active span of the calling context (None = tracing off).
_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


class QueryTrace:
    """One query's span tree plus bookkeeping (thread-safe)."""

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.lock = threading.Lock()
        self.started_at = time.time()
        self.origin = time.perf_counter()
        self.span_count = 1
        self.spans_dropped = 0
        self.root = Span(name, self, dict(attrs or {}))

    def _new_span(self, parent: Span, name: str, attrs: dict) -> Span | None:
        with self.lock:
            if self.span_count >= MAX_SPANS:
                self.spans_dropped += 1
                return None
            self.span_count += 1
            child = Span(name, self, attrs)
            parent.children.append(child)
        return child

    def finish(self) -> None:
        if self.root.end is None:
            self.root.end = time.perf_counter()

    @property
    def duration(self) -> float:
        return self.root.duration

    def find(self, name: str) -> list[Span]:
        return self.root.find(name)

    def to_dict(self) -> dict:
        return {
            "trace": self.name,
            "started_at": self.started_at,
            "duration_ms": self.duration * 1e3,
            "span_count": self.span_count,
            "spans_dropped": self.spans_dropped,
            "root": self.root.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)


class _SpanContext:
    """Context manager entering a child of the active span."""

    __slots__ = ("_parent", "_name", "_attrs", "_span", "_token")

    def __init__(self, parent: Span, name: str, attrs: dict):
        self._parent = parent
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._token = None

    def __enter__(self):
        child = self._parent._trace._new_span(
            self._parent, self._name, self._attrs
        )
        if child is None:  # trace full — degrade to the null span
            return NULL_SPAN
        self._span = child
        self._token = _CURRENT.set(child)
        return child

    def __exit__(self, *exc) -> bool:
        if self._span is not None:
            self._span.end = time.perf_counter()
            _CURRENT.reset(self._token)
        return False


def span(name: str, **attrs):
    """A child span of the active span, or a shared no-op when untraced."""
    parent = _CURRENT.get()
    if parent is None:
        return NULL_SPAN
    return _SpanContext(parent, name, attrs)


def add_span(name: str, start: float, end: float, **attrs) -> Span | None:
    """Attach an already-completed span (perf_counter endpoints) under
    the active span — the coordinator uses this for pooled fragments
    whose timings arrive retroactively in the worker reply."""
    parent = _CURRENT.get()
    if parent is None:
        return None
    child = parent._trace._new_span(parent, name, attrs)
    if child is not None:
        child.start = start
        child.end = end
    return child


def current_span() -> Span | None:
    return _CURRENT.get()


def current_trace() -> QueryTrace | None:
    cur = _CURRENT.get()
    return cur._trace if cur is not None else None


@contextmanager
def activate(span_obj: Span | None):
    """Install ``span_obj`` as the active span for this context."""
    token = _CURRENT.set(span_obj)
    try:
        yield span_obj
    finally:
        _CURRENT.reset(token)


def wrap(fn: Callable) -> Callable:
    """Propagate the *caller's* active span into a thread-pool task.

    Returns ``fn`` unchanged when tracing is off (the common case), so
    the morsel path pays nothing for the capability.
    """
    parent = _CURRENT.get()
    if parent is None:
        return fn

    def _with_span(*args, **kwargs):
        token = _CURRENT.set(parent)
        try:
            return fn(*args, **kwargs)
        finally:
            _CURRENT.reset(token)

    return _with_span


@contextmanager
def trace_query(name: str, **attrs):
    """Run the body under a fresh :class:`QueryTrace`; emits
    ``trace.completed`` (with summary attrs) when the body exits."""
    trace = QueryTrace(name, attrs)
    token = _CURRENT.set(trace.root)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
        trace.finish()
        events.emit(
            "trace.completed",
            trace=trace.name,
            duration_ms=trace.duration * 1e3,
            span_count=trace.span_count,
            spans_dropped=trace.spans_dropped,
        )
