"""Telemetry exporters: Prometheus text exposition and Chrome traces.

Both exporters are *pure functions over snapshots* the engine already
produces — :meth:`MetricsRegistry.snapshot` dicts and
:meth:`QueryTrace.to_dict` span trees — so the upcoming network front
door (ROADMAP item 2) can serve them from endpoints without touching
the collection path, and tests can round-trip them without a server.

- :func:`render_prometheus` emits the Prometheus text-exposition
  format (version 0.0.4): scalars as untyped samples, histogram
  snapshots as cumulative ``_bucket{le="..."}`` series plus ``_sum``
  and ``_count``.
- :func:`trace_to_events` / :func:`render_chrome_trace` emit the
  Chrome trace-event format (``chrome://tracing`` / Perfetto): one
  complete ("X") event per span, microsecond timestamps relative to
  the trace origin.
"""

from __future__ import annotations

import json
import re

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """A legal Prometheus metric name: illegal chars become ``_`` and a
    leading digit is prefixed (dots in registry names become ``_``)."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if namespace:
        sanitized = f"{_NAME_SANITIZER.sub('_', namespace)}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _histogram_lines(name: str, body: dict, label_pairs: str) -> list[str]:
    """Cumulative bucket series from a :class:`Histogram` snapshot.

    Registry snapshots store *per-bucket* counts keyed ``le_<bound>``;
    Prometheus buckets are cumulative and end at ``le="+Inf"`` whose
    value must equal ``_count``.
    """
    bounds = sorted(
        (float(key[3:]), count) for key, count in body["buckets"].items()
    )
    prefix = label_pairs + "," if label_pairs else ""
    plain = "{" + label_pairs + "}" if label_pairs else ""
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in bounds:
        cumulative += count
        lines.append(
            f'{name}_bucket{{{prefix}le="{_format_value(bound)}"}} '
            f"{cumulative}"
        )
    lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {body["count"]}')
    lines.append(f"{name}_sum{plain} {_format_value(body['sum'])}")
    lines.append(f"{name}_count{plain} {body['count']}")
    return lines


def render_prometheus(
    snapshot: dict,
    namespace: str = "repro",
    labels: dict | None = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus
    text exposition.

    Scalar entries (counters and gauges snapshot to bare floats, so
    their kinds are indistinguishable here) render as ``untyped``
    samples; histogram snapshot dicts render as full histogram series.
    ``labels`` (e.g. ``{"instance": "raven-0"}``) are attached to every
    sample. Output ends with the trailing newline the format requires.
    """
    label_pairs = ""
    if labels:
        label_pairs = ",".join(
            f'{sanitize_metric_name(k)}="{_escape_label_value(v)}"'
            for k, v in sorted(labels.items())
        )
    label_body = "{" + label_pairs + "}" if label_pairs else ""
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        value = snapshot[raw_name]
        name = sanitize_metric_name(raw_name, namespace)
        if isinstance(value, dict) and "buckets" in value:
            lines.extend(_histogram_lines(name, value, label_pairs))
        elif isinstance(value, dict):
            # Nested non-histogram dicts (future-proofing): flatten one
            # level so no snapshot entry is silently dropped.
            for sub_key in sorted(value):
                sub_value = value[sub_key]
                if isinstance(sub_value, (int, float)) or sub_value is None:
                    sub_name = sanitize_metric_name(
                        f"{raw_name}.{sub_key}", namespace
                    )
                    lines.append(f"# TYPE {sub_name} untyped")
                    lines.append(
                        f"{sub_name}{label_body} {_format_value(sub_value)}"
                    )
        else:
            lines.append(f"# TYPE {name} untyped")
            lines.append(f"{name}{label_body} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace-event export ---------------------------------------------


def _span_events(
    span: dict, pid: int, tid: int, out: list[dict]
) -> None:
    attrs = span.get("attrs") or {}
    out.append(
        {
            "name": span["name"],
            "cat": "query",
            "ph": "X",
            "ts": span["start_ms"] * 1e3,  # trace-event ts is in µs
            "dur": span["duration_ms"] * 1e3,
            "pid": pid,
            "tid": tid,
            "args": {k: _jsonable(v) for k, v in attrs.items()},
        }
    )
    for child in span.get("children", ()):
        _span_events(child, pid, tid, out)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def trace_to_events(trace: dict, pid: int = 1, tid: int = 1) -> list[dict]:
    """One Chrome complete ("X") event per span of a
    :meth:`QueryTrace.to_dict` tree — ``len(result)`` equals the
    trace's ``span_count`` (dropped spans were never materialized)."""
    if hasattr(trace, "to_dict"):  # accept a live QueryTrace too
        trace = trace.to_dict()
    events: list[dict] = []
    _span_events(trace["root"], pid, tid, events)
    return events


def render_chrome_trace(
    traces: dict | list, indent: int | None = None
) -> str:
    """JSON in the Chrome trace-event *object* format.

    Accepts one trace dict or a list of them; each trace gets its own
    ``tid`` so concurrent requests stack as separate tracks in the
    viewer. Load the result directly in ``chrome://tracing`` or
    Perfetto.
    """
    if isinstance(traces, dict) or hasattr(traces, "to_dict"):
        traces = [traces]
    events: list[dict] = []
    for tid, trace in enumerate(traces, start=1):
        events.extend(trace_to_events(trace, pid=1, tid=tid))
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        indent=indent,
        default=str,
    )
