"""The query-log profiler: fingerprint-keyed aggregates over traces.

One :class:`~repro.observability.trace.QueryTrace` answers "where did
*this* request go"; the profiler answers "where does serving time go"
across thousands of them. Completed traces fold into per-query
aggregates keyed by the trace name (the prepared-query label, already
a workload fingerprint on the serving path):

- **Per-operator self time.** Each span's *self* time is its duration
  minus its children's — the classic flat profile over the span tree,
  so a fat ``execute`` span doesn't hide that the time was really in
  ``gather`` underneath it.
- **Top-K slow queries.** A bounded min-heap of the slowest requests
  seen, each with its full exemplar span tree, plus per-fingerprint
  reservoir-sampled exemplars (Algorithm R) so a *typical* trace of
  every query survives, not only the outliers.
- **Per-stage and per-backend breakdowns.** Distributed ``stage``
  spans aggregate by their ``stage`` attribute; ``backend.run`` bus
  events (optional — :meth:`attach`) aggregate rows/seconds per
  scoring backend.

Everything is bounded: fingerprints beyond ``max_queries`` fold into
an ``__other__`` bucket (and are counted, never silently dropped),
latency reservoirs and exemplar lists have fixed sizes, and
:meth:`record` is O(spans) with one lock acquisition.
"""

from __future__ import annotations

import heapq
import random
import threading
import time

_OTHER = "__other__"


class _Reservoir:
    """Algorithm R over a float stream; seeded for deterministic tests."""

    __slots__ = ("size", "seen", "values", "_rng")

    def __init__(self, size: int, rng: random.Random):
        self.size = size
        self.seen = 0
        self.values: list[float] = []
        self._rng = rng

    def offer(self, value) -> int | None:
        """Returns the replaced slot index (or the new index) when the
        value is kept, ``None`` when it is rejected."""
        self.seen += 1
        if len(self.values) < self.size:
            self.values.append(value)
            return len(self.values) - 1
        slot = self._rng.randrange(self.seen)
        if slot < self.size:
            self.values[slot] = value
            return slot
        return None

    def percentile(self, fraction: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(
            len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
        )
        return ordered[rank]


class _QueryAggregate:
    __slots__ = (
        "count",
        "sum_ms",
        "max_ms",
        "latencies",
        "operators",
        "stages",
        "exemplars",
        "exemplar_reservoir",
        "spans",
        "spans_dropped",
    )

    def __init__(self, reservoir_size: int, exemplars: int, rng):
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0
        self.latencies = _Reservoir(reservoir_size, rng)
        #: op name -> [calls, total_ms, self_ms]
        self.operators: dict[str, list] = {}
        #: stage label -> [count, total_ms]
        self.stages: dict[str, list] = {}
        self.exemplars: list[dict] = []
        self.exemplar_reservoir = _Reservoir(exemplars, rng)
        self.spans = 0
        self.spans_dropped = 0


class QueryLogProfiler:
    """Folds completed query traces into a workload profile."""

    def __init__(
        self,
        top_k: int = 10,
        exemplars_per_query: int = 3,
        reservoir_size: int = 64,
        max_queries: int = 256,
        seed: int = 0xA11CE,
    ):
        self.top_k = max(1, top_k)
        self.exemplars_per_query = max(0, exemplars_per_query)
        self.reservoir_size = max(1, reservoir_size)
        self.max_queries = max(1, max_queries)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._queries: dict[str, _QueryAggregate] = {}
        self._slowest: list[tuple[float, int, str, dict]] = []  # min-heap
        self._seq = 0
        self._traces = 0
        self._overflowed = 0
        #: backend -> [runs, rows, seconds]; fed by backend.run events.
        self._backends: dict[str, list] = {}
        self._bus = None

    # -- optional bus feed (per-backend breakdown) -------------------------

    def attach(self, bus) -> "QueryLogProfiler":
        """Subscribe to ``backend.run`` events for the per-backend
        breakdown; trace folding itself needs no bus (the server calls
        :meth:`record` directly with the span tree)."""
        if self._bus is not None:
            raise RuntimeError("QueryLogProfiler already attached")
        bus.subscribe(self._on_event, pattern="backend.run")
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _on_event(self, event) -> None:
        attrs = event.attrs
        backend = str(attrs.get("backend", "numpy"))
        with self._lock:
            entry = self._backends.setdefault(backend, [0, 0, 0.0])
            entry[0] += 1
            entry[1] += attrs.get("rows", 0) or 0
            entry[2] += attrs.get("seconds", 0.0) or 0.0

    # -- folding -----------------------------------------------------------

    def record(self, trace, query: str | None = None) -> None:
        """Fold one completed trace (a :class:`QueryTrace` or its
        ``to_dict()`` form) into the profile."""
        operators: dict[str, list] = {}
        stages: dict[str, list] = {}
        live = hasattr(trace, "to_dict")
        if live:
            # Fold the span objects directly; the dict form is only
            # materialized if an exemplar slot or the top-K heap keeps
            # this trace, so the per-request cost stays O(spans).
            name = query or trace.name or "query"
            span_count = trace.span_count
            spans_dropped = trace.spans_dropped
            duration_ms = self._fold_live(trace.root, operators, stages)
            trace_dict = None
        else:
            name = query or trace.get("trace") or "query"
            duration_ms = float(trace.get("duration_ms", 0.0))
            span_count = int(trace.get("span_count", 0))
            spans_dropped = int(trace.get("spans_dropped", 0))
            self._fold_span(trace.get("root") or {}, operators, stages)
            trace_dict = trace
        with self._lock:
            self._traces += 1
            agg = self._queries.get(name)
            if agg is None:
                if len(self._queries) >= self.max_queries and name != _OTHER:
                    self._overflowed += 1
                    name = _OTHER
                    agg = self._queries.get(name)
                if agg is None:
                    agg = self._queries[name] = _QueryAggregate(
                        self.reservoir_size,
                        self.exemplars_per_query,
                        self._rng,
                    )
            agg.count += 1
            agg.sum_ms += duration_ms
            if duration_ms > agg.max_ms:
                agg.max_ms = duration_ms
            agg.latencies.offer(duration_ms)
            agg.spans += span_count
            agg.spans_dropped += spans_dropped
            agg_operators = agg.operators
            for op, counts in operators.items():
                entry = agg_operators.get(op)
                if entry is None:
                    agg_operators[op] = counts
                else:
                    entry[0] += counts[0]
                    entry[1] += counts[1]
                    entry[2] += counts[2]
            if stages:
                agg_stages = agg.stages
                for stage, counts in stages.items():
                    entry = agg_stages.get(stage)
                    if entry is None:
                        agg_stages[stage] = counts
                    else:
                        entry[0] += counts[0]
                        entry[1] += counts[1]
            if self.exemplars_per_query:
                slot = agg.exemplar_reservoir.offer(duration_ms)
                if slot is not None:
                    if trace_dict is None:
                        trace_dict = trace.to_dict()
                    if slot < len(agg.exemplars):
                        agg.exemplars[slot] = trace_dict
                    else:
                        agg.exemplars.append(trace_dict)
            self._seq += 1
            if len(self._slowest) < self.top_k:
                if trace_dict is None:
                    trace_dict = trace.to_dict()
                heapq.heappush(
                    self._slowest,
                    (duration_ms, self._seq, name, trace_dict),
                )
            elif duration_ms > self._slowest[0][0]:
                if trace_dict is None:
                    trace_dict = trace.to_dict()
                heapq.heapreplace(
                    self._slowest,
                    (duration_ms, self._seq, name, trace_dict),
                )

    def _fold_span(
        self, span: dict, operators: dict, stages: dict
    ) -> float:
        duration = float(span.get("duration_ms", 0.0))
        child_total = 0.0
        for child in span.get("children") or ():
            child_total += self._fold_span(child, operators, stages)
        name = span.get("name", "span")
        self._fold_entry(
            name, duration, child_total, operators, stages,
            span.get("attrs"),
        )
        return duration

    def _fold_live(
        self, span, operators: dict, stages: dict
    ) -> float:
        """Fold a live :class:`~repro.observability.trace.Span` tree —
        same flat profile as :meth:`_fold_span` without the dict form."""
        end = span.end
        duration = (
            (end if end is not None else time.perf_counter()) - span.start
        ) * 1e3
        child_total = 0.0
        for child in span.children:
            child_total += self._fold_live(child, operators, stages)
        self._fold_entry(
            span.name, duration, child_total, operators, stages, span.attrs
        )
        return duration

    def _fold_entry(
        self,
        name: str,
        duration: float,
        child_total: float,
        operators: dict,
        stages: dict,
        attrs,
    ) -> None:
        # Concurrent children (morsels, parallel fragments) can overlap,
        # so clamp: self time is never negative.
        self_ms = duration - child_total
        if self_ms < 0.0:
            self_ms = 0.0
        entry = operators.get(name)
        if entry is None:
            operators[name] = [1, duration, self_ms]
        else:
            entry[0] += 1
            entry[1] += duration
            entry[2] += self_ms
        if name == "stage":
            label = str((attrs or {}).get("stage", "?"))
            stage_entry = stages.get(label)
            if stage_entry is None:
                stages[label] = [1, duration]
            else:
                stage_entry[0] += 1
                stage_entry[1] += duration

    # -- reporting ---------------------------------------------------------

    def report(
        self, top_k: int | None = None, include_traces: bool = True
    ) -> dict:
        """The workload profile as one JSON-serializable dict.

        ``include_traces=False`` (the ``server.stats()`` form) elides
        exemplar span trees, keeping the snapshot cheap to serialize.
        """
        with self._lock:
            queries = {}
            total_spans = 0
            total_dropped = 0
            for name, agg in self._queries.items():
                total_spans += agg.spans
                total_dropped += agg.spans_dropped
                operators = {
                    op: {
                        "calls": calls,
                        "total_ms": total,
                        "self_ms": self_ms,
                        "self_fraction": (
                            self_ms / agg.sum_ms if agg.sum_ms else 0.0
                        ),
                    }
                    for op, (calls, total, self_ms) in sorted(
                        agg.operators.items(),
                        key=lambda kv: -kv[1][2],
                    )
                }
                body = {
                    "count": agg.count,
                    "total_ms": agg.sum_ms,
                    "mean_ms": agg.sum_ms / agg.count if agg.count else 0.0,
                    "p50_ms": agg.latencies.percentile(0.50),
                    "p95_ms": agg.latencies.percentile(0.95),
                    "max_ms": agg.max_ms,
                    "spans": agg.spans,
                    "spans_dropped": agg.spans_dropped,
                    "operators": operators,
                }
                if agg.stages:
                    body["stages"] = {
                        stage: {"count": count, "total_ms": total}
                        for stage, (count, total) in sorted(
                            agg.stages.items()
                        )
                    }
                if include_traces and agg.exemplars:
                    body["exemplars"] = list(agg.exemplars)
                queries[name] = body
            slowest = heapq.nlargest(
                top_k or self.top_k, self._slowest
            )
            top_slow = [
                {
                    "query": name,
                    "duration_ms": duration,
                    "span_count": trace.get("span_count", 0),
                    **({"trace": trace} if include_traces else {}),
                }
                for duration, _seq, name, trace in slowest
            ]
            backends = {
                backend: {"runs": runs, "rows": rows, "seconds": seconds}
                for backend, (runs, rows, seconds) in sorted(
                    self._backends.items()
                )
            }
            return {
                "traces": self._traces,
                "queries_tracked": len(self._queries),
                "queries_overflowed": self._overflowed,
                "spans": total_spans,
                "spans_dropped": total_dropped,
                "queries": queries,
                "top_slow": top_slow,
                "backends": backends,
            }
