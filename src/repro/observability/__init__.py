"""Observability: event bus, traces, metrics, EXPLAIN ANALYZE, observatory.

The engine's measurement harness (ROADMAP item 2): a process-wide
structured :mod:`event bus <repro.observability.events>`, contextvar
:mod:`query traces <repro.observability.trace>` spanning coordinator
and worker-side fragment timings, an explicit-bucket
:mod:`metrics registry <repro.observability.metrics>` fed from events,
and the :mod:`EXPLAIN ANALYZE <repro.observability.explain>`
instrumentation producing estimate-vs-actual q-error feedback.

On top of those signals sits the workload observatory: the
:mod:`drift watchdog <repro.observability.watchdog>` (q-error drift
auto-triggers ANALYZE), the
:mod:`query-log profiler <repro.observability.profiler>` (fingerprint
aggregates over traces), and the
:mod:`telemetry exporters <repro.observability.export>` (Prometheus
text exposition, Chrome trace events).
"""

# NOTE: ``repro.observability.explain`` is deliberately NOT imported
# here — it depends on the relational executor, and the relational
# database imports this package for event/trace emission; importing it
# at package level would close that cycle. Import it as
# ``from repro.observability.explain import InstrumentedExecutor``.
from repro.observability.events import (
    BUS,
    Event,
    EventBus,
    Subscription,
    emit,
    get_event_bus,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServingMetrics,
)
from repro.observability.export import (
    render_chrome_trace,
    render_prometheus,
    trace_to_events,
)
from repro.observability.profiler import QueryLogProfiler
from repro.observability.trace import (
    QueryTrace,
    Span,
    add_span,
    current_span,
    current_trace,
    span,
    trace_query,
    wrap,
)
from repro.observability.watchdog import WorkloadWatchdog

__all__ = [
    "QueryLogProfiler",
    "WorkloadWatchdog",
    "render_chrome_trace",
    "render_prometheus",
    "trace_to_events",
    "BUS",
    "Event",
    "EventBus",
    "Subscription",
    "emit",
    "get_event_bus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServingMetrics",
    "QueryTrace",
    "Span",
    "add_span",
    "current_span",
    "current_trace",
    "span",
    "trace_query",
    "wrap",
]
