"""A metrics registry: counters, gauges, explicit-bucket histograms.

Unlike :class:`~repro.serving.stats.ServingStats` (which the server
calls directly on its hot path), these metrics are fed *from the event
bus*: :class:`ServingMetrics` subscribes to the serving / plan-cache /
distributed events and folds them into a registry. That keeps the
default serving path at "enabled-but-unsubscribed" cost — attaching
the registry is an explicit opt-in (``RavenServer.enable_metrics()``).

Histograms use explicit upper-bound buckets (Prometheus-style), so
percentiles are estimated by linear interpolation inside the first
bucket whose cumulative count crosses the target rank — bounded
memory, no reservoir needed.
"""

from __future__ import annotations

import bisect
import threading

from repro.observability.events import Event, EventBus

#: Latency buckets in seconds: 0.1 ms .. 10 s.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Batch/fan-out size buckets.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A point-in-time value (set wins, no history)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Explicit-bucket histogram with interpolated percentiles."""

    def __init__(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0..1) by bucket interpolation."""
        with self._lock:
            total = self.count
            counts = list(self._counts)
            observed_max = self.max
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if index >= len(self.buckets):  # overflow bucket
                    return observed_max if observed_max is not None else lower
                upper = self.buckets[index]
                within = (rank - previous) / count
                return lower + (upper - lower) * within
        return observed_max if observed_max is not None else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            mean = self.sum / self.count if self.count else 0.0
            body = {
                "count": self.count,
                "sum": self.sum,
                "mean": mean,
                "min": self.min,
                "max": self.max,
                "buckets": {
                    f"le_{bound:g}": self._counts[i]
                    for i, bound in enumerate(self.buckets)
                },
                "overflow": self._counts[-1],
            }
        body["p50"] = self.percentile(0.50)
        body["p95"] = self.percentile(0.95)
        body["p99"] = self.percentile(0.99)
        return body


class MetricsRegistry:
    """A named collection of metrics with a JSON-serializable snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets=DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets), Histogram
        )

    def snapshot(self) -> dict:
        """``{metric_name: value_or_histogram_dict}`` — JSON-ready."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: m.snapshot() for name, m in sorted(metrics.items())}


class ServingMetrics:
    """ServingStats re-implemented as an event-bus subscriber.

    Attach to a bus and every serving / plan-cache / distributed event
    folds into the registry; detach restores the bus to its
    unsubscribed (zero-cost) state.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._bus: EventBus | None = None
        r = self.registry
        self._latency = r.histogram("serving.latency_seconds")
        self._batch = r.histogram(
            "serving.batch_size", buckets=DEFAULT_SIZE_BUCKETS
        )
        self._fragment = r.histogram("distributed.fragment_seconds")
        self._fanout = r.histogram(
            "distributed.fanout", buckets=DEFAULT_SIZE_BUCKETS
        )
        self._net_latency = r.histogram("net.latency_seconds")

    def attach(self, bus: EventBus) -> "ServingMetrics":
        if self._bus is not None:
            raise RuntimeError("ServingMetrics already attached")
        bus.subscribe(self._on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _on_event(self, event: Event) -> None:
        name = event.name
        attrs = event.attrs
        registry = self.registry
        if name == "serving.completed":
            registry.counter("serving.completed").inc()
            self._latency.observe(attrs.get("latency_seconds", 0.0))
        elif name == "serving.failed":
            registry.counter("serving.failed").inc()
            self._latency.observe(attrs.get("latency_seconds", 0.0))
        elif name == "serving.submitted":
            registry.counter("serving.submitted").inc()
        elif name == "serving.rejected":
            registry.counter("serving.rejected").inc()
        elif name == "serving.batch":
            registry.counter("serving.batches").inc()
            registry.counter("serving.batched_requests").inc(
                attrs.get("size", 0)
            )
            self._batch.observe(attrs.get("size", 0))
        elif name == "serving.replan":
            registry.counter("serving.replans").inc()
        elif name.startswith("plan_cache."):
            registry.counter(name).inc()
        elif name.startswith("session_cache."):
            registry.counter(name).inc()
        elif name == "backend.run":
            backend = attrs.get("backend", "numpy")
            registry.counter(f"backend.{backend}.runs").inc()
            registry.counter(f"backend.{backend}.rows").inc(
                attrs.get("rows", 0)
            )
            registry.histogram(f"backend.{backend}.seconds").observe(
                attrs.get("seconds", 0.0)
            )
        elif name == "distributed.gather":
            registry.counter("distributed.shard_queries").inc()
            registry.counter("distributed.shards_scanned").inc(
                attrs.get("scanned", 0)
            )
            registry.counter("distributed.shards_pruned").inc(
                attrs.get("pruned", 0)
            )
            self._fanout.observe(attrs.get("scanned", 0))
            for seconds in attrs.get("fragment_seconds", ()):
                self._fragment.observe(seconds)
        elif name == "distributed.degraded":
            registry.counter("distributed.degraded").inc()
        elif name == "net.request":
            registry.counter("net.requests").inc()
            status = attrs.get("status", 0)
            registry.counter(f"net.status.{status // 100}xx").inc()
            self._net_latency.observe(attrs.get("latency_seconds", 0.0))
        elif name == "net.rejected":
            registry.counter("net.rejected").inc()
            reason = attrs.get("reason", "unknown")
            registry.counter(f"net.rejected.{reason}").inc()
        elif name == "net.idempotent_replay":
            registry.counter("net.idempotent_replays").inc()
        elif name == "net.disconnect":
            registry.counter("net.disconnects").inc()
        elif name.startswith("net.circuit_"):
            registry.counter(name).inc()
