"""EXPLAIN ANALYZE support: per-operator actuals and q-error.

``EXPLAIN ANALYZE <select>`` executes the optimized plan through an
:class:`InstrumentedExecutor` that times every ``execute`` dispatch and
records actual row counts, keyed by operator identity. The planner's
EXPLAIN renderer then prints ``actual_rows / time / q_error`` next to
its estimates, and :func:`collect_table_q_errors` attributes each
measured operator's q-error back to the base table it reads — the
feedback hook for adaptive re-costing (ROADMAP item 4), persisted via
``Catalog.record_q_error``.

Operators fused into a parent's pipeline (a morsel-parallel
``Predict(Filter(Scan))``, or a pruned ``Filter``-over-``Scan`` that
never executes the scan node itself) carry no actuals of their own;
the fusion root's measurement covers them. Fragment interiors of a
sharded plan execute on workers, so only the ``Gather`` boundary has
coordinator-side actuals.
"""

from __future__ import annotations

import time

from repro.relational.algebra.executor import Executor
from repro.relational.algebra import logical


class OperatorStats:
    """Actuals for one plan operator: rows out, inclusive wall time."""

    __slots__ = ("rows", "seconds", "calls")

    def __init__(self):
        self.rows = 0
        self.seconds = 0.0
        self.calls = 0


def q_error(estimated: float, actual: float) -> float:
    """The symmetric ratio error ``max(e, a) / min(e, a)``, floored at
    one row on both sides so empty results stay finite."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est, act) / min(est, act)


class InstrumentedExecutor(Executor):
    """An executor that times every operator dispatch.

    ``records`` maps ``id(op)`` to :class:`OperatorStats`; times are
    *inclusive* (an operator's clock runs while its children execute),
    matching how EXPLAIN renders the tree. Re-entrant dispatches of the
    same node (retries, shared sub-plans) accumulate.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.records: dict[int, OperatorStats] = {}

    @classmethod
    def from_executor(cls, executor: Executor) -> "InstrumentedExecutor":
        return cls(
            table_provider=executor._table_provider,
            model_resolver=executor._model_resolver,
            options=executor.options,
            shard_provider=executor._shard_provider,
            fragment_runner=executor._fragment_runner,
            shuffle_runner=executor._shuffle_runner,
        )

    def execute(self, plan):
        start = time.perf_counter()
        result = super().execute(plan)
        elapsed = time.perf_counter() - start
        record = self.records.get(id(plan))
        if record is None:
            record = self.records[id(plan)] = OperatorStats()
        record.calls += 1
        record.seconds += elapsed
        record.rows = result.num_rows
        return result


def analyze_annotations(record: OperatorStats, estimated: float) -> list[str]:
    """The ``actual_rows / time_ms / q_error`` suffix for one line."""
    return [
        f"actual_rows={record.rows}",
        f"time_ms={record.seconds * 1e3:.2f}",
        f"q_error={q_error(estimated, record.rows):.2f}",
    ]


def _anchor_table(op) -> str | None:
    """The base table an operator's measurement is attributable to.

    Only unambiguous anchors count: the operator's subtree must read
    exactly one base table, and the operator must be row-preserving
    down to that table's filter boundary (Scan, Filter-over-Scan,
    Predict adds columns not rows, Gather over a single-table
    fragment). Joins and aggregates mix cardinalities from several
    inputs, so their q-error is reported but not attributed.
    """
    from repro.distributed.operators import Gather

    if isinstance(op, logical.Scan):
        return op.table_name
    if isinstance(op, logical.Filter):
        return _anchor_table(op.child)
    if isinstance(op, logical.Predict):
        return _anchor_table(op.child)
    if isinstance(op, Gather) and op.join != "colocated":
        return op.table_name
    return None


def collect_table_q_errors(
    plan, records: dict[int, OperatorStats], estimate
) -> dict[str, float]:
    """Worst per-table q-error across anchored operators of one plan.

    ``estimate(op)`` is the planner's cardinality estimator. The result
    maps table name -> max q-error observed, which the database folds
    into ``Catalog.record_q_error`` after every EXPLAIN ANALYZE.
    """
    worst: dict[str, float] = {}

    def walk(op) -> None:
        record = records.get(id(op))
        if record is not None:
            table = _anchor_table(op)
            if table is not None:
                q = q_error(estimate(op), record.rows)
                if q > worst.get(table, 0.0):
                    worst[table] = q
        for child in getattr(op, "children", ()):
            walk(child)

    walk(plan)
    return worst
