"""A process-wide, thread-safe structured event bus.

Instrumented layers (serving, plan cache, memo optimizer, batcher,
distributed runtime) publish *typed* events — a dotted name plus a flat
attribute dict — through :func:`emit`. Consumers either register a
callback (:meth:`EventBus.subscribe`) or pull from a bounded queue
(:meth:`EventBus.subscribe_queue`); queues drop the oldest event when
full and count the drops, so a slow consumer can never wedge a server
thread or grow memory without bound.

The bus is zero-cost when nobody is listening: ``emit`` reads a single
``active`` flag (a plain attribute, updated under the lock only when
the subscriber set changes) and returns before building the event
object. Hot paths may additionally guard with ``if BUS.active:`` to
skip even the keyword-argument packing.

Event taxonomy (the complete reference, with payload fields, lives in
``docs/events.md`` and is asserted against emit sites by a test):

- ``serving.submitted / completed / failed / rejected / batch / replan``
- ``plan_cache.hit / miss / put / evict / invalidate``
- ``session_cache.hit / miss / graph_opt_hit / graph_opt_miss``
- ``backend.run``
- ``optimizer.memo_search``
- ``distributed.gather / degraded``
- ``net.request / rejected / idempotent_replay / disconnect``
- ``net.circuit_open / circuit_half_open / circuit_closed``
- ``trace.completed``
- ``watchdog.drift_detected / analyze_triggered``
- ``database.closed``
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable


class Event:
    """One structured event: a dotted name, a timestamp, flat attrs.

    Treat as immutable — one instance is shared by every subscriber.
    (A plain ``__slots__`` class, not a frozen dataclass: events are
    constructed on every subscribed emit, so init cost is hot.)
    """

    __slots__ = ("name", "ts", "attrs")

    def __init__(self, name: str, ts: float, attrs: dict | None = None):
        self.name = name
        self.ts = ts
        self.attrs = attrs if attrs is not None else {}

    def __repr__(self) -> str:
        return (
            f"Event(name={self.name!r}, ts={self.ts!r}, "
            f"attrs={self.attrs!r})"
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "ts": self.ts, **self.attrs}


def _matches(pattern: str | None, name: str) -> bool:
    """``None`` matches everything; ``"serving.*"`` matches the prefix
    ``serving.``; anything else must match exactly."""
    if pattern is None:
        return True
    if pattern.endswith(".*"):
        return name.startswith(pattern[:-1])
    return name == pattern


class Subscription:
    """A bounded event queue handed to a pull-style consumer."""

    def __init__(self, bus: "EventBus", pattern: str | None, maxsize: int):
        self._bus = bus
        self.pattern = pattern
        self._queue: deque[Event] = deque(maxlen=max(1, maxsize))
        self._lock = threading.Lock()
        self.dropped = 0
        self.delivered = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        with self._lock:
            if len(self._queue) == self._queue.maxlen:
                self.dropped += 1
            self._queue.append(event)
            self.delivered += 1

    def drain(self) -> list[Event]:
        """All queued events, oldest first (clears the queue)."""
        with self._lock:
            events = list(self._queue)
            self._queue.clear()
        return events

    def close(self) -> None:
        self._bus.unsubscribe_queue(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._queue)


class EventBus:
    """Thread-safe pub/sub with callback and bounded-queue subscribers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._callbacks: list[tuple[str | None, Callable[[Event], None]]] = []
        self._queues: list[Subscription] = []
        #: Read lock-free on every ``emit``; maintained under the lock.
        self.active = False
        self.emitted = 0
        self.callback_errors = 0
        #: Drops from queue subscriptions that have since closed —
        #: without this, unsubscribing a lossy consumer would erase the
        #: evidence that telemetry was lost.
        self.queue_dropped_retired = 0
        #: name -> (queues, callbacks) match results, rebuilt lazily
        #: after any subscription change. The taxonomy is a handful of
        #: fixed names, so this stays tiny and makes the subscribed
        #: emit path a dict lookup instead of two list comprehensions.
        self._routes: dict[str, tuple[tuple, tuple]] = {}

    # -- subscription ------------------------------------------------------

    def subscribe(
        self, fn: Callable[[Event], None], pattern: str | None = None
    ) -> Callable[[Event], None]:
        """Register ``fn(event)`` for events matching ``pattern``."""
        with self._lock:
            self._callbacks.append((pattern, fn))
            self._routes.clear()
            self.active = True
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        # Equality, not identity: ``obj.method`` builds a fresh bound
        # method each access, so an identity check could never remove a
        # method subscriber (bound methods compare equal by __self__ +
        # __func__).
        with self._lock:
            self._callbacks = [
                (p, cb) for p, cb in self._callbacks if cb != fn
            ]
            self._routes.clear()
            self._refresh_active()

    def subscribe_queue(
        self, pattern: str | None = None, maxsize: int = 1024
    ) -> Subscription:
        """A bounded queue receiving matching events (drop-oldest)."""
        sub = Subscription(self, pattern, maxsize)
        with self._lock:
            self._queues.append(sub)
            self._routes.clear()
            self.active = True
        return sub

    def unsubscribe_queue(self, sub: Subscription) -> None:
        with self._lock:
            sub.closed = True
            if sub in self._queues:
                self.queue_dropped_retired += sub.dropped
            self._queues = [q for q in self._queues if q is not sub]
            self._routes.clear()
            self._refresh_active()

    def _refresh_active(self) -> None:
        self.active = bool(self._callbacks or self._queues)

    # -- emission ----------------------------------------------------------

    def emit(self, name: str, **attrs) -> None:
        """Publish one event; a no-op unless someone is subscribed."""
        if not self.active:
            return
        event = Event(name, time.time(), attrs)
        with self._lock:
            self.emitted += 1
            route = self._routes.get(name)
            if route is None:
                route = (
                    tuple(
                        q for q in self._queues
                        if _matches(q.pattern, name)
                    ),
                    tuple(
                        cb for pattern, cb in self._callbacks
                        if _matches(pattern, name)
                    ),
                )
                self._routes[name] = route
        queues, callbacks = route
        for sub in queues:
            sub._offer(event)
        for cb in callbacks:
            try:
                cb(event)
            except Exception:
                # A broken subscriber must never fail the emitting
                # query; count it so tests can assert cleanliness.
                with self._lock:
                    self.callback_errors += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "active": self.active,
                "emitted": self.emitted,
                "callback_errors": self.callback_errors,
                "callback_subscribers": len(self._callbacks),
                "queue_subscribers": len(self._queues),
                "queue_dropped": (
                    self.queue_dropped_retired
                    + sum(q.dropped for q in self._queues)
                ),
            }

    def reset(self) -> None:
        """Drop every subscriber (test isolation / process teardown)."""
        with self._lock:
            for q in self._queues:
                q.closed = True
                self.queue_dropped_retired += q.dropped
            self._callbacks.clear()
            self._queues.clear()
            self._routes.clear()
            self.active = False


#: The process-wide default bus every instrumented layer publishes to.
BUS = EventBus()


def get_event_bus() -> EventBus:
    return BUS


def emit(name: str, **attrs) -> None:
    """Publish to the process-wide bus (zero-cost when unsubscribed)."""
    if BUS.active:
        BUS.emit(name, **attrs)
