"""repro: a reproduction of Raven (CIDR 2020) — in-RDBMS ML inference.

The package is layered exactly as DESIGN.md describes:

* :mod:`repro.relational` — a columnar mini-RDBMS (the SQL Server stand-in),
* :mod:`repro.ml` — a mini scikit-learn (pipelines, trees, linear models...),
* :mod:`repro.tensor` — a mini ONNX Runtime (graphs, kernels, sessions),
* :mod:`repro.core` — Raven itself: unified IR, static analysis,
  cross-optimizer, code generation, and execution runtimes,
* :mod:`repro.data` — seeded synthetic workloads (hospital LOS, flights).

Quickstart::

    from repro import Database, RavenSession
    session = RavenSession(Database())
"""

__version__ = "1.0.0"

from repro.core import RavenResult, RavenSession
from repro.relational import Database, Table

__all__ = ["Database", "RavenResult", "RavenSession", "Table", "__version__"]
