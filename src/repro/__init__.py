"""repro: a reproduction of Raven (CIDR 2020) — in-RDBMS ML inference.

The package is layered exactly as DESIGN.md describes:

* :mod:`repro.relational` — a columnar mini-RDBMS (the SQL Server stand-in),
* :mod:`repro.ml` — a mini scikit-learn (pipelines, trees, linear models...),
* :mod:`repro.tensor` — a mini ONNX Runtime (graphs, kernels, sessions),
* :mod:`repro.core` — Raven itself: unified IR, static analysis,
  cross-optimizer, code generation, and execution runtimes,
* :mod:`repro.serving` — the concurrent serving layer: prepared queries
  with ``?``/``@name`` parameters, a normalized-plan cache, adaptive
  micro-batching, a TTL prediction cache, and :class:`RavenServer`,
* :mod:`repro.observability` — the structured event bus, per-query
  traces (nested spans over contextvars), and the metrics registry;
  ``EXPLAIN ANALYZE`` feeds estimate-vs-actual q-errors back into the
  catalog,
* :mod:`repro.data` — seeded synthetic workloads (hospital LOS, flights).

Quickstart::

    from repro import Database, RavenSession
    session = RavenSession(Database())

Serving quickstart::

    from repro import RavenServer
    prepared = session.prepare(SQL_WITH_PLACEHOLDERS)
    prepared.execute(params=(40.0,))          # plan reused, 3x+ faster
    with RavenServer(session, workers=4) as server:
        server.prepare("score", SQL, data={"requests": schema_row}, batch=True)
        table = server.query("score", data={"requests": one_row})
"""

__version__ = "1.1.0"

from repro.core import RavenResult, RavenSession
from repro.observability import MetricsRegistry, QueryTrace, get_event_bus
from repro.relational import Database, Table
from repro.serving import (
    HttpFrontDoor,
    MicroBatcher,
    PlanCache,
    PreparedQuery,
    RavenServer,
    ResultCache,
    ServingStats,
)

__all__ = [
    "Database",
    "HttpFrontDoor",
    "MetricsRegistry",
    "MicroBatcher",
    "PlanCache",
    "PreparedQuery",
    "QueryTrace",
    "RavenResult",
    "RavenServer",
    "RavenSession",
    "ResultCache",
    "ServingStats",
    "Table",
    "get_event_bus",
    "__version__",
]
