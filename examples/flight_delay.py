"""Flight-delay predictions: sparse models, pushdown, and clustering.

The paper's second workload. Demonstrates:
* L1-regularized logistic regression over one-hot categoricals,
* model-projection pushdown (zero weights -> narrower model + data),
* predicate-based pruning of categorical features (a destination filter
  folds the whole one-hot block into the intercept),
* offline model clustering with per-cluster specialized models.

Run with:  python examples/flight_delay.py
"""

import time

import numpy as np

from repro import RavenSession
from repro.core.optimizer.ml_rewrites import apply_projection_pushdown
from repro.core.optimizer.rules.clustering import compile_clustered_pipeline
from repro.data import flights
from repro.ml.metrics import roc_auc_score


def main() -> None:
    database, dataset, pipeline = flights.setup_database(
        num_rows=50_000, seed=4, C=0.05
    )
    model = pipeline.final_estimator
    auc = roc_auc_score(
        dataset.delayed, pipeline.predict_proba(dataset.features)[:, 1]
    )
    print(
        f"flight_delay model: {len(model.coef_)} features, "
        f"sparsity {model.sparsity_:.1%}, AUC {auc:.3f}"
    )

    # --- model-projection pushdown -------------------------------------
    pushed = apply_projection_pushdown(pipeline)
    print(
        f"\nprojection pushdown dropped "
        f"{pushed.detail['features_dropped']} zero-weight features; "
        f"model keeps {len(pushed.pipeline.final_estimator.coef_)}"
    )
    start = time.perf_counter()
    pipeline.predict(dataset.features)
    full_time = time.perf_counter() - start
    start = time.perf_counter()
    pushed.pipeline.predict(dataset.features[:, pushed.kept_inputs])
    pushed_time = time.perf_counter() - start
    print(f"scoring: {full_time * 1e3:.1f} ms -> {pushed_time * 1e3:.1f} ms "
          f"({full_time / pushed_time:.1f}x)")

    # --- predicate-based pruning of a categorical filter ----------------
    raven = RavenSession(database, options={"enable_inlining": False})
    result = raven.execute(
        """
        DECLARE @m varbinary(max) = (
            SELECT model FROM scoring_models WHERE model_name = 'flight_delay');
        SELECT d.flight_id, p.delay_pred
        FROM PREDICT(MODEL = @m, DATA = flights AS d)
        WITH (delay_pred float) AS p
        WHERE d.dest = 3 AND p.delay_pred = 1
        """
    )
    print(f"\ndelayed flights into airport 3: {result.table.num_rows}")
    print("rules fired:")
    for entry in result.report.applied:
        print(f"  - {entry}")

    # --- offline model clustering ------------------------------------
    print("\nmodel clustering (offline compile, then routed scoring):")
    sample = dataset.features[:10_000]
    for k in (2, 8):
        clustered = compile_clustered_pipeline(
            pipeline, sample, n_clusters=k, cluster_columns=[0, 1, 2],
            random_state=0,
        )
        start = time.perf_counter()
        routed = clustered.predict(dataset.features)
        routed_time = time.perf_counter() - start
        assert np.array_equal(routed, pipeline.predict(dataset.features))
        print(
            f"  k={k}: compile {clustered.compile_seconds:.2f}s, "
            f"avg model width {clustered.average_model_width():.1f} "
            f"(full {len(model.coef_)}), scoring {routed_time * 1e3:.1f} ms"
        )


if __name__ == "__main__":
    main()
