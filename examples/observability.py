"""Observability: EXPLAIN ANALYZE, live events, traces, and metrics.

Walks the four observability surfaces end to end on a sharded
PREDICT workload:

1. ``EXPLAIN ANALYZE`` — per-operator actual rows / wall time / q-error
   next to the optimizer's estimates, with per-table q-error summaries
   folded into the catalog;
2. a live event-bus subscription watching plan-cache and distributed
   events as queries run;
3. a per-query trace (nested spans, including worker-side fragment
   timings shipped back in the task protocol);
4. the server's metrics registry exported as one JSON dict.

Run with:  PYTHONPATH=src python examples/observability.py
"""

import json

import numpy as np

from repro import Database, RavenServer, RavenSession, Table
from repro.ml import GradientBoostingRegressor, Pipeline, StandardScaler
from repro.observability import events
from repro.relational.algebra.executor import ExecutionOptions


def build_database() -> Database:
    rng = np.random.default_rng(0)
    n = 30_000
    table = Table.from_dict(
        {
            "id": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, 40, n).astype(np.int64),
            "v": rng.normal(size=n),
        }
    )
    db = Database(
        options=ExecutionOptions(max_workers=8, distributed_mode="inprocess")
    )
    db.register_table("t", table)
    db.shard_table("t", "grp", 8)
    X = np.column_stack([table.column("grp").astype(float), table.column("v")])
    y = table.column("v") * 2.0 + table.column("grp") * 0.1
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("gb", GradientBoostingRegressor(n_estimators=15, max_depth=3)),
        ]
    ).fit(X[:2000], y[:2000])
    db.store_model("m", pipeline, metadata={"feature_names": ["grp", "v"]})
    return db


PREDICT_SQL = """
DECLARE @m varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'm');
SELECT id, p.out
FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (out float) AS p
WHERE d.grp = 7
ORDER BY id
"""


def main() -> None:
    with build_database() as db:
        # 1. EXPLAIN ANALYZE: estimates vs. actuals, per operator. The
        #    plan executes for real; zone-map routing prunes shards and
        #    the Gather line shows it.
        print("=== EXPLAIN ANALYZE (sharded PREDICT) ===")
        analyzed = db.execute(
            PREDICT_SQL.replace(
                "SELECT id, p.out", "EXPLAIN ANALYZE SELECT id, p.out", 1
            )
        )
        for line in analyzed.column("plan"):
            print(line)
        print(f"\ncatalog q-error summary for 't': "
              f"{db.catalog.q_error_summary('t')}")

        # 2. Live events: subscribe a bounded queue, run a query, drain.
        print("\n=== Event bus (distributed.* while one query runs) ===")
        with events.BUS.subscribe_queue("distributed.*") as sub:
            db.execute(PREDICT_SQL)
            for event in sub.drain():
                print(f"  {event.name}: "
                      f"{ {k: v for k, v in event.attrs.items() if k != 'fragment_seconds'} }")

        # 3+4. A traced server request and the metrics registry.
        session = RavenSession(db)
        with RavenServer(session, workers=2, trace_requests=True) as server:
            server.enable_metrics()
            server.submit_sql(PREDICT_SQL).result(timeout=60)
            trace = server.last_trace()
            stats = server.stats()  # callable: full JSON snapshot

        print("\n=== Query trace (spans, depth-indented) ===")

        def show(span, depth=0):
            attrs = {
                k: (round(v, 5) if isinstance(v, float) else v)
                for k, v in span["attrs"].items()
            }
            print(f"  {'  ' * depth}{span['name']} "
                  f"[{span['duration_ms']:.2f} ms] {attrs}")
            for child in span["children"]:
                show(child, depth + 1)

        show(trace["root"])

        print("\n=== server.stats() metrics (excerpt) ===")
        metrics = stats["metrics"]
        excerpt = {
            "serving.completed": metrics["serving.completed"],
            "serving.latency_seconds.p95":
                metrics["serving.latency_seconds"]["p95"],
            "distributed.shards_scanned":
                metrics.get("distributed.shards_scanned", 0),
            "distributed.shards_pruned":
                metrics.get("distributed.shards_pruned", 0),
        }
        print(json.dumps(excerpt, indent=2))
        print(f"\nevent-bus health: {stats['events']}")


if __name__ == "__main__":
    main()
