"""Observability: EXPLAIN ANALYZE, events, traces, and the observatory.

Walks the observability surfaces end to end on a sharded PREDICT
workload:

1. ``EXPLAIN ANALYZE`` — per-operator actual rows / wall time / q-error
   next to the optimizer's estimates, with per-table q-error summaries
   folded into the catalog;
2. a live event-bus subscription watching plan-cache and distributed
   events as queries run;
3. a per-query trace (nested spans, including worker-side fragment
   timings shipped back in the task protocol);
4. the server's metrics registry exported as one JSON dict;
5. the drift watchdog noticing skewed writes degrade the estimates and
   auto-running ANALYZE (decision audit in ``server.stats()``);
6. the query-log profiler's top-K / per-operator self-time report;
7. telemetry export: Prometheus text exposition and Chrome trace-event
   JSON round-tripped through ``json.loads``.

Run with:  PYTHONPATH=src python examples/observability.py
"""

import json

import numpy as np

from repro import Database, RavenServer, RavenSession, Table
from repro.ml import GradientBoostingRegressor, Pipeline, StandardScaler
from repro.observability import events, render_chrome_trace, render_prometheus
from repro.relational.algebra.executor import ExecutionOptions


def build_database() -> Database:
    rng = np.random.default_rng(0)
    n = 30_000
    table = Table.from_dict(
        {
            "id": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, 40, n).astype(np.int64),
            "v": rng.normal(size=n),
        }
    )
    db = Database(
        options=ExecutionOptions(max_workers=8, distributed_mode="inprocess")
    )
    db.register_table("t", table)
    db.shard_table("t", "grp", 8)
    X = np.column_stack([table.column("grp").astype(float), table.column("v")])
    y = table.column("v") * 2.0 + table.column("grp") * 0.1
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("gb", GradientBoostingRegressor(n_estimators=15, max_depth=3)),
        ]
    ).fit(X[:2000], y[:2000])
    db.store_model("m", pipeline, metadata={"feature_names": ["grp", "v"]})
    return db


PREDICT_SQL = """
DECLARE @m varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'm');
SELECT id, p.out
FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (out float) AS p
WHERE d.grp = 7
ORDER BY id
"""


def main() -> None:
    with build_database() as db:
        # 1. EXPLAIN ANALYZE: estimates vs. actuals, per operator. The
        #    plan executes for real; zone-map routing prunes shards and
        #    the Gather line shows it.
        print("=== EXPLAIN ANALYZE (sharded PREDICT) ===")
        analyzed = db.execute(
            PREDICT_SQL.replace(
                "SELECT id, p.out", "EXPLAIN ANALYZE SELECT id, p.out", 1
            )
        )
        for line in analyzed.column("plan"):
            print(line)
        print(f"\ncatalog q-error summary for 't': "
              f"{db.catalog.q_error_summary('t')}")

        # 2. Live events: subscribe a bounded queue, run a query, drain.
        print("\n=== Event bus (distributed.* while one query runs) ===")
        with events.BUS.subscribe_queue("distributed.*") as sub:
            db.execute(PREDICT_SQL)
            for event in sub.drain():
                print(f"  {event.name}: "
                      f"{ {k: v for k, v in event.attrs.items() if k != 'fragment_seconds'} }")

        # 3+4. A traced server request and the metrics registry.
        session = RavenSession(db)
        with RavenServer(session, workers=2, trace_requests=True) as server:
            server.enable_metrics()
            server.submit_sql(PREDICT_SQL).result(timeout=60)
            trace = server.last_trace()
            stats = server.stats()  # callable: full JSON snapshot

        print("\n=== Query trace (spans, depth-indented) ===")

        def show(span, depth=0):
            attrs = {
                k: (round(v, 5) if isinstance(v, float) else v)
                for k, v in span["attrs"].items()
            }
            print(f"  {'  ' * depth}{span['name']} "
                  f"[{span['duration_ms']:.2f} ms] {attrs}")
            for child in span["children"]:
                show(child, depth + 1)

        show(trace["root"])

        print("\n=== server.stats() metrics (excerpt) ===")
        metrics = stats["metrics"]
        excerpt = {
            "serving.completed": metrics["serving.completed"],
            "serving.latency_seconds.p95":
                metrics["serving.latency_seconds"]["p95"],
            "distributed.shards_scanned":
                metrics.get("distributed.shards_scanned", 0),
            "distributed.shards_pruned":
                metrics.get("distributed.shards_pruned", 0),
        }
        print(json.dumps(excerpt, indent=2))
        print(f"\nevent-bus health: {stats['events']}")

        # 5-7. The workload observatory: drift watchdog, profiler,
        #      and telemetry export, on a second server.
        observatory_demo(db)


def observatory_demo(db: Database) -> None:
    # A table whose statistics will go stale: uniform values analyzed,
    # then skewed values written in place. The sentinel rows pin
    # min/max so the catalog's drift check keeps the (now wrong)
    # histogram — exactly the silent staleness the watchdog exists for.
    rng = np.random.default_rng(7)
    n = 4_000
    uniform = rng.uniform(0.0, 100.0, n)
    uniform[0], uniform[1] = 0.0, 100.0
    ids = np.arange(n, dtype=np.int64)
    db.register_table("hot", Table.from_dict({"id": ids, "v": uniform}))
    db.execute("ANALYZE hot")

    skewed = rng.uniform(0.0, 4.5, n)
    skewed[0], skewed[1] = 0.0, 100.0
    db.catalog.set_table("hot", Table.from_dict({"id": ids, "v": skewed}))

    session = RavenSession(db)
    with RavenServer(session, workers=2) as server:
        registry = server.enable_metrics()
        server.enable_watchdog()      # auto_analyze=True by default
        server.enable_profiler()      # implies per-request tracing

        # EXPLAIN ANALYZE records the estimate-vs-actual q-error the
        # watchdog feeds on: the stale histogram expects ~5% of rows
        # under 5.0, the skewed data puts nearly all of them there.
        # Twice: the watchdog wants min_observations=2 before acting,
        # so one bad estimate can't trigger an ANALYZE on its own.
        db.execute("EXPLAIN ANALYZE SELECT id FROM hot WHERE v < 5.0")
        db.execute("EXPLAIN ANALYZE SELECT id FROM hot WHERE v < 10.0")
        print("\n=== Drift watchdog (skewed writes -> auto-ANALYZE) ===")
        print(f"q-error after skew: {db.catalog.q_error_summary('hot')}")

        # Serving traffic drives the watchdog's piggybacked poll; the
        # completion of this request already carries the ANALYZE.
        prepared = server.prepare("hot_filter",
                                  "SELECT id FROM hot WHERE v < ?")
        server.query("hot_filter", params=(5.0,))
        for decision in server.stats()["watchdog"]["decisions"]:
            print(f"  decision: {decision['table']}/{decision['signal']} "
                  f"-> {decision['action']} "
                  f"(value={decision['value']:.1f})")
        print(f"q-error after auto-ANALYZE: "
              f"{db.catalog.q_error_summary('hot')} "
              f"(ANALYZE consumes the stale-estimate evidence)")
        assert prepared is not None

        # 6. Query-log profiler: a small mixed workload, then the
        #    fingerprint-keyed report.
        for cutoff in (1.0, 2.0, 3.0, 4.0, 5.0):
            server.query("hot_filter", params=(cutoff,))
        report = server.profiler_report(top_k=3)
        print("\n=== Query-log profiler (top-K, self-time) ===")
        for slow in report["top_slow"]:
            print(f"  slow: {slow['query']} {slow['duration_ms']:.2f} ms "
                  f"({slow['span_count']} spans)")
        profile = report["queries"]["hot_filter"]
        print(f"  hot_filter: count={profile['count']} "
              f"p95={profile['p95_ms']:.2f} ms")
        for op, body in list(profile["operators"].items())[:3]:
            print(f"    operator {op}: calls={body['calls']} "
                  f"self={body['self_ms']:.2f} ms")

        # 7. Telemetry export: both renderers are pure functions over
        #    snapshots — print excerpts and round-trip the trace JSON.
        prom = render_prometheus(registry.snapshot())
        print("\n=== Prometheus text exposition (first lines) ===")
        print("\n".join(prom.splitlines()[:6]))
        trace_json = render_chrome_trace(server.traces())
        events_out = json.loads(trace_json)["traceEvents"]
        print(f"\nChrome trace events: {len(events_out)} spans from "
              f"{len(server.traces())} traces "
              f"(load via chrome://tracing)")


if __name__ == "__main__":
    main()
