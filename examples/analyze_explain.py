"""ANALYZE + EXPLAIN: watching statistics change the physical plan.

Loads the flights dataset, shows the optimizer's plan for a selective
scan + PREDICT query and a 3-way join, then demonstrates how ``ANALYZE``
refreshes statistics after the data changes — and how the plan responds:
row estimates, zone-map partition pruning counts, and the join order all
move with the data.

Run:  PYTHONPATH=src python examples/analyze_explain.py
"""

from __future__ import annotations

import numpy as np

from repro import Table
from repro.data import flights

PREDICT_EXPLAIN = """
EXPLAIN SELECT d.flight_id, p.delayed
FROM PREDICT(MODEL = @m, DATA = flights AS d)
WITH (delayed float) AS p
WHERE d.flight_id < 2000
"""

JOIN_EXPLAIN = """
EXPLAIN SELECT e.flight_id, d.label, s.note
FROM flights AS e
JOIN dims AS d ON e.carrier = d.carrier
JOIN watchlist AS s ON e.flight_id = s.flight_id
"""


def show(title: str, table: Table) -> None:
    print(f"\n=== {title} ===")
    for line in table.column("plan"):
        print(line)


def main() -> None:
    database, dataset, _pipeline = flights.setup_database(60_000, seed=4)
    # setup_database registers the model under "flight_delay"; PREDICT
    # queries below resolve @m through a DECLARE, so EXPLAIN needs the
    # batch form. We inline the declare by executing it first.
    sql_prefix = (
        "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        "WHERE model_name = 'flight_delay');"
    )

    # Large tables are partitioned automatically; ANALYZE collects
    # min/max, NDV, and histograms and bumps the stats epoch.
    print(database.execute("ANALYZE flights").pretty())

    show(
        "selective scan + PREDICT (zone maps prune most partitions)",
        database.execute(sql_prefix + PREDICT_EXPLAIN),
    )

    # A dimension table and a tiny watchlist: syntax order (flights ->
    # dims -> watchlist) is adversarial, the planner reorders to join
    # the selective watchlist first.
    database.register_table(
        "dims",
        Table.from_dict(
            {
                "carrier": np.arange(flights.NUM_CARRIERS, dtype=np.int64),
                "label": np.array(
                    [f"carrier_{i}" for i in range(flights.NUM_CARRIERS)]
                ),
            }
        ),
    )
    database.register_table(
        "watchlist",
        Table.from_dict(
            {
                "flight_id": np.arange(25, dtype=np.int64),
                "note": np.array(["watch"] * 25),
            }
        ),
    )
    show("3-way join, statistics-driven order", database.execute(JOIN_EXPLAIN))

    # Small writes keep the statistics (and the stats epoch) so hot
    # serving plans are not invalidated by every INSERT...
    epoch = database.catalog.stats_epoch("flights")
    database.execute("DELETE FROM flights WHERE flight_id = 0")
    print(
        f"\nsmall delete: epoch {epoch} -> "
        f"{database.catalog.stats_epoch('flights')} (unchanged, plans stay hot)"
    )
    # ...while a large write moves the epoch, which stales every cached
    # serving plan that scans the table. ANALYZE does the same
    # explicitly and recollects immediately.
    database.execute("DELETE FROM flights WHERE flight_id >= 5000")
    print(
        f"large delete: epoch -> {database.catalog.stats_epoch('flights')} "
        "(moved; cached plans replan)"
    )
    print("\n" + database.execute("ANALYZE flights").pretty())
    show(
        "after the delete + ANALYZE (estimates track the new reality)",
        database.execute(sql_prefix + PREDICT_EXPLAIN),
    )


if __name__ == "__main__":
    main()
