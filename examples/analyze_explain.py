"""ANALYZE + EXPLAIN: watching statistics drive the memo optimizer.

Loads the flights dataset, shows the memo-optimized plan for a
selective scan + PREDICT query, a 3-way join, and an 8-way star join
(Selinger DP inside the memo), then demonstrates how ``ANALYZE``
refreshes statistics after the data changes — and how the plan
responds: per-operator row/cost estimates, zone-map partition pruning
counts, the join order, and the memo's own search statistics (groups,
expressions, pruned branches, DP subsets) all move with the data.

Run:  PYTHONPATH=src python examples/analyze_explain.py
"""

from __future__ import annotations

import numpy as np

from repro import Table
from repro.data import flights

PREDICT_EXPLAIN = """
EXPLAIN SELECT d.flight_id, p.delayed
FROM PREDICT(MODEL = @m, DATA = flights AS d)
WITH (delayed float) AS p
WHERE d.flight_id < 2000
"""

JOIN_EXPLAIN = """
EXPLAIN SELECT e.flight_id, d.label, s.note
FROM flights AS e
JOIN dims AS d ON e.carrier = d.carrier
JOIN watchlist AS s ON e.flight_id = s.flight_id
"""


def show(title: str, table: Table) -> None:
    print(f"\n=== {title} ===")
    for line in table.column("plan"):
        print(line)


def main() -> None:
    database, dataset, _pipeline = flights.setup_database(60_000, seed=4)
    # setup_database registers the model under "flight_delay"; PREDICT
    # queries below resolve @m through a DECLARE, so EXPLAIN needs the
    # batch form. We inline the declare by executing it first.
    sql_prefix = (
        "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        "WHERE model_name = 'flight_delay');"
    )

    # Large tables are partitioned automatically; ANALYZE collects
    # min/max, NDV, and histograms and bumps the stats epoch.
    print(database.execute("ANALYZE flights").pretty())

    show(
        "selective scan + PREDICT (zone maps prune most partitions)",
        database.execute(sql_prefix + PREDICT_EXPLAIN),
    )

    # A dimension table and a tiny watchlist: syntax order (flights ->
    # dims -> watchlist) is adversarial, the planner reorders to join
    # the selective watchlist first.
    database.register_table(
        "dims",
        Table.from_dict(
            {
                "carrier": np.arange(flights.NUM_CARRIERS, dtype=np.int64),
                "label": np.array(
                    [f"carrier_{i}" for i in range(flights.NUM_CARRIERS)]
                ),
            }
        ),
    )
    database.register_table(
        "watchlist",
        Table.from_dict(
            {
                "flight_id": np.arange(25, dtype=np.int64),
                "note": np.array(["watch"] * 25),
            }
        ),
    )
    show("3-way join, statistics-driven order", database.execute(JOIN_EXPLAIN))

    # An 8-way star join: beyond the old greedy planner's 6-relation
    # cap, the memo's Selinger DP search prices every connected subset
    # (bushy shapes allowed) — the footer lines report the search.
    for d in range(7):
        database.register_table(
            f"star{d}",
            Table.from_dict(
                {
                    f"k{d}": np.arange(8, dtype=np.int64),
                    f"attr{d}": np.arange(8, dtype=np.int64),
                }
            ),
        )
    star_joins = " ".join(
        f"JOIN star{d} AS s{d} ON e.carrier = s{d}.k{d}" for d in range(7)
    )
    show(
        "8-way star join (DP memo search, see the memo footer)",
        database.execute(
            f"EXPLAIN SELECT e.flight_id FROM flights AS e {star_joins} "
            "WHERE s6.attr6 < 2"
        ),
    )

    # Small writes keep the statistics (and the stats epoch) so hot
    # serving plans are not invalidated by every INSERT...
    epoch = database.catalog.stats_epoch("flights")
    database.execute("DELETE FROM flights WHERE flight_id = 0")
    print(
        f"\nsmall delete: epoch {epoch} -> "
        f"{database.catalog.stats_epoch('flights')} (unchanged, plans stay hot)"
    )
    # ...while a large write moves the epoch, which stales every cached
    # serving plan that scans the table. Epochs are column-granular:
    # a write drifting only one column bumps that column's epoch, so
    # plans that never read it stay hot.
    database.execute("DELETE FROM flights WHERE flight_id >= 5000")
    print(
        f"large delete: epoch -> {database.catalog.stats_epoch('flights')} "
        "(moved; cached plans replan)"
    )
    # Column-granular epochs: a write drifting only one column bumps
    # that column's epoch alone, so cached plans reading other columns
    # of the same table stay hot.
    database.catalog.table_statistics("flights")  # re-cache for drift check
    database.execute("UPDATE flights SET distance = distance + 100000")
    print(
        "after UPDATE distance: distance epoch="
        f"{database.catalog.column_stats_epoch('flights', 'distance')}, "
        "carrier epoch="
        f"{database.catalog.column_stats_epoch('flights', 'carrier')} "
        "(plans not reading distance stay hot)"
    )
    print("\n" + database.execute("ANALYZE flights").pretty())
    show(
        "after the delete + ANALYZE (estimates track the new reality)",
        database.execute(sql_prefix + PREDICT_EXPLAIN),
    )

    # Distributed execution: shard a full-size copy of the table on
    # carrier and EXPLAIN a query with an equality predicate on the
    # shard key. The Gather line reports shards scanned vs. total —
    # the hash router pins `carrier = 3` to exactly one shard, so 7 of
    # 8 fragments are never dispatched, and the fragment below it is
    # the plan each worker runs against its shard. (max_workers makes
    # the cost model assume a real worker pool; on a large box it is
    # sized automatically.)
    database.executor_options.max_workers = max(
        8, database.executor_options.max_workers
    )
    database.register_table("all_flights", dataset.flights)
    database.shard_table("all_flights", "carrier", 8)
    show(
        "sharded EXPLAIN (zone-map shard routing: 1 of 8 shards scanned)",
        database.execute(
            "EXPLAIN SELECT COUNT(*) AS c, AVG(distance) AS d "
            "FROM all_flights WHERE carrier = 3"
        ),
    )

    # Distributed joins. Shard a small carrier-dimension table by the
    # same key under the same spec: the join becomes CO-LOCATED —
    # shard i ⋈ shard i runs on one worker, the whole join rides in
    # the fragment, and EXPLAIN marks the Gather with join=colocated.
    carriers = Table.from_dict(
        {
            "carrier": np.arange(8, dtype=np.int64),
            "hub_distance": np.linspace(100.0, 800.0, 8),
        }
    )
    database.register_table("carriers", carriers)
    database.shard_table("carriers", "carrier", 8)
    show(
        "co-located shard join (compatible layouts: join=colocated)",
        database.execute(
            "EXPLAIN SELECT f.flight_id, f.distance, c.hub_distance "
            "FROM all_flights f JOIN carriers c "
            "ON f.carrier = c.carrier WHERE f.carrier = 3"
        ),
    )

    # Reshard the dimension to an incompatible shard count and the
    # equality can no longer align shard-for-shard: on a big enough
    # join the optimizer switches to the hash SHUFFLE exchange
    # (join=shuffle, both Shuffle sides indented), and on a small one
    # it correctly falls back to the coordinator hash join.
    database.shard_table("carriers", "carrier", 5)
    show(
        "after resharding carriers 8 -> 5 (incompatible: no co-location)",
        database.execute(
            "EXPLAIN SELECT f.flight_id, f.distance, c.hub_distance "
            "FROM all_flights f JOIN carriers c ON f.carrier = c.carrier"
        ),
    )

    # DAG fragments: an aggregate over a distributed OUTER join plans
    # as one multi-stage exchange. The ShuffleJoin line reports the
    # join kind (LEFT — every flight row survives even if its carrier
    # is missing from the resharded dimension) and stages=1; the
    # indented `Stage stage=1/1 [partial-agg]` sub-plan is the partial
    # aggregate each worker runs over its bucket-join output, so only
    # group rows reach the coordinator, whose tree above the exchange
    # is just the final merge (SUM+COUNT recombine into AVG).
    show(
        "aggregate over LEFT shuffle join (multi-stage worker pipeline)",
        database.execute(
            "EXPLAIN SELECT f.carrier, COUNT(*) AS flights, "
            "AVG(c.hub_distance) AS hub "
            "FROM all_flights f LEFT JOIN carriers c "
            "ON f.carrier = c.carrier GROUP BY f.carrier"
        ),
    )


if __name__ == "__main__":
    main()
