"""Static analysis of imperative Python scripts (paper §3.2).

Raven does not execute user scripts to understand them: the static
analyzer parses them, tracks dataflow, rebuilds known estimator
constructions structurally via the API knowledge base, turns
dataframe-style operations into relational operators, forks one plan per
conditional path, and wraps anything untranslatable in UDF operators.

Run with:  python examples/static_analysis.py
"""

from repro.core.analysis import PythonStaticAnalyzer

MODEL_SCRIPT = """
from sklearn.pipeline import Pipeline, FeatureUnion
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

model_pipeline = Pipeline([
    ('union', FeatureUnion([('scaler', StandardScaler())])),
    ('clf', DecisionTreeClassifier(max_depth=6)),
])
"""

DATAFLOW_SCRIPT = """
patients = table('patient_info')
labs = table('blood_tests')
joined = patients.merge(labs, on='id')
joined = joined[joined.pregnant == 1]
joined = joined[['id', 'age', 'bp']]
joined
"""

CONDITIONAL_SCRIPT = """
df = table('flights')
if use_strict_filter:
    df = df[df.distance > 1000]
else:
    df = df[df.distance > 100]
df
"""

LOOP_SCRIPT = """
df = table('flights')
df = df[df.dest == 3]
for i in range(3):
    df = custom_smoothing(df)
df
"""


def main() -> None:
    analyzer = PythonStaticAnalyzer()

    print("1. A model-pipeline script is rebuilt structurally (no eval):")
    pipeline = analyzer.extract_pipeline(MODEL_SCRIPT)
    print(f"   -> {pipeline}")
    print(f"      tree max_depth = {pipeline.final_estimator.max_depth}\n")

    print("2. Dataframe code becomes relational algebra in the unified IR:")
    plan = analyzer.analyze(DATAFLOW_SCRIPT).plan
    for line in plan.pretty().splitlines():
        print(f"   {line}")
    print()

    print("3. Conditionals produce one plan per execution path:")
    result = analyzer.analyze(CONDITIONAL_SCRIPT)
    print(f"   -> {len(result.plans)} plans")
    for i, candidate in enumerate(result.plans):
        predicate = candidate.find("ra.filter")[0].attrs["predicate"]
        print(f"      path {i}: filter {predicate!r}")
    print()

    print("4. Loops and unknown calls fall back to UDF operators:")
    result = analyzer.analyze(LOOP_SCRIPT)
    print(f"   -> {result.udf_count} UDF(s); plan:")
    for line in result.plan.pretty().splitlines():
        print(f"   {line}")
    print()

    import time

    analyzer.analyze(DATAFLOW_SCRIPT)
    start = time.perf_counter()
    for _ in range(50):
        analyzer.analyze(DATAFLOW_SCRIPT)
    per_run = (time.perf_counter() - start) / 50
    print(f"5. Analysis latency: {per_run * 1e3:.2f} ms per script "
          f"(paper: < 10 ms typical)")


if __name__ == "__main__":
    main()
