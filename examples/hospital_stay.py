"""The paper's running example (Fig. 1), end to end.

Find pregnant patients with a predicted hospital stay longer than a week:
three joined tables, a stored scaler+decision-tree pipeline, and the full
cross-optimization cascade — filter pushdown through PREDICT,
predicate-based model pruning, model inlining to a SQL CASE expression,
projection pruning, and join elimination.

Run with:  python examples/hospital_stay.py
"""


from repro import RavenSession
from repro.data import hospital


def main() -> None:
    # Synthetic hospital data at a comfortable interactive size.
    database, dataset, pipeline = hospital.setup_database(
        num_rows=50_000, seed=1, max_depth=8
    )
    print(
        f"Tables: patient_info / blood_tests / prenatal_tests, "
        f"{dataset.num_rows} rows each"
    )
    tree = pipeline.final_estimator.tree_
    print(f"Stored model: StandardScaler -> DecisionTree ({tree.node_count} nodes)")

    raven = RavenSession(database)

    # What will Raven do with the inference query?
    print("\n--- EXPLAIN ---")
    print(raven.explain(hospital.INFERENCE_QUERY))

    # Execute, optimized and unoptimized, and compare.
    optimized = raven.execute(hospital.INFERENCE_QUERY)
    baseline = raven.execute(hospital.INFERENCE_QUERY, optimize=False)

    print("\n--- RESULTS ---")
    print(f"pregnant patients with predicted stay > 7 days: "
          f"{optimized.table.num_rows}")
    print(optimized.table.head(5).pretty())

    same = sorted(optimized.table.column("id").tolist()) == sorted(
        baseline.table.column("id").tolist()
    )
    print(f"\noptimized result identical to unoptimized: {same}")
    print(
        f"execution time: {baseline.timings['execute'] * 1e3:.1f} ms "
        f"(unoptimized) vs {optimized.timings['execute'] * 1e3:.1f} ms "
        f"(optimized)"
    )

    # The model was validated against direct scoring too.
    predictions = pipeline.predict(dataset.features)
    expected = int(
        ((dataset.features[:, 1] == 1.0) & (predictions > 7)).sum()
    )
    assert optimized.table.num_rows == expected
    print(f"cross-checked against direct pipeline scoring: {expected} rows")


if __name__ == "__main__":
    main()
