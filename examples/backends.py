"""Compiled scoring backends: fused tree kernels and cost-based choice.

* explicit choice: the same tensor graph scored by the ``numpy``
  per-node interpreter and the ``fused`` stacked-GEMM tree kernel
  (Hummingbird-style), at identical output,
* calibration: the micro-benchmarked per-backend row costs the
  optimizer prices alternatives with, persisted in the catalog,
* cost-based choice: EXPLAIN shows the memo keeping a small PREDICT
  on the interpreter and flipping a large scan to ``backend=fused``.

Run with:  python examples/backends.py
"""

import time

import numpy as np

from repro import Database, Table
from repro.ml.ensemble import RandomForestRegressor
from repro.tensor import InferenceSession, convert
from repro.tensor.backends import available_compiled_backends, calibrate
from repro.tensor.backends.numba_backend import numba_available


def train_forest(n_features: int = 6) -> RandomForestRegressor:
    rng = np.random.default_rng(3)
    X = rng.normal(size=(800, n_features))
    y = X[:, 0] * 2.0 - X[:, 1] + 0.1 * rng.normal(size=800)
    return RandomForestRegressor(
        n_estimators=40, max_depth=4, random_state=3
    ).fit(X, y)


def predict_sql(table: str) -> str:
    return (
        "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        "WHERE model_name = 'forest');"
        f"SELECT d.rid, p.y FROM PREDICT(MODEL = @m, DATA = {table} AS d) "
        "WITH (y float) AS p"
    )


def main() -> None:
    forest = train_forest()
    graph = convert(forest, n_features=6)
    rng = np.random.default_rng(5)
    X = rng.normal(size=(20_000, 6))

    # -- explicit backend choice on one session -----------------------------
    print(f"compiled backends available: {available_compiled_backends()}")
    if not numba_available():
        print("(numba not installed: requesting backend='numba' would "
              "fall back to the interpreter)")
    print(f"\nscoring {len(X)} rows, 40-tree forest, per backend:")
    reference = None
    for backend in ("numpy",) + available_compiled_backends():
        session = InferenceSession(graph, backend=backend)
        feeds = {graph.inputs[0]: X}
        session.run(feeds)  # warm-up: buffers, fusion, JIT
        start = time.perf_counter()
        out = session.run(feeds)[0]
        seconds = time.perf_counter() - start
        if reference is None:
            reference = out
        exact = np.allclose(out, reference, rtol=1e-9, atol=1e-9)
        print(f"  backend={backend:6s} {seconds * 1e3:8.1f} ms   "
              f"matches interpreter={exact}")

    # -- calibrated costs the optimizer prices alternatives with ------------
    db = Database()
    profiles = calibrate.profiles(db.catalog)
    print("\ncalibrated (setup_cost, row_scale) per backend "
          "[persisted in the catalog like ANALYZE output]:")
    for name, (setup, scale) in sorted(profiles.items()):
        print(f"  {name:6s} setup={setup:9.0f}  row_scale={scale:.3f}")

    # -- cost-based backend choice in SQL PREDICT ---------------------------
    features = [f"f{j}" for j in range(6)]
    for name, rows in (("small", 64), ("large", 20_000)):
        cols = {"rid": np.arange(rows, dtype=np.int64)}
        for j, feature in enumerate(features):
            cols[feature] = rng.normal(size=rows)
        db.register_table(name, Table.from_dict(cols))
    db.store_model("forest", forest, metadata={"feature_names": features})

    print("\nthe memo prices each Predict per backend and keeps small "
          "batches interpreted:")
    for name in ("small", "large"):
        sql = predict_sql(name)
        plan = "\n".join(
            db.execute(sql.replace("SELECT d.rid", "EXPLAIN SELECT d.rid"))[
                "plan"
            ]
        )
        predict_line = next(
            line.strip() for line in plan.splitlines() if "Predict" in line
        )
        print(f"  {name:5s} ({db.table(name).num_rows:6d} rows): "
              f"{predict_line}")
        db.execute(sql)


if __name__ == "__main__":
    main()
