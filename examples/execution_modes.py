"""Every execution mode Raven supports (paper §5), on one model.

* in-process: the integrated engine scores through the ML library,
* NN translation: the same pipeline compiled to a tensor graph, run by the
  mini-ONNX-Runtime session on CPU and on the simulated GPU,
* out-of-process (Raven Ext): a fresh Python interpreter per call,
* containerized: a local REST scoring server.

Run with:  python examples/execution_modes.py
"""

import time

import numpy as np

from repro import RavenSession
from repro.core.runtime import ContainerRuntime, OutOfProcessRuntime
from repro.data import hospital
from repro.ml import model_format
from repro.tensor import InferenceSession, SimulatedGPU, convert


def main() -> None:
    database, dataset, pipeline = hospital.setup_database(
        num_rows=20_000, seed=8, max_depth=8
    )
    table = database.execute(
        "WITH data AS (SELECT pi.id AS id, pi.age AS age, pi.pregnant AS "
        "pregnant, pi.gender AS gender, bt.bp AS bp, pt.heart_rate AS "
        "heart_rate, bt.glucose AS glucose FROM patient_info AS pi "
        "JOIN blood_tests AS bt ON pi.id = bt.id "
        "JOIN prenatal_tests AS pt ON pi.id = pt.id) SELECT * FROM data"
    )
    X = table.to_matrix(hospital.QUERY_FEATURE_NAMES)
    reference = pipeline.predict(X)

    def show(label: str, seconds: float, prediction) -> None:
        match = np.array_equal(np.asarray(prediction, dtype=float), reference)
        print(f"  {label:28s} {seconds * 1e3:9.1f} ms   exact={match}")

    print(f"scoring {len(X)} rows with the hospital decision-tree pipeline\n")

    # -- in-process (the integrated engine) ---------------------------------
    raven = RavenSession(database, options={"enable_inlining": False})
    graph, _ = raven.optimize(raven.analyze(hospital.INFERENCE_QUERY))
    start = time.perf_counter()
    prediction = pipeline.predict(X)
    show("in-process pipeline", time.perf_counter() - start, prediction)

    # -- inlined SQL ------------------------------------------------------
    inline_session = RavenSession(database)
    plan, _ = inline_session.optimize(
        inline_session.analyze(hospital.INFERENCE_QUERY)
    )
    start = time.perf_counter()
    inline_session.executor.execute(plan)
    print(f"  {'inlined SQL CASE (full query)':28s} "
          f"{(time.perf_counter() - start) * 1e3:9.1f} ms   (query incl. joins)")

    # -- NN translation, CPU and simulated GPU -----------------------------
    tensor_graph = convert(pipeline)
    cpu = InferenceSession(tensor_graph, device="cpu")
    start = time.perf_counter()
    out = cpu.run({"X": X})[0].ravel()
    show("NN translation (CPU)", time.perf_counter() - start, out)

    gpu = InferenceSession(tensor_graph, device=SimulatedGPU())
    out = gpu.run({"X": X})[0].ravel()
    show(
        "NN translation (sim. GPU)",
        gpu.last_run_stats.simulated_seconds,
        out,
    )

    # -- out-of-process (Raven Ext) ----------------------------------------
    bundle = model_format.dumps(pipeline)
    ext = OutOfProcessRuntime()
    start = time.perf_counter()
    out = ext.score_model(bundle, table, hospital.QUERY_FEATURE_NAMES)
    show("out-of-process (Raven Ext)", time.perf_counter() - start, out)

    # -- containerized REST ----------------------------------------------
    with ContainerRuntime(
        bundle, simulated_container_start_seconds=0.5
    ) as container:
        start = time.perf_counter()
        out = container.score(table, hospital.QUERY_FEATURE_NAMES)
        show("containerized REST", time.perf_counter() - start, out)

    print("\n(The out-of-process and container modes pay the constant "
          "startup/serialization costs Fig. 3 describes.)")


if __name__ == "__main__":
    main()
