"""Serving: a prepared query behind a concurrent RavenServer.

Shows the production-facing surface of the reproduction: prepare a
parameterized inference query once, then serve many concurrent
requests — micro-batched single-row scoring and parameterized analytics —
and read the server's own metrics.

Run with:  PYTHONPATH=src python examples/serving.py
"""

import numpy as np

from repro import Database, RavenServer, RavenSession, Table
from repro.ml import DecisionTreeClassifier, Pipeline, StandardScaler


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. The usual setup: a table, a trained pipeline, a stored model.
    n = 5_000
    age = rng.uniform(18, 90, n)
    income = rng.normal(55.0, 20.0, n)
    approved = ((income > 50.0) | (age < 30.0)).astype(np.float64)
    db = Database()
    db.register_table(
        "applicants",
        Table.from_dict({"id": np.arange(n), "age": age, "income": income}),
    )
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(np.column_stack([age, income]), approved)
    db.store_model(
        "approval_model",
        pipeline,
        metadata={"feature_names": ["age", "income"]},
    )
    session = RavenSession(db)

    # 2. A prepared query: optimized once, executed with bound parameters.
    prepared = session.prepare(
        """
        DECLARE @model varbinary(max) = (
            SELECT model FROM scoring_models
            WHERE model_name = 'approval_model');
        SELECT d.id, p.approved_pred
        FROM PREDICT(MODEL = @model, DATA = applicants AS d)
        WITH (approved_pred float) AS p
        WHERE d.age < ? ORDER BY d.id LIMIT 5
        """
    )
    print("Applicants under 30:")
    print(prepared.execute(params=(30.0,)).pretty())
    print("\nApplicants under 60 (same cached plan):")
    print(prepared.execute(params=(60.0,)).pretty())
    print(f"\nplan cache: {session.plan_cache.stats()}")

    # 3. A serving front end: single-row scoring requests, micro-batched
    #    into vectorized PREDICT calls by the server.
    scoring_sql = """
        DECLARE @model varbinary(max) = (
            SELECT model FROM scoring_models
            WHERE model_name = 'approval_model');
        SELECT d.age, d.income, p.approved_pred
        FROM PREDICT(MODEL = @model, DATA = requests AS d)
        WITH (approved_pred float) AS p
    """
    schema_row = Table.from_dict(
        {"age": np.array([30.0]), "income": np.array([50.0])}
    )
    # max_queue bounds admission (overload rejects fast); size it for
    # the 500-request burst below.
    with RavenServer(
        session, workers=4, batch_max_rows=64, max_queue=1024
    ) as server:
        server.prepare(
            "score", scoring_sql, data={"requests": schema_row}, batch=True
        )
        futures = [
            server.submit(
                "score",
                data={
                    "requests": Table.from_dict(
                        {
                            "age": np.array([rng.uniform(18, 90)]),
                            "income": np.array([rng.normal(55.0, 20.0)]),
                        }
                    )
                },
            )
            for _ in range(500)
        ]
        server.flush_batchers()
        approvals = sum(
            int(f.result().column("approved_pred")[0]) for f in futures
        )
        print(f"\nServed 500 single-row requests; {approvals} approved.")
        stats = server.stats_snapshot()

    print("\nServer metrics:")
    print(f"  throughput      : {stats['throughput_rps']:.0f} req/s")
    print(f"  latency p50/p95 : {stats['latency_p50_ms']:.2f} / "
          f"{stats['latency_p95_ms']:.2f} ms")
    print(f"  batches         : {stats['batches']} "
          f"(mean size {stats['mean_batch_size']:.1f})")
    print(f"  batch histogram : {stats['batch_size_histogram']}")


if __name__ == "__main__":
    main()
