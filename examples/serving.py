"""Serving: a prepared query behind a concurrent RavenServer.

Shows the production-facing surface of the reproduction: prepare a
parameterized inference query once, then serve many concurrent
requests — micro-batched single-row scoring and parameterized
analytics — read the server's own metrics, and finally put the whole
thing on the network behind the asyncio HTTP front door and talk to
it with nothing but ``urllib``.

Run with:  PYTHONPATH=src python examples/serving.py
"""

import json
import urllib.request

import numpy as np

from repro import Database, HttpFrontDoor, RavenServer, RavenSession, Table
from repro.ml import DecisionTreeClassifier, Pipeline, StandardScaler


def _http(url: str, payload: dict | None = None, **headers) -> dict:
    """One HTTP exchange (POST if *payload*, else GET) -> parsed JSON."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, headers=headers)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. The usual setup: a table, a trained pipeline, a stored model.
    n = 5_000
    age = rng.uniform(18, 90, n)
    income = rng.normal(55.0, 20.0, n)
    approved = ((income > 50.0) | (age < 30.0)).astype(np.float64)
    db = Database()
    db.register_table(
        "applicants",
        Table.from_dict({"id": np.arange(n), "age": age, "income": income}),
    )
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(np.column_stack([age, income]), approved)
    db.store_model(
        "approval_model",
        pipeline,
        metadata={"feature_names": ["age", "income"]},
    )
    session = RavenSession(db)

    # 2. A prepared query: optimized once, executed with bound parameters.
    prepared = session.prepare(
        """
        DECLARE @model varbinary(max) = (
            SELECT model FROM scoring_models
            WHERE model_name = 'approval_model');
        SELECT d.id, p.approved_pred
        FROM PREDICT(MODEL = @model, DATA = applicants AS d)
        WITH (approved_pred float) AS p
        WHERE d.age < ? ORDER BY d.id LIMIT 5
        """
    )
    print("Applicants under 30:")
    print(prepared.execute(params=(30.0,)).pretty())
    print("\nApplicants under 60 (same cached plan):")
    print(prepared.execute(params=(60.0,)).pretty())
    print(f"\nplan cache: {session.plan_cache.stats()}")

    # 3. A serving front end: single-row scoring requests, micro-batched
    #    into vectorized PREDICT calls by the server.
    scoring_sql = """
        DECLARE @model varbinary(max) = (
            SELECT model FROM scoring_models
            WHERE model_name = 'approval_model');
        SELECT d.age, d.income, p.approved_pred
        FROM PREDICT(MODEL = @model, DATA = requests AS d)
        WITH (approved_pred float) AS p
    """
    schema_row = Table.from_dict(
        {"age": np.array([30.0]), "income": np.array([50.0])}
    )
    # max_queue bounds admission (overload rejects fast); size it for
    # the 500-request burst below.
    with RavenServer(
        session, workers=4, batch_max_rows=64, max_queue=1024
    ) as server:
        server.prepare(
            "score", scoring_sql, data={"requests": schema_row}, batch=True
        )
        futures = [
            server.submit(
                "score",
                data={
                    "requests": Table.from_dict(
                        {
                            "age": np.array([rng.uniform(18, 90)]),
                            "income": np.array([rng.normal(55.0, 20.0)]),
                        }
                    )
                },
            )
            for _ in range(500)
        ]
        server.flush_batchers()
        approvals = sum(
            int(f.result().column("approved_pred")[0]) for f in futures
        )
        print(f"\nServed 500 single-row requests; {approvals} approved.")
        stats = server.stats_snapshot()

    print("\nServer metrics:")
    print(f"  throughput      : {stats['throughput_rps']:.0f} req/s")
    print(f"  latency p50/p95 : {stats['latency_p50_ms']:.2f} / "
          f"{stats['latency_p95_ms']:.2f} ms")
    print(f"  batches         : {stats['batches']} "
          f"(mean size {stats['mean_batch_size']:.1f})")
    print(f"  batch histogram : {stats['batch_size_histogram']}")

    # 4. The network front door: the same server behind a real asyncio
    #    HTTP/1.1 listener, driven here with plain urllib. Port 0 binds
    #    an ephemeral port, so the example never collides with anything.
    with RavenServer(session, workers=2) as server:
        server.prepare(
            "young_applicants",
            """
            SELECT id, age, income FROM applicants
            WHERE age < ? ORDER BY id LIMIT 3
            """,
        )
        with HttpFrontDoor(server) as door:
            print(f"\nHTTP front door listening on {door.url}")

            # Ad-hoc SQL over the wire.
            body = _http(
                door.url + "/query",
                {
                    "sql": "SELECT COUNT(*) AS n FROM applicants "
                           "WHERE income > ?",
                    "params": [80.0],
                },
            )
            print(f"  POST /query -> high earners: "
                  f"{body['columns']['n'][0]}")

            # A prepared query by name — planned once, bound per call.
            body = _http(
                door.url + "/prepared/young_applicants/execute",
                {"params": [25.0]},
            )
            print(f"  POST /prepared/young_applicants/execute -> "
                  f"ids {body['columns']['id']}")

            # Idempotency: the same key replays the recorded response
            # without re-executing the query.
            for _ in range(2):
                _http(
                    door.url + "/query",
                    {"sql": "SELECT AVG(age) AS mean_age FROM applicants"},
                    **{"Idempotency-Key": "example-1"},
                )
            replays = door.stats()["idempotency"]["replays"]
            print(f"  Idempotency-Key example-1 sent twice -> "
                  f"{replays} replay (executed once)")

            # The observability surface, straight off the socket.
            health = _http(door.url + "/healthz")
            print(f"  GET /healthz -> {health['status']}")
            with urllib.request.urlopen(
                door.url + "/metrics", timeout=30
            ) as response:
                exposition = response.read().decode()
            net_lines = [
                line for line in exposition.splitlines()
                if line.startswith("repro_net_requests ")
            ]
            print(f"  GET /metrics -> {net_lines[0]}")


if __name__ == "__main__":
    main()
