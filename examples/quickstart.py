"""Quickstart: train a pipeline, store it in the database, query it in SQL.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, RavenSession, Table
from repro.ml import DecisionTreeClassifier, Pipeline, StandardScaler


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Some tabular data, registered as a table.
    n = 5_000
    age = rng.uniform(18, 90, n)
    income = rng.normal(55.0, 20.0, n)
    approved = ((income > 50.0) | (age < 30.0)).astype(np.int64)
    db = Database()
    db.register_table(
        "applicants",
        Table.from_dict(
            {
                "id": np.arange(n),
                "age": age,
                "income": income,
                "approved": approved,
            }
        ),
    )

    # 2. A data scientist trains a model pipeline (sklearn-style API).
    features = np.column_stack([age, income])
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(features, approved.astype(np.float64))

    # 3. The pipeline is stored in the database: versioned, transactional,
    #    audited — like any other data.
    db.store_model(
        "approval_model",
        pipeline,
        metadata={"feature_names": ["age", "income"]},
    )

    # 4. An analyst invokes it from SQL with the PREDICT table function.
    raven = RavenSession(db)
    result = raven.execute(
        """
        DECLARE @model varbinary(max) = (
            SELECT model FROM scoring_models
            WHERE model_name = 'approval_model');
        SELECT d.id, d.age, d.income, p.approved_pred
        FROM PREDICT(MODEL = @model, DATA = applicants AS d)
        WITH (approved_pred float) AS p
        WHERE d.age < 40 AND p.approved_pred = 1
        ORDER BY d.id
        LIMIT 10
        """
    )
    print("First ten young, approved applicants:")
    print(result.table.pretty())

    # 5. Raven optimized the query before running it.
    print("\nOptimizations applied:")
    for entry in result.report.applied:
        print(f"  - {entry}")
    print(f"\nEstimated cost: {result.report.cost_before:.0f} -> "
          f"{result.report.cost_after:.0f}")

    # 6. The regenerated SQL (the runtime code generator's output).
    print("\nGenerated SQL (first 300 chars):")
    print((result.sql or "<no SQL form>")[:300])


if __name__ == "__main__":
    main()
