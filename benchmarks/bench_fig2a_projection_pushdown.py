"""Figure 2(a): model-projection pushdown on flight-delay logistic models.

Paper: L1 logistic regression on flight delay; pushdown improves inference
time ~1.7x on the 41.75%-sparsity model and ~5.3x on the 80.96% one.
We train to the same two sparsity operating points and compare scoring the
full pipeline against the pushed-down (narrowed) pipeline.
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report, speedup
from repro.core.optimizer.ml_rewrites import apply_projection_pushdown
from repro.data import flights

ROWS = 60_000
SPARSITY_TARGETS = {"41.75%": 0.4175, "80.96%": 0.8096}


@pytest.fixture(scope="module")
def environment():
    dataset = flights.generate(ROWS, seed=3)
    models = {}
    for label, target in SPARSITY_TARGETS.items():
        pipeline = flights.train_at_sparsity(dataset, target, max_iter=250)
        pushed = apply_projection_pushdown(pipeline)
        models[label] = (pipeline, pushed)
    return dataset, models


@pytest.mark.parametrize("label", list(SPARSITY_TARGETS))
@pytest.mark.parametrize("variant", ["baseline", "pushdown"])
def test_fig2a(benchmark, environment, label, variant):
    dataset, models = environment
    pipeline, pushed = models[label]
    X = dataset.features
    if variant == "baseline":
        benchmark(lambda: pipeline.predict(X))
    else:
        kept = X[:, pushed.kept_inputs]
        benchmark(lambda: pushed.pipeline.predict(kept))


def test_fig2a_shape(environment):
    """Shape assertions: pushdown wins, and wins more at higher sparsity."""
    dataset, models = environment
    X = dataset.features
    rows = []
    gains = {}
    for label, (pipeline, pushed) in models.items():
        base = measure(lambda: pipeline.predict(X))
        kept = X[:, pushed.kept_inputs]
        fast = measure(lambda: pushed.pipeline.predict(kept))
        gain = speedup(base, fast)
        gains[label] = gain
        rows.append(
            {
                "sparsity": label,
                "measured_sparsity": round(
                    flights.pipeline_sparsity(pipeline), 3
                ),
                "features_dropped": pushed.detail["features_dropped"],
                "baseline_s": base,
                "pushdown_s": fast,
                "speedup": gain,
            }
        )
        # Correctness of the rewrite at benchmark scale.
        assert np.array_equal(
            pipeline.predict(X), pushed.pipeline.predict(kept)
        )
    report(
        "Fig 2(a) model-projection pushdown (flight delay)",
        rows,
        "~1.7x at 41.75% sparsity, ~5.3x at 80.96% sparsity",
    )
    assert gains["41.75%"] > 1.05, "pushdown should win at moderate sparsity"
    assert gains["80.96%"] > gains["41.75%"], (
        "higher sparsity should give a bigger win"
    )
