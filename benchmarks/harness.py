"""Shared helpers for the figure/table reproduction benchmarks.

Every ``bench_*`` module reproduces one table or figure from the paper's
evaluation. Sizes are scaled down from the paper's 10M-row maximum so the
whole suite runs in minutes (documented in EXPERIMENTS.md); what must be
preserved is the *shape* of each result — who wins, by roughly what factor,
and where crossovers fall — which the modules assert on.

``measure`` times a callable with warm-up (the paper reports warm runs);
``report`` prints paper-vs-measured rows in a uniform format so
EXPERIMENTS.md can be regenerated from benchmark output.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable


def measure(fn: Callable[[], object], repeats: int = 5, warmup: int = 2) -> float:
    """Median wall-clock seconds of ``fn`` over warm runs."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def report(title: str, rows: list[dict], paper_claim: str) -> None:
    """Print a uniform paper-vs-measured block."""
    print(f"\n=== {title} ===")
    print(f"paper: {paper_claim}")
    if not rows:
        return
    keys = list(rows[0])
    widths = {
        k: max(len(k), *(len(_fmt(r[k])) for r in rows)) for k in keys
    }
    header = " | ".join(k.ljust(widths[k]) for k in keys)
    print(header)
    print("-+-".join("-" * widths[k] for k in keys))
    for row in rows:
        print(" | ".join(_fmt(row[k]).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    return baseline_seconds / max(optimized_seconds, 1e-12)


@contextmanager
def capture_metrics():
    """Fold event-bus events emitted in the block into a metrics registry.

    Yields a :class:`~repro.observability.metrics.MetricsRegistry`; call
    ``registry.snapshot()`` to embed a per-scenario metrics snapshot in
    the benchmark's JSON report, so ``check_regressions.py`` can gate on
    derived rates (plan-cache hit rate, shard-prune rate) instead of
    only on wall-clock. Detaches on exit, restoring the bus to its
    zero-cost unsubscribed state.
    """
    from repro.observability import events
    from repro.observability.metrics import ServingMetrics

    metrics = ServingMetrics()
    metrics.attach(events.BUS)
    try:
        yield metrics.registry
    finally:
        metrics.detach()


def counter_rate(snapshot: dict, numerator: str, denominator: str) -> float:
    """``numerator / (numerator + denominator)`` over counter values."""
    hit = float(snapshot.get(numerator, 0) or 0)
    miss = float(snapshot.get(denominator, 0) or 0)
    total = hit + miss
    return hit / total if total else 0.0
