"""Shared helpers for the figure/table reproduction benchmarks.

Every ``bench_*`` module reproduces one table or figure from the paper's
evaluation. Sizes are scaled down from the paper's 10M-row maximum so the
whole suite runs in minutes (documented in EXPERIMENTS.md); what must be
preserved is the *shape* of each result — who wins, by roughly what factor,
and where crossovers fall — which the modules assert on.

``measure`` times a callable with warm-up (the paper reports warm runs);
``report`` prints paper-vs-measured rows in a uniform format so
EXPERIMENTS.md can be regenerated from benchmark output.
"""

from __future__ import annotations

import time
from typing import Callable


def measure(fn: Callable[[], object], repeats: int = 5, warmup: int = 2) -> float:
    """Median wall-clock seconds of ``fn`` over warm runs."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def report(title: str, rows: list[dict], paper_claim: str) -> None:
    """Print a uniform paper-vs-measured block."""
    print(f"\n=== {title} ===")
    print(f"paper: {paper_claim}")
    if not rows:
        return
    keys = list(rows[0])
    widths = {
        k: max(len(k), *(len(_fmt(r[k])) for r in rows)) for k in keys
    }
    header = " | ".join(k.ljust(widths[k]) for k in keys)
    print(header)
    print("-+-".join("-" * widths[k] for k in keys))
    for row in rows:
        print(" | ".join(_fmt(row[k]).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    return baseline_seconds / max(optimized_seconds, 1e-12)
