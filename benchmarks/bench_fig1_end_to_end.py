"""Figure 1 / §2 running example, end to end.

The combined effect of the optimization cascade on the full inference
query (filter pushdown -> predicate-based pruning -> model inlining ->
projection pruning -> join elimination) versus executing the same query
with the optimizer disabled (in-process pipeline scoring over the full
join). The paper headlines "up to 24x from cross-optimizations".
"""

import pytest

from benchmarks.harness import measure, report, speedup
from repro import RavenSession
from repro.data import hospital

ROWS = 60_000


@pytest.fixture(scope="module")
def environment():
    database, dataset, pipeline = hospital.setup_database(
        ROWS, seed=51, max_depth=8
    )
    session = RavenSession(database)
    optimized_plan, opt_report = session.optimize(
        session.analyze(hospital.INFERENCE_QUERY)
    )
    unoptimized_plan = session.analyze(hospital.INFERENCE_QUERY)
    from repro.core.optimizer.engine import assign_engines

    assign_engines(unoptimized_plan)
    return session, optimized_plan, unoptimized_plan, opt_report


def test_fig1_optimized(benchmark, environment):
    session, optimized_plan, _, _ = environment
    benchmark.pedantic(
        lambda: session.executor.execute(optimized_plan),
        rounds=3,
        iterations=1,
    )


def test_fig1_unoptimized(benchmark, environment):
    session, _, unoptimized_plan, _ = environment
    benchmark.pedantic(
        lambda: session.executor.execute(unoptimized_plan),
        rounds=3,
        iterations=1,
    )


def test_fig1_shape(environment):
    session, optimized_plan, unoptimized_plan, opt_report = environment
    optimized = measure(
        lambda: session.executor.execute(optimized_plan), repeats=3
    )
    baseline = measure(
        lambda: session.executor.execute(unoptimized_plan), repeats=3
    )
    gain = speedup(baseline, optimized)
    report(
        "Fig 1 running example end-to-end",
        [
            {"variant": "unoptimized plan", "seconds": baseline},
            {"variant": "cross-optimized plan", "seconds": optimized},
            {"variant": "speedup", "seconds": gain},
        ],
        "cross-optimizations yield up to 24x end-to-end",
    )
    # The expected cascade fired.
    fired = " ".join(opt_report.applied)
    for rule in (
        "PushFilterBelowPredict",
        "PredicateBasedModelPruning",
        "ModelInlining",
        "JoinElimination",
    ):
        assert rule in fired, f"{rule} did not fire"
    # And the optimized plan is faster.
    assert gain > 1.3
    # Same answers.
    a = session.executor.execute(optimized_plan)
    b = session.executor.execute(unoptimized_plan)
    assert sorted(a.column("id").tolist()) == sorted(b.column("id").tolist())
