"""Memo-optimizer benchmark: DP join search vs the PR 2 greedy baseline.

Claims measured (printed as JSON for the bench trajectory):

* **8-way star join** — Selinger DP inside the memo (bushy allowed)
  orders an adversarial 8-relation star join >= 2x faster than the
  PR 2 baseline planner (greedy capped at 6 relations, i.e. FROM order
  for this chain). The FROM order lists the unselective dimensions
  first, so the baseline drags the full fact table through every join
  while DP applies the two selective dimensions immediately.
* **PREDICT over a join** — the same comparison with a model scoring
  the join output: DP ordering shrinks the scored relation before the
  model runs.

Run:  PYTHONPATH=src python benchmarks/bench_memo.py [--smoke]

``--smoke`` shrinks row counts so CI can exercise the full code path in
seconds; the speedup assertions only apply to full-size runs.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from harness import measure, speedup
from repro import Database, Table
from repro.ml import DecisionTreeRegressor, Pipeline

NUM_DIMS = 7  # fact + 7 dimensions = 8 relations
SELECTIVE_KEYS = 2  # keys kept by each selective dimension filter


def build_database(fact_rows: int, dim_rows: int, seed: int = 0) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    fact = {
        "fid": np.arange(fact_rows, dtype=np.int64),
        "x1": rng.uniform(0.0, 10.0, fact_rows),
        "x2": rng.uniform(0.0, 10.0, fact_rows),
    }
    for d in range(NUM_DIMS):
        fact[f"fk{d}"] = rng.integers(0, dim_rows, fact_rows)
    db.register_table("fact", Table.from_dict(fact))
    for d in range(NUM_DIMS):
        db.register_table(
            f"dim{d}",
            Table.from_dict(
                {
                    f"k{d}": np.arange(dim_rows, dtype=np.int64),
                    f"attr{d}": np.arange(dim_rows, dtype=np.int64),
                    f"label{d}": np.array(
                        [f"d{d}_{i}" for i in range(dim_rows)]
                    ),
                }
            ),
        )
    for name in ["fact"] + [f"dim{d}" for d in range(NUM_DIMS)]:
        db.catalog.table_statistics(name)  # warm stats
    return db


def star_sql(select: str, where: str) -> str:
    # Adversarial FROM order: the five unselective dimensions first,
    # the two selective ones (filtered in WHERE) last.
    joins = " ".join(
        f"JOIN dim{d} AS d{d} ON f.fk{d} = d{d}.k{d}"
        for d in range(NUM_DIMS)
    )
    return f"SELECT {select} FROM fact AS f {joins} WHERE {where}"


def _where() -> str:
    a, b = NUM_DIMS - 2, NUM_DIMS - 1
    return (
        f"d{a}.attr{a} < {SELECTIVE_KEYS} AND d{b}.attr{b} < {SELECTIVE_KEYS}"
    )


def _plans(db: Database, sql: str):
    """(dp_plan, legacy_plan) for one query, via the shared planner."""
    naive = db.bind(sql)
    db._planner.join_search = "dp"
    dp_plan = db._planner.optimize(naive)
    dp_stats = db._planner.last_report.stats
    db._planner.join_search = "legacy"
    legacy_plan = db._planner.optimize(naive)
    db._planner.join_search = "dp"
    return dp_plan, legacy_plan, dp_stats


def bench_star_join(fact_rows: int, dim_rows: int) -> dict:
    db = build_database(fact_rows, dim_rows)
    sql = star_sql("f.fid, d0.label0", _where())
    dp_plan, legacy_plan, dp_stats = _plans(db, sql)
    dp_rows = db.execute_plan(dp_plan).num_rows
    assert dp_rows == db.execute_plan(legacy_plan).num_rows
    legacy_seconds = measure(
        lambda: db.execute_plan(legacy_plan), repeats=3, warmup=1
    )
    dp_seconds = measure(lambda: db.execute_plan(dp_plan), repeats=3, warmup=1)
    return {
        "fact_rows": fact_rows,
        "relations": NUM_DIMS + 1,
        "result_rows": dp_rows,
        "dp_relations_searched": dp_stats.dp_relations,
        "dp_subsets": dp_stats.dp_subsets,
        "legacy_greedy_seconds": round(legacy_seconds, 5),
        "dp_seconds": round(dp_seconds, 5),
        "speedup": round(speedup(legacy_seconds, dp_seconds), 2),
    }


def bench_predict_over_join(fact_rows: int, dim_rows: int) -> dict:
    db = build_database(fact_rows, dim_rows, seed=1)
    rng = np.random.default_rng(2)
    X = rng.uniform(0.0, 10.0, (5000, 2))
    y = X[:, 0] * 2.0 - X[:, 1]
    pipeline = Pipeline([("m", DecisionTreeRegressor(max_depth=6))]).fit(X, y)
    db.store_model(
        "score", pipeline, metadata={"feature_names": ["x1", "x2"]}
    )
    inner = star_sql("f.x1 AS x1, f.x2 AS x2, f.fid AS fid", _where())
    sql = (
        "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        "WHERE model_name = 'score');"
        f"SELECT d.fid, p.yhat FROM PREDICT(MODEL = @m, DATA = ({inner}) "
        "AS d) WITH (yhat float) AS p"
    )
    dp_plan, legacy_plan, dp_stats = _plans(db, sql)
    dp_rows = db.execute_plan(dp_plan).num_rows
    assert dp_rows == db.execute_plan(legacy_plan).num_rows
    legacy_seconds = measure(
        lambda: db.execute_plan(legacy_plan), repeats=3, warmup=1
    )
    dp_seconds = measure(lambda: db.execute_plan(dp_plan), repeats=3, warmup=1)
    return {
        "fact_rows": fact_rows,
        "result_rows": dp_rows,
        "dp_relations_searched": dp_stats.dp_relations,
        "legacy_greedy_seconds": round(legacy_seconds, 5),
        "dp_seconds": round(dp_seconds, 5),
        "speedup": round(speedup(legacy_seconds, dp_seconds), 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny row counts; exercises the path without timing claims",
    )
    args = parser.parse_args()

    if args.smoke:
        star = bench_star_join(fact_rows=20_000, dim_rows=40)
        predict = bench_predict_over_join(fact_rows=15_000, dim_rows=40)
    else:
        star = bench_star_join(fact_rows=300_000, dim_rows=50)
        predict = bench_predict_over_join(fact_rows=200_000, dim_rows=50)

    results = {
        "smoke": args.smoke,
        "star_join_8way": star,
        "predict_over_join": predict,
        "claims": {
            "star_speedup_target": 2.0,
            "star_speedup_measured": star["speedup"],
            "star_pass": star["speedup"] >= 2.0,
            "predict_speedup_target": 1.5,
            "predict_speedup_measured": predict["speedup"],
            "predict_pass": predict["speedup"] >= 1.5,
        },
    }
    print(json.dumps(results, indent=2))
    if not args.smoke:
        assert results["claims"]["star_pass"], (
            "8-way star DP speedup below 2x: "
            f"{results['claims']['star_speedup_measured']}"
        )
        assert results["claims"]["predict_pass"], (
            "PREDICT-over-join DP speedup below 1.5x: "
            f"{results['claims']['predict_speedup_measured']}"
        )


if __name__ == "__main__":
    main()
