"""The benchmark regression gate (CI's ``bench-gate`` job).

Runs every benchmark in smoke mode, collects each one's JSON report
into a single ``BENCH_PR<N>.json`` artifact, and fails (exit 1) when
any recorded metric drops below the floor committed in
``benchmarks/baselines.json`` — turning the benchmark trajectory from
one-off claims into a tracked, regression-gated series (in the spirit
of reproducibility studies: numbers that cannot silently rot).

Baselines format (per benchmark)::

    {
      "bench_planning": {
        "checks": [
          {"path": "zone_map_pruning.speedup", "floor": 1.5},
          {"path": "claims.pruning_pass", "expect": true}
        ]
      }
    }

``floor`` is a numeric minimum (chosen well below warm-run smoke
numbers, so shared-runner noise does not flake the gate, while
catastrophic regressions — a pruning path silently disabled, a join
strategy never chosen — still fail); ``expect`` is exact equality for
structural claims.

Run:  PYTHONPATH=src python benchmarks/check_regressions.py \
          [--smoke] [--out BENCH_PR6.json] [--bench name ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

BENCHMARKS = (
    "bench_serving",
    "bench_net",
    "bench_planning",
    "bench_memo",
    "bench_distributed",
    "bench_backends",
)

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)


def run_benchmark(name: str, smoke: bool) -> tuple[dict | None, str]:
    """``(report, error)`` — the benchmark's JSON output, or why not."""
    command = [sys.executable, os.path.join(HERE, f"{name}.py")]
    if smoke:
        command.append("--smoke")
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, cwd=ROOT
    )
    report = extract_json(proc.stdout)
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
        return report, f"exit code {proc.returncode}: " + " | ".join(tail)
    if report is None:
        return None, "no JSON object found in benchmark output"
    return report, ""


def extract_json(stdout: str) -> dict | None:
    """The last JSON object a benchmark printed (reports come last)."""
    lines = stdout.splitlines()
    for index in range(len(lines) - 1, -1, -1):
        if not lines[index].startswith("{"):
            continue
        try:
            return json.loads("\n".join(lines[index:]))
        except json.JSONDecodeError:
            continue
    return None


def lookup(report: dict, path: str):
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def evaluate(name: str, report: dict, checks: list[dict]) -> list[str]:
    failures = []
    for check in checks:
        path = check["path"]
        value = lookup(report, path)
        if "floor" in check:
            if not isinstance(value, (int, float)) or value < check["floor"]:
                failures.append(
                    f"{name}: {path} = {value!r} below floor {check['floor']}"
                )
        if "expect" in check:
            if value != check["expect"]:
                failures.append(
                    f"{name}: {path} = {value!r}, expected {check['expect']!r}"
                )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--out",
        default=None,
        help="write the combined benchmark reports to this JSON file",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=BENCHMARKS,
        help="benchmark(s) to run (default: all)",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(HERE, "baselines.json"),
    )
    args = parser.parse_args()

    with open(args.baselines) as fh:
        baselines = json.load(fh)

    combined: dict[str, object] = {"smoke": args.smoke, "benchmarks": {}}
    failures: list[str] = []
    for name in args.bench or BENCHMARKS:
        print(f"== {name} ==", flush=True)
        report, error = run_benchmark(name, args.smoke)
        combined["benchmarks"][name] = (
            report if report is not None else {"error": error}
        )
        if error:
            failures.append(f"{name}: {error}")
            continue
        checks = baselines.get(name, {}).get("checks", [])
        bench_failures = evaluate(name, report, checks)
        failures.extend(bench_failures)
        for line in bench_failures:
            print("  REGRESSION " + line)
        if not bench_failures:
            print(f"  ok ({len(checks)} checks)")

    combined["regressions"] = failures
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(combined, fh, indent=2)
        print(f"wrote {args.out}")

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for line in failures:
            print("  " + line)
        return 1
    print("\nall benchmarks within recorded floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
