"""Figure 2(c): model inlining (tree -> SQL CASE) on hospital stay.

Paper: a decision tree translated to SQL and inlined runs ~17x faster at
300K rows than scikit-learn scoring that reads its input from the DB (the
win is mostly avoiding the data hand-off out of the engine); adding
predicate-based pruning gives ~29% more, 24.5x total.

Our baseline mirrors the paper's: score the pipeline *through the database
boundary* — per-batch extraction of tuples out of the engine into the
external scorer (the out-of-process path) — versus the fully inlined
relational plan.
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report, speedup
from repro import RavenSession
from repro.data import hospital
from repro.ml import model_format
from repro.core.runtime import OutOfProcessRuntime

ROWS = 30_000

QUERY_NO_FILTER = hospital.INFERENCE_QUERY.replace(
    "WHERE d.pregnant = 1 AND p.length_of_stay > 7", ""
)


@pytest.fixture(scope="module")
def environment():
    database, dataset, pipeline = hospital.setup_database(
        ROWS, seed=13, max_depth=6
    )
    bundle = model_format.dumps(pipeline)
    return database, dataset, pipeline, bundle


def run_inlined(database):
    session = RavenSession(database)  # inlining enabled by default
    return session.execute(QUERY_NO_FILTER)


def run_external(database, bundle):
    """The paper's baseline: read data from the DB, score outside it."""
    table = database.execute(
        "WITH data AS (SELECT pi.id AS id, pi.age AS age, "
        "pi.pregnant AS pregnant, pi.gender AS gender, bt.bp AS bp, "
        "pt.heart_rate AS heart_rate, bt.glucose AS glucose "
        "FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id "
        "JOIN prenatal_tests AS pt ON pi.id = pt.id) SELECT * FROM data"
    )
    runtime = OutOfProcessRuntime()
    return runtime.score_model(bundle, table, hospital.QUERY_FEATURE_NAMES)


def test_fig2c_inlined(benchmark, environment):
    database, *_ = environment
    session = RavenSession(database)
    graph, _ = session.optimize(session.analyze(QUERY_NO_FILTER))
    benchmark.pedantic(
        lambda: session.executor.execute(graph), rounds=3, iterations=1
    )


def test_fig2c_external_baseline(benchmark, environment):
    database, _dataset, _pipeline, bundle = environment
    benchmark.pedantic(
        lambda: run_external(database, bundle), rounds=2, iterations=1
    )


def test_fig2c_shape(environment):
    database, dataset, pipeline, bundle = environment
    session = RavenSession(database)
    graph, _ = session.optimize(session.analyze(QUERY_NO_FILTER))
    inlined = measure(lambda: session.executor.execute(graph), repeats=3)
    external = measure(lambda: run_external(database, bundle), repeats=2)

    # Predicate-pruned variant (the full Fig. 1 query with pregnant=1).
    pruned_graph, _ = session.optimize(session.analyze(hospital.INFERENCE_QUERY))
    pruned = measure(
        lambda: session.executor.execute(pruned_graph), repeats=3
    )

    gain = speedup(external, inlined)
    report(
        "Fig 2(c) model inlining (hospital stay)",
        [
            {
                "variant": "external scoring (baseline)",
                "seconds": external,
                "speedup_vs_baseline": 1.0,
            },
            {
                "variant": "inlined SQL CASE",
                "seconds": inlined,
                "speedup_vs_baseline": gain,
            },
            {
                "variant": "inlined + predicate pruning",
                "seconds": pruned,
                "speedup_vs_baseline": speedup(external, pruned),
            },
        ],
        "~17x for inlining at 300K rows; ~24.5x with predicate pruning",
    )
    assert gain > 3.0, "inlining should beat cross-boundary scoring clearly"
    # Correctness: the inlined plan produces the pipeline's predictions.
    result = session.executor.execute(graph)
    assert np.array_equal(
        np.sort(result.column("length_of_stay")),
        np.sort(pipeline.predict(dataset.features)),
    )
