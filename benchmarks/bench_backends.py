"""Compiled scoring backends benchmark: fused tensorized trees vs the
per-node interpreter.

Claims measured (printed as JSON for the bench trajectory):

* **Large-batch tree ensemble** — the ``fused`` backend (tree-ensemble
  -> stacked GEMM with preallocated buffers, Hummingbird-style) scores
  a wide forest over a large scan >= 3x faster than the ``numpy``
  per-node interpreter, at row-identical output.
* **Small-batch latency** — at 64 rows the interpreter is competitive
  (reported, not gated): this is the crossover the memo's calibrated
  cost model exploits when it keeps small batches on ``numpy``.
* **End-to-end PREDICT** — the optimizer picks ``backend=fused`` for a
  large stored-model scan without any session-level opt-in.

The ``numba`` backend is measured when importable (CI runs a matrix
leg with numba installed); without it the fused numpy stages are the
compiled ceiling and ``numba_available`` is reported ``false``.

Run:  PYTHONPATH=src python benchmarks/bench_backends.py [--smoke]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from harness import measure, report, speedup
from repro import Database, Table
from repro.ml.ensemble import RandomForestRegressor
from repro.tensor.backends.numba_backend import numba_available
from repro.tensor.converters import convert
from repro.tensor.session import InferenceSession

SMALL_BATCH = 64


def train_forest(n_estimators: int, max_depth: int, n_features: int):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(600, n_features))
    y = X[:, 0] * 2.0 - X[:, 1] + 0.1 * rng.normal(size=600)
    return RandomForestRegressor(
        n_estimators=n_estimators, max_depth=max_depth, random_state=7
    ).fit(X, y)


def bench_tree_ensemble(
    n_estimators: int, max_depth: int, rows: int, n_features: int = 8
) -> dict:
    forest = train_forest(n_estimators, max_depth, n_features)
    graph = convert(forest, n_features=n_features)
    rng = np.random.default_rng(11)
    X = rng.normal(size=(rows, n_features))
    small = X[:SMALL_BATCH]

    sessions = {
        name: InferenceSession(graph, backend=name)
        for name in (
            ("numpy", "fused", "numba")
            if numba_available()
            else ("numpy", "fused")
        )
    }
    fused_exec = sessions["fused"]._executor
    feed = graph.inputs[0]

    outputs = {
        name: session.run({feed: X})[0] for name, session in sessions.items()
    }
    for name, out in outputs.items():
        np.testing.assert_allclose(
            out, outputs["numpy"], rtol=1e-9, atol=1e-9,
            err_msg=f"{name} diverged from interpreter",
        )

    seconds = {
        name: measure(lambda s=session: s.run({feed: X}), repeats=5, warmup=2)
        for name, session in sessions.items()
    }
    small_seconds = {
        name: measure(
            lambda s=session: s.run({feed: small}), repeats=5, warmup=2
        )
        for name, session in sessions.items()
    }

    result = {
        "trees": n_estimators,
        "max_depth": max_depth,
        "rows": rows,
        "fused_tree_steps": fused_exec.fused_tree_steps,
        "numpy_seconds": round(seconds["numpy"], 5),
        "fused_seconds": round(seconds["fused"], 5),
        "fused_speedup": round(speedup(seconds["numpy"], seconds["fused"]), 2),
        "small_batch_rows": SMALL_BATCH,
        "small_numpy_seconds": round(small_seconds["numpy"], 6),
        "small_fused_seconds": round(small_seconds["fused"], 6),
    }
    if "numba" in seconds:
        result["numba_seconds"] = round(seconds["numba"], 5)
        result["numba_speedup"] = round(
            speedup(seconds["numpy"], seconds["numba"]), 2
        )
    return result


def bench_end_to_end_predict(rows: int, n_features: int = 8) -> dict:
    """The optimizer flips a large stored-model PREDICT to ``fused``."""
    forest = train_forest(n_estimators=40, max_depth=3, n_features=n_features)
    rng = np.random.default_rng(13)
    db = Database()
    cols = {"rid": np.arange(rows, dtype=np.int64)}
    features = [f"f{j}" for j in range(n_features)]
    for name in features:
        cols[name] = rng.normal(size=rows)
    db.register_table("t", Table.from_dict(cols))
    db.store_model("m", forest, metadata={"feature_names": features})
    sql = (
        "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        "WHERE model_name = 'm');"
        "SELECT d.rid, p.y FROM PREDICT(MODEL = @m, DATA = t AS d) "
        "WITH (y float) AS p"
    )
    plan = "\n".join(db.execute(sql.replace("SELECT d.rid", "EXPLAIN SELECT d.rid"))["plan"])
    run_seconds = measure(lambda: db.execute(sql), repeats=3, warmup=1)
    return {
        "rows": rows,
        "chose_fused": "backend=fused" in plan,
        "query_seconds": round(run_seconds, 5),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller forest/scan; exercises the path without full timings",
    )
    args = parser.parse_args()

    if args.smoke:
        ensemble = bench_tree_ensemble(
            n_estimators=60, max_depth=3, rows=10_000
        )
        end_to_end = bench_end_to_end_predict(rows=9_000)
    else:
        ensemble = bench_tree_ensemble(
            n_estimators=200, max_depth=3, rows=30_000
        )
        end_to_end = bench_end_to_end_predict(rows=30_000)

    results = {
        "smoke": args.smoke,
        "numba_available": numba_available(),
        "tree_ensemble": ensemble,
        "end_to_end_predict": end_to_end,
        "claims": {
            "fused_speedup_target": 3.0,
            "fused_speedup_measured": ensemble["fused_speedup"],
            "fused_pass": ensemble["fused_speedup"] >= 3.0,
            "optimizer_picks_fused": end_to_end["chose_fused"],
        },
    }
    report(
        "Compiled scoring backends (tree ensemble)",
        [
            {
                "backend": name,
                "seconds": results["tree_ensemble"][f"{name}_seconds"],
                "speedup_vs_numpy": results["tree_ensemble"].get(
                    f"{name}_speedup", 1.0
                ),
            }
            for name in ("numpy", "fused", "numba")
            if f"{name}_seconds" in results["tree_ensemble"]
        ],
        paper_claim=(
            "tensorized (GEMM) tree scoring beats per-node interpretation "
            "on large batches; runtime choice is a per-query optimizer "
            "decision (Fig. 2(d)/Fig. 3)"
        ),
    )
    print(json.dumps(results, indent=2))
    assert results["claims"]["fused_pass"], (
        "fused tree-ensemble speedup below 3x: "
        f"{results['claims']['fused_speedup_measured']}"
    )
    assert results["claims"]["optimizer_picks_fused"], (
        "optimizer kept the interpreter on a large scan"
    )


if __name__ == "__main__":
    main()
