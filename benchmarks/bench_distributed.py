"""Distributed shard execution benchmark: scatter-gather vs one process.

Claims measured (printed as JSON for the bench trajectory):

* **shard-parallel PREDICT-over-scan** — scoring a tree-ensemble
  pipeline over a hash-sharded table through the multi-process worker
  pool is >= 2x faster than the single-process executor (which is
  itself morsel-*threaded*, so the win is specifically escaping the
  GIL: ensemble tree traversal is Python/NumPy-indexing bound and does
  not scale on threads).
* **scatter-gather aggregate** — a GROUP BY over the sharded table
  runs as shard-local partial aggregates combined by a final aggregate,
  so only group rows cross the process boundary.
* **zone-map shard routing** — an equality predicate on the shard key
  routes to exactly one shard; the runtime's counters prove untouched
  shards were never dispatched.
* **co-located shard join** — an equi-join of two tables sharded by
  the join key under the same spec runs shard *i* ⋈ shard *i* on the
  worker pool, >= 2x faster than the coordinator's single-process hash
  join (whose Python build/probe loop is GIL-bound).
* **shuffle join** — the same join over *incompatible* layouts (8 vs 5
  shards) hash-shuffles both sides into worker-owned buckets and joins
  them in parallel; still faster than the coordinator join, with the
  extra partition/transfer toll visible in the gap to co-located.
* **multi-stage aggregate over shuffle join** — a GROUP BY over the
  shuffle join runs the bucket join *and* a partial aggregate in the
  same worker round-trip (a staged fragment), so only group rows cross
  the process boundary; >= 2x faster than the coordinator collapse
  (the ablation baseline with ``enable_staged_fragments=False``, which
  gathers every join row and aggregates on the coordinator).
* **distributed LEFT outer join** — NULL-extension of unmatched probe
  rows happens on the workers, and kind-aware routing never drops
  preserved-side shards; faster than the coordinator's single-process
  outer join.

The parallel-speedup assertions require real cores: on boxes with
fewer than 4 usable CPUs (``os.sched_getaffinity``) the fan-out is
physically serialized and the numbers are recorded but not asserted.

Run:  PYTHONPATH=src python benchmarks/bench_distributed.py [--smoke]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from harness import capture_metrics, counter_rate, measure, speedup
from repro.concurrency import default_max_workers
from repro.ml.ensemble import GradientBoostingRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler
from repro.relational.algebra.executor import ExecutionOptions
from repro.relational.database import Database
from repro.relational.table import Table

PREDICT_SQL = """
DECLARE @m varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'score');
SELECT id, p.out
FROM PREDICT(MODEL = @m, DATA = events AS d) WITH (out float) AS p
WHERE d.grp < {cutoff}
"""

AGGREGATE_SQL = (
    "SELECT grp, COUNT(*) AS c, AVG(v) AS m, MAX(v) AS hi "
    "FROM events GROUP BY grp"
)

ROUTED_SQL = "SELECT COUNT(*) AS c, AVG(v) AS m FROM events WHERE grp = 7"

JOIN_SQL = (
    "SELECT a.id, a.v, b.w FROM events AS a JOIN mirror AS b "
    "ON a.id = b.id"
)

LEFT_JOIN_SQL = (
    "SELECT a.id, a.v, b.w FROM events AS a LEFT JOIN mirror AS b "
    "ON a.id = b.id"
)

AGG_JOIN_SQL = (
    "SELECT a.grp, COUNT(*) AS c, AVG(b.w) AS m "
    "FROM events AS a JOIN mirror AS b ON a.id = b.id "
    "GROUP BY a.grp"
)


def make_events(num_rows: int, num_groups: int, seed: int = 11) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": np.arange(num_rows, dtype=np.int64),
            "grp": rng.integers(0, num_groups, num_rows).astype(np.int64),
            "v": rng.normal(size=num_rows),
        }
    )


def make_mirror(num_rows: int, seed: int = 13) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": rng.permutation(num_rows).astype(np.int64),
            "w": rng.normal(size=num_rows),
        }
    )


def train_model(table: Table, estimators: int, depth: int) -> Pipeline:
    X = np.column_stack(
        [table.column("grp").astype(np.float64), table.column("v")]
    )
    y = table.column("v") * 2.0 + np.sin(table.column("grp"))
    sample = min(4_000, len(y))
    return Pipeline(
        [
            ("scale", StandardScaler()),
            (
                "gb",
                GradientBoostingRegressor(
                    n_estimators=estimators, max_depth=depth
                ),
            ),
        ]
    ).fit(X[:sample], y[:sample])


def build_databases(
    table: Table, model: Pipeline, shards: int
) -> tuple[Database, Database]:
    """(single-process baseline, sharded multi-process) over one table."""
    metadata = {"feature_names": ["grp", "v"]}
    single = Database(options=ExecutionOptions(enable_distributed=False))
    single.register_table("events", table)
    single.store_model("score", model, metadata=metadata)
    # At least 4 assumed workers so the optimizer actually chooses the
    # fan-out plans being measured — on a 1-2 core box the pool is
    # physically serialized (the speedup assertions are gated on real
    # cores below) but the mechanism still runs end to end.
    sharded = Database(
        options=ExecutionOptions(
            max_workers=max(4, default_max_workers()),
            distributed_mode="process",
        )
    )
    sharded.register_table("events", table)
    sharded.shard_table("events", "grp", shards)
    sharded.store_model("score", model, metadata=metadata)
    single.catalog.table_statistics("events")
    sharded.catalog.table_statistics("events")
    return single, sharded


def bench_predict(
    single: Database, sharded: Database, num_groups: int
) -> dict:
    sql = PREDICT_SQL.format(cutoff=int(num_groups * 0.8))
    sort = lambda t: t.take(np.argsort(t.column("id")))  # noqa: E731
    base_rows = sort(single.execute(sql))
    dist_rows = sort(sharded.execute(sql))
    assert base_rows.num_rows == dist_rows.num_rows
    assert np.allclose(base_rows.column("out"), dist_rows.column("out"))
    single_seconds = measure(lambda: single.execute(sql), repeats=5, warmup=2)
    sharded_seconds = measure(
        lambda: sharded.execute(sql), repeats=5, warmup=2
    )
    routing = sharded._executor.last_shard_routing or {}
    return {
        "result_rows": base_rows.num_rows,
        "shards_scanned": routing.get("shards_scanned"),
        "shards_total": routing.get("shards_total"),
        "single_process_seconds": round(single_seconds, 5),
        "shard_parallel_seconds": round(sharded_seconds, 5),
        "speedup": round(speedup(single_seconds, sharded_seconds), 2),
    }


def bench_aggregate(single: Database, sharded: Database) -> dict:
    sort = lambda t: t.take(np.argsort(t.column("grp")))  # noqa: E731
    assert sort(single.execute(AGGREGATE_SQL)).equals(
        sort(sharded.execute(AGGREGATE_SQL))
    )
    single_seconds = measure(
        lambda: single.execute(AGGREGATE_SQL), repeats=5, warmup=2
    )
    sharded_seconds = measure(
        lambda: sharded.execute(AGGREGATE_SQL), repeats=5, warmup=2
    )
    return {
        "single_process_seconds": round(single_seconds, 5),
        "scatter_gather_seconds": round(sharded_seconds, 5),
        "speedup": round(speedup(single_seconds, sharded_seconds), 2),
    }


def build_join_databases(
    events: Table, mirror: Table, shards: int, colocated: bool
) -> tuple[Database, Database]:
    """(coordinator-join baseline, distributed-join database).

    ``colocated=True`` shards both tables by the join key under the
    same spec; ``False`` gives the mirror a different shard count so
    only the shuffle strategy applies.
    """
    single = Database(options=ExecutionOptions(enable_distributed=False))
    single.register_table("events", events)
    single.register_table("mirror", mirror)
    distributed = Database(
        options=ExecutionOptions(
            max_workers=max(4, default_max_workers()),
            distributed_mode="process",
        )
    )
    distributed.register_table("events", events)
    distributed.register_table("mirror", mirror)
    distributed.shard_table("events", "id", shards)
    distributed.shard_table(
        "mirror", "id", shards if colocated else max(2, shards - 3)
    )
    for db in (single, distributed):
        db.catalog.table_statistics("events")
        db.catalog.table_statistics("mirror")
    return single, distributed


def bench_join(
    single: Database, distributed: Database, strategy: str
) -> dict:
    explain = "\n".join(
        distributed.execute("EXPLAIN " + JOIN_SQL).column("plan")
    )
    chosen = f"join={strategy}" in explain
    sort = lambda t: t.take(np.argsort(t.column("id")))  # noqa: E731
    base_rows = sort(single.execute(JOIN_SQL))
    dist_rows = sort(distributed.execute(JOIN_SQL))
    assert base_rows.num_rows == dist_rows.num_rows
    assert np.allclose(base_rows.column("w"), dist_rows.column("w"))
    single_seconds = measure(
        lambda: single.execute(JOIN_SQL), repeats=5, warmup=2
    )
    distributed_seconds = measure(
        lambda: distributed.execute(JOIN_SQL), repeats=5, warmup=2
    )
    return {
        "strategy_chosen": chosen,
        "result_rows": base_rows.num_rows,
        "coordinator_join_seconds": round(single_seconds, 5),
        "distributed_join_seconds": round(distributed_seconds, 5),
        "speedup": round(speedup(single_seconds, distributed_seconds), 2),
    }


def bench_left_join(single: Database, distributed: Database) -> dict:
    """LEFT outer join over co-located shards.

    The mirror covers only half the probe ids, so workers NULL-extend
    the unmatched half — the parity check below proves the padding
    matches the coordinator's outer join bit for bit (NaN == NULL for
    float columns).
    """
    explain = "\n".join(
        distributed.execute("EXPLAIN " + LEFT_JOIN_SQL).column("plan")
    )
    chosen = "join=colocated" in explain and "Join LEFT" in explain
    sort = lambda t: t.take(np.argsort(t.column("id")))  # noqa: E731
    base_rows = sort(single.execute(LEFT_JOIN_SQL))
    dist_rows = sort(distributed.execute(LEFT_JOIN_SQL))
    assert base_rows.num_rows == dist_rows.num_rows
    assert np.allclose(
        base_rows.column("w"), dist_rows.column("w"), equal_nan=True
    )
    null_extended = int(np.isnan(base_rows.column("w")).sum())
    single_seconds = measure(
        lambda: single.execute(LEFT_JOIN_SQL), repeats=5, warmup=2
    )
    distributed_seconds = measure(
        lambda: distributed.execute(LEFT_JOIN_SQL), repeats=5, warmup=2
    )
    return {
        "strategy_chosen": chosen,
        "result_rows": base_rows.num_rows,
        "null_extended_rows": null_extended,
        "coordinator_join_seconds": round(single_seconds, 5),
        "distributed_join_seconds": round(distributed_seconds, 5),
        "speedup": round(speedup(single_seconds, distributed_seconds), 2),
    }


def build_staged_database(
    events: Table, mirror: Table, shards: int, staged: bool
) -> Database:
    """A distributed database over *incompatible* layouts (so the join
    shuffles), with the staged-fragment rewrite on or off. Off is the
    ablation baseline: the shuffle join still runs on the workers, but
    every join row is gathered and aggregated on the coordinator."""
    db = Database(
        options=ExecutionOptions(
            max_workers=max(4, default_max_workers()),
            distributed_mode="process",
            enable_staged_fragments=staged,
        )
    )
    db.register_table("events", events)
    db.register_table("mirror", mirror)
    db.shard_table("events", "id", shards)
    db.shard_table("mirror", "id", max(2, shards - 3))
    db.catalog.table_statistics("events")
    db.catalog.table_statistics("mirror")
    return db


def bench_staged_aggregate(
    events: Table, mirror: Table, shards: int
) -> dict:
    """Aggregate over a shuffle join: multi-stage worker pipeline vs
    coordinator collapse.

    The staged plan runs the bucket join *and* the partial aggregate in
    one worker round-trip, shipping group rows; the collapse baseline
    ships the full join output and aggregates on the coordinator.
    """
    sort = lambda t: t.take(np.argsort(t.column("grp")))  # noqa: E731
    collapse = build_staged_database(events, mirror, shards, staged=False)
    try:
        collapse_explain = "\n".join(
            collapse.execute("EXPLAIN " + AGG_JOIN_SQL).column("plan")
        )
        collapse_rows = sort(collapse.execute(AGG_JOIN_SQL))
        collapse_seconds = measure(
            lambda: collapse.execute(AGG_JOIN_SQL), repeats=5, warmup=2
        )
    finally:
        collapse.close()
    staged = build_staged_database(events, mirror, shards, staged=True)
    try:
        staged_explain = "\n".join(
            staged.execute("EXPLAIN " + AGG_JOIN_SQL).column("plan")
        )
        staged_rows = sort(staged.execute(AGG_JOIN_SQL))
        staged_seconds = measure(
            lambda: staged.execute(AGG_JOIN_SQL), repeats=5, warmup=2
        )
        stages_run = staged.distributed.stats().get("stages_run", 0)
    finally:
        staged.close()
    assert collapse_rows.num_rows == staged_rows.num_rows
    assert np.allclose(collapse_rows.column("c"), staged_rows.column("c"))
    assert np.allclose(
        collapse_rows.column("m"), staged_rows.column("m"), equal_nan=True
    )
    return {
        "multi_stage_chosen": "stages=" in staged_explain
        and "[partial-agg]" in staged_explain,
        "collapse_is_single_stage": "stages=" not in collapse_explain,
        "group_rows": staged_rows.num_rows,
        "stages_run": stages_run,
        "coordinator_collapse_seconds": round(collapse_seconds, 5),
        "multi_stage_seconds": round(staged_seconds, 5),
        "speedup": round(speedup(collapse_seconds, staged_seconds), 2),
    }


def bench_routing(single: Database, sharded: Database) -> dict:
    assert single.execute(ROUTED_SQL).equals(sharded.execute(ROUTED_SQL))
    before = sharded.distributed.stats()
    sharded.execute(ROUTED_SQL)
    after = sharded.distributed.stats()
    single_seconds = measure(
        lambda: single.execute(ROUTED_SQL), repeats=5, warmup=2
    )
    with capture_metrics() as registry:
        sharded_seconds = measure(
            lambda: sharded.execute(ROUTED_SQL), repeats=5, warmup=2
        )
    metrics = registry.snapshot()
    return {
        "shards_scanned_per_query": after["shards_scanned"]
        - before["shards_scanned"],
        "shards_pruned_per_query": after["shards_pruned"]
        - before["shards_pruned"],
        "single_process_seconds": round(single_seconds, 5),
        "routed_seconds": round(sharded_seconds, 5),
        "speedup": round(speedup(single_seconds, sharded_seconds), 2),
        # Event-bus-derived routing metrics over the measured runs —
        # the regression gate floors the prune rate so zone-map routing
        # can never silently stop pruning.
        "metrics": {
            "shard_queries": metrics.get("distributed.shard_queries", 0),
            "shards_scanned": metrics.get("distributed.shards_scanned", 0),
            "shards_pruned": metrics.get("distributed.shards_pruned", 0),
            "shard_prune_rate": round(
                counter_rate(
                    metrics,
                    "distributed.shards_pruned",
                    "distributed.shards_scanned",
                ),
                4,
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny row counts; exercises the path without timing claims",
    )
    args = parser.parse_args()

    if args.smoke:
        num_rows, num_groups, shards = 8_000, 40, 4
        join_rows = 60_000
        estimators, depth = 8, 2
    else:
        num_rows, num_groups, shards = 240_000, 400, 8
        join_rows = 200_000
        estimators, depth = 60, 4

    table = make_events(num_rows, num_groups)
    model = train_model(table, estimators, depth)
    single, sharded = build_databases(table, model, shards)
    try:
        predict = bench_predict(single, sharded, num_groups)
        aggregate = bench_aggregate(single, sharded)
        routed = bench_routing(single, sharded)
        runtime_stats = sharded.distributed.stats()
    finally:
        sharded.close()

    join_events = make_events(join_rows, num_groups)
    join_mirror = make_mirror(join_rows)
    join_single, join_colocated = build_join_databases(
        join_events, join_mirror, shards, colocated=True
    )
    try:
        colocated = bench_join(join_single, join_colocated, "colocated")
    finally:
        join_colocated.close()
    shuffle_single, join_shuffled = build_join_databases(
        join_events, join_mirror, shards, colocated=False
    )
    try:
        shuffled = bench_join(shuffle_single, join_shuffled, "shuffle")
    finally:
        join_shuffled.close()

    left_mirror = make_mirror(join_rows // 2, seed=17)
    left_single, left_distributed = build_join_databases(
        join_events, left_mirror, shards, colocated=True
    )
    try:
        left_join = bench_left_join(left_single, left_distributed)
    finally:
        left_distributed.close()

    staged_agg = bench_staged_aggregate(join_events, join_mirror, shards)

    cpus = default_max_workers()
    parallel_hardware = cpus >= 4
    results = {
        "smoke": args.smoke,
        "table_rows": num_rows,
        "join_rows": join_rows,
        "shards": shards,
        "usable_cpus": cpus,
        "runtime": runtime_stats,
        "predict_over_sharded_scan": predict,
        "scatter_gather_aggregate": aggregate,
        "zone_map_shard_routing": routed,
        "colocated_join": colocated,
        "shuffle_join": shuffled,
        "left_outer_join": left_join,
        "staged_aggregate_over_join": staged_agg,
        "claims": {
            "predict_speedup_target": 2.0,
            "predict_speedup_measured": predict["speedup"],
            "predict_pass": predict["speedup"] >= 2.0,
            "routing_prunes_shards": routed["shards_pruned_per_query"]
            >= shards - 1,
            "join_speedup_target": 2.0,
            "colocated_join_speedup_measured": colocated["speedup"],
            "colocated_join_pass": colocated["speedup"] >= 2.0,
            "shuffle_join_speedup_measured": shuffled["speedup"],
            "shuffle_join_pass": shuffled["speedup"] >= 1.2,
            "left_join_speedup_measured": left_join["speedup"],
            "left_join_pass": left_join["speedup"] >= 1.2,
            "staged_aggregate_speedup_target": 2.0,
            "staged_aggregate_speedup_measured": staged_agg["speedup"],
            "staged_aggregate_pass": staged_agg["speedup"] >= 2.0,
            "parallel_hardware": parallel_hardware,
        },
    }
    print(json.dumps(results, indent=2))
    assert results["claims"]["routing_prunes_shards"], (
        "shard-key equality should route to a single shard; scanned "
        f"{routed['shards_scanned_per_query']} of {shards}"
    )
    assert colocated["strategy_chosen"], (
        "compatible layouts should plan a co-located shard join"
    )
    assert shuffled["strategy_chosen"], (
        "incompatible layouts should plan a shuffle join"
    )
    assert left_join["strategy_chosen"], (
        "LEFT join over compatible layouts should stay co-located"
    )
    assert left_join["null_extended_rows"] > 0, (
        "half-coverage mirror should leave probe rows NULL-extended"
    )
    assert staged_agg["multi_stage_chosen"], (
        "aggregate over shuffle join should plan a multi-stage fragment"
    )
    assert staged_agg["collapse_is_single_stage"], (
        "enable_staged_fragments=False should suppress worker stages"
    )
    if not args.smoke and parallel_hardware:
        assert results["claims"]["predict_pass"], (
            "shard-parallel PREDICT speedup "
            f"{predict['speedup']}x below the 2x claim"
        )
        assert results["claims"]["colocated_join_pass"], (
            "co-located join speedup "
            f"{colocated['speedup']}x below the 2x claim"
        )
        assert results["claims"]["shuffle_join_pass"], (
            "shuffle join speedup "
            f"{shuffled['speedup']}x below the 1.2x claim"
        )
        assert results["claims"]["left_join_pass"], (
            "distributed LEFT join speedup "
            f"{left_join['speedup']}x below the 1.2x claim"
        )
        assert results["claims"]["staged_aggregate_pass"], (
            "multi-stage aggregate speedup "
            f"{staged_agg['speedup']}x below the 2x claim vs collapse"
        )


if __name__ == "__main__":
    main()
