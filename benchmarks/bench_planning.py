"""Physical-planning benchmark: zone-map pruning and join reordering.

Claims measured (printed as JSON for the bench trajectory):

* **zone-map pruning** — a selective scan + PREDICT query over a
  partitioned table is >= 2x faster with zone-map partition pruning
  than the same morsel-parallel execution scanning every partition (an
  isolated ablation: only the pruning flag differs). The fully
  sequential full-scan baseline is also reported for context.
* **join reordering** — the statistics-driven greedy join order
  (smallest estimated intermediate first) measurably beats the naive
  FROM-order plan on a 3-way join where syntax order is adversarial.

Run:  PYTHONPATH=src python benchmarks/bench_planning.py [--smoke]

``--smoke`` shrinks row counts so CI can exercise the full code path in
seconds; the speedup assertions only apply to full-size runs.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from harness import measure, speedup
from repro import Database, Table
from repro.data import flights
from repro.relational.algebra.executor import ExecutionOptions

PREDICT_SQL = """
DECLARE @m varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'flight_delay');
SELECT d.flight_id, p.delayed
FROM PREDICT(MODEL = @m, DATA = flights AS d)
WITH (delayed float) AS p
WHERE d.flight_id < {cutoff}
"""

JOIN_SQL = """
SELECT e.flight_id, d.label, s.note
FROM flights AS e
JOIN dims AS d ON e.carrier = d.carrier
JOIN sampled AS s ON e.flight_id = s.flight_id
"""


def bench_zone_map_pruning(
    num_rows: int, train_rows: int, partition_rows: int
) -> dict:
    dataset = flights.generate(num_rows, seed=3)
    table = dataset.flights.with_partitioning(partition_rows)
    pipeline = flights.train_logistic_pipeline(
        flights.generate(train_rows, seed=3), max_iter=80
    )
    cutoff = max(1, num_rows // 1000)  # ~0.1% of rows survive the filter

    def database(options: ExecutionOptions) -> Database:
        db = Database(options=options)
        db.register_table("flights", table)
        db.store_model(
            "flight_delay",
            pipeline,
            metadata={"feature_names": flights.FEATURE_NAMES},
        )
        db.catalog.table_statistics("flights")  # warm stats
        return db

    threshold = partition_rows * 2
    pruned_db = database(ExecutionOptions(parallel_row_threshold=threshold))
    # Ablation baseline: identical morsel-parallel execution with ONLY
    # zone-map pruning disabled, so the measured speedup is pruning's
    # alone and not conflated with thread parallelism.
    unpruned_db = database(
        ExecutionOptions(
            enable_zone_map_pruning=False, parallel_row_threshold=threshold
        )
    )
    sequential_db = database(
        ExecutionOptions(
            enable_zone_map_pruning=False, morsel_parallel_predict=False
        )
    )
    sql = PREDICT_SQL.format(cutoff=cutoff)
    rows = pruned_db.execute(sql).num_rows
    assert rows == unpruned_db.execute(sql).num_rows
    assert rows == sequential_db.execute(sql).num_rows

    unpruned_seconds = measure(
        lambda: unpruned_db.execute(sql), repeats=5, warmup=1
    )
    sequential_seconds = measure(
        lambda: sequential_db.execute(sql), repeats=5, warmup=1
    )
    pruned_seconds = measure(
        lambda: pruned_db.execute(sql), repeats=5, warmup=1
    )
    pruning = pruned_db._executor.last_scan_pruning or {}
    return {
        "table_rows": num_rows,
        "partition_rows": partition_rows,
        "result_rows": rows,
        "partitions_total": pruning.get("partitions_total"),
        "partitions_scanned": pruning.get("partitions_scanned"),
        "unpruned_morsel_seconds": round(unpruned_seconds, 5),
        "sequential_full_scan_seconds": round(sequential_seconds, 5),
        "pruned_seconds": round(pruned_seconds, 5),
        "speedup": round(speedup(unpruned_seconds, pruned_seconds), 2),
        "speedup_vs_sequential": round(
            speedup(sequential_seconds, pruned_seconds), 2
        ),
    }


def bench_join_reorder(num_rows: int) -> dict:
    rng = np.random.default_rng(9)
    dataset = flights.generate(num_rows, seed=5)
    db = Database()
    db.register_table("flights", dataset.flights)
    db.register_table(
        "dims",
        Table.from_dict(
            {
                "carrier": np.arange(flights.NUM_CARRIERS, dtype=np.int64),
                "label": np.array(
                    [f"c{i}" for i in range(flights.NUM_CARRIERS)]
                ),
            }
        ),
    )
    sampled_ids = rng.choice(num_rows, size=max(8, num_rows // 2000), replace=False)
    db.register_table(
        "sampled",
        Table.from_dict(
            {
                "flight_id": np.sort(sampled_ids).astype(np.int64),
                "note": np.array(["sampled"] * len(sampled_ids)),
            }
        ),
    )
    for name in ("flights", "dims", "sampled"):
        db.catalog.table_statistics(name)

    naive_plan = db.bind(JOIN_SQL)  # binder output: joins in FROM order
    optimized_plan = db._planner.optimize(naive_plan)
    naive_rows = db.execute_plan(naive_plan).num_rows
    assert naive_rows == db.execute_plan(optimized_plan).num_rows

    naive_seconds = measure(
        lambda: db.execute_plan(naive_plan), repeats=5, warmup=1
    )
    reordered_seconds = measure(
        lambda: db.execute_plan(optimized_plan), repeats=5, warmup=1
    )
    return {
        "table_rows": num_rows,
        "result_rows": naive_rows,
        "naive_order_seconds": round(naive_seconds, 5),
        "reordered_seconds": round(reordered_seconds, 5),
        "speedup": round(speedup(naive_seconds, reordered_seconds), 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny row counts; exercises the path without timing claims",
    )
    args = parser.parse_args()

    if args.smoke:
        pruning = bench_zone_map_pruning(
            num_rows=20_000, train_rows=2_000, partition_rows=1_024
        )
        reorder = bench_join_reorder(num_rows=20_000)
    else:
        pruning = bench_zone_map_pruning(
            num_rows=800_000, train_rows=20_000, partition_rows=8_192
        )
        reorder = bench_join_reorder(num_rows=200_000)

    results = {
        "smoke": args.smoke,
        "zone_map_pruning": pruning,
        "join_reorder": reorder,
        "claims": {
            "pruning_speedup_target": 2.0,
            "pruning_speedup_measured": pruning["speedup"],
            "pruning_pass": pruning["speedup"] >= 2.0,
            "join_reorder_speedup_target": 1.15,
            "join_reorder_speedup_measured": reorder["speedup"],
            "join_reorder_pass": reorder["speedup"] >= 1.15,
        },
    }
    print(json.dumps(results, indent=2))
    if not args.smoke:
        assert results["claims"]["pruning_pass"], (
            "zone-map pruning speedup below 2x: "
            f"{results['claims']['pruning_speedup_measured']}"
        )
        assert results["claims"]["join_reorder_pass"], (
            "join reorder win below 1.15x: "
            f"{results['claims']['join_reorder_speedup_measured']}"
        )


if __name__ == "__main__":
    main()
