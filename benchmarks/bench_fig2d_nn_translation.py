"""Figure 2(d): NN translation of a random forest (hospital stay).

Paper (1K -> 1M rows): RF-NN on CPU is ~2x faster than scikit-learn RF at
1K rows, with the gap closing as data grows; RF-NN on GPU starts ~10%
faster than RF-NN CPU and reaches up to 15x over scikit-learn at 1M rows
(GPU utilization grows with batch size).

The GPU series uses the calibrated analytical device model (DESIGN.md's
substitution table); its *time* is simulated, its *results* are computed
by the same kernels and asserted equal.
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report
from repro.data import hospital
from repro.ml import RandomForestClassifier
from repro.tensor import InferenceSession, SimulatedGPU, convert

SIZES = [1_000, 10_000, 100_000]


@pytest.fixture(scope="module")
def environment():
    train = hospital.generate(20_000, seed=21)
    forest = RandomForestClassifier(
        n_estimators=10, max_depth=8, random_state=0
    ).fit(train.features, train.length_of_stay)
    graph = convert(forest)
    cpu_session = InferenceSession(graph, device="cpu")
    gpu_session = InferenceSession(graph, device=SimulatedGPU())
    datasets = {n: hospital.generate(n, seed=22).features for n in SIZES}
    return forest, cpu_session, gpu_session, datasets


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("variant", ["rf_sklearn", "rf_nn_cpu"])
def test_fig2d(benchmark, environment, variant, size):
    forest, cpu_session, _gpu, datasets = environment
    X = datasets[size]
    if variant == "rf_sklearn":
        benchmark.pedantic(lambda: forest.predict(X), rounds=3, iterations=1)
    else:
        benchmark.pedantic(
            lambda: cpu_session.run({"X": X}), rounds=3, iterations=1
        )


def test_fig2d_shape(environment):
    forest, cpu_session, gpu_session, datasets = environment
    rows = []
    ratios_gpu = {}
    for size in SIZES:
        X = datasets[size]
        rf_time = measure(lambda: forest.predict(X), repeats=3)
        nn_cpu_time = measure(lambda: cpu_session.run({"X": X}), repeats=3)
        gpu_session.run({"X": X})  # warm
        gpu_session.run({"X": X})
        nn_gpu_time = gpu_session.last_run_stats.simulated_seconds
        ratios_gpu[size] = rf_time / nn_gpu_time
        rows.append(
            {
                "rows": size,
                "rf_sklearn_s": rf_time,
                "rf_nn_cpu_s": nn_cpu_time,
                "rf_nn_gpu_s(simulated)": nn_gpu_time,
                "gpu_speedup_vs_rf": rf_time / nn_gpu_time,
            }
        )
        # Exactness of the translation on every size.
        nn_prediction = cpu_session.run({"X": X})[0].ravel()
        assert np.array_equal(nn_prediction, forest.predict(X))
        gpu_prediction = gpu_session.run({"X": X})[0].ravel()
        assert np.array_equal(gpu_prediction, forest.predict(X))
    report(
        "Fig 2(d) NN translation of a random forest (hospital stay)",
        rows,
        "RF-NN(CPU) ~2x RF at 1K; GPU up to 15x over scikit-learn at 1M",
    )
    # Shape: the GPU advantage must grow with batch size (utilization).
    assert ratios_gpu[SIZES[-1]] > ratios_gpu[SIZES[0]]
    # And at the largest size the GPU clearly beats scikit-learn scoring.
    assert ratios_gpu[SIZES[-1]] > 2.0
