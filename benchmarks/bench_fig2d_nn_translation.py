"""Figure 2(d): NN translation of a random forest (hospital stay).

Paper (1K -> 1M rows): RF-NN on CPU is ~2x faster than scikit-learn RF at
1K rows, with the gap closing as data grows; RF-NN on GPU starts ~10%
faster than RF-NN CPU and reaches up to 15x over scikit-learn at 1M rows
(GPU utilization grows with batch size).

The GPU series uses the calibrated analytical device model (DESIGN.md's
substitution table); its *time* is simulated, its *results* are computed
by the same kernels and asserted equal.

The CPU series runs once per scoring backend: ``numpy`` (the per-node
interpreter) and ``fused`` (stacked-GEMM tree kernel); ``numba`` joins
when importable. All backends must agree exactly with scikit-learn.
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report
from repro.data import hospital
from repro.ml import RandomForestClassifier
from repro.tensor import InferenceSession, SimulatedGPU, convert
from repro.tensor.backends.numba_backend import numba_available

SIZES = [1_000, 10_000, 100_000]
CPU_BACKENDS = ("numpy", "fused") + (("numba",) if numba_available() else ())


@pytest.fixture(scope="module")
def environment():
    train = hospital.generate(20_000, seed=21)
    forest = RandomForestClassifier(
        n_estimators=10, max_depth=8, random_state=0
    ).fit(train.features, train.length_of_stay)
    graph = convert(forest)
    cpu_sessions = {
        name: InferenceSession(graph, device="cpu", backend=name)
        for name in CPU_BACKENDS
    }
    gpu_session = InferenceSession(graph, device=SimulatedGPU())
    datasets = {n: hospital.generate(n, seed=22).features for n in SIZES}
    return forest, cpu_sessions, gpu_session, datasets


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "variant", ["rf_sklearn"] + [f"rf_nn_{name}" for name in CPU_BACKENDS]
)
def test_fig2d(benchmark, environment, variant, size):
    forest, cpu_sessions, _gpu, datasets = environment
    X = datasets[size]
    if variant == "rf_sklearn":
        benchmark.pedantic(lambda: forest.predict(X), rounds=3, iterations=1)
    else:
        session = cpu_sessions[variant.removeprefix("rf_nn_")]
        benchmark.pedantic(
            lambda: session.run({"X": X}), rounds=3, iterations=1
        )


def test_fig2d_shape(environment):
    forest, cpu_sessions, gpu_session, datasets = environment
    rows = []
    ratios_gpu = {}
    for size in SIZES:
        X = datasets[size]
        rf_time = measure(lambda: forest.predict(X), repeats=3)
        backend_times = {
            name: measure(lambda s=session: s.run({"X": X}), repeats=3)
            for name, session in cpu_sessions.items()
        }
        gpu_session.run({"X": X})  # warm
        gpu_session.run({"X": X})
        nn_gpu_time = gpu_session.last_run_stats.simulated_seconds
        ratios_gpu[size] = rf_time / nn_gpu_time
        row = {
            "rows": size,
            "rf_sklearn_s": rf_time,
            "rf_nn_gpu_s(simulated)": nn_gpu_time,
            "gpu_speedup_vs_rf": rf_time / nn_gpu_time,
        }
        for name, seconds in backend_times.items():
            row[f"rf_nn_{name}_s"] = seconds
        rows.append(row)
        # Exactness of the translation, per backend, on every size.
        for session in cpu_sessions.values():
            nn_prediction = session.run({"X": X})[0].ravel()
            assert np.array_equal(nn_prediction, forest.predict(X))
        gpu_prediction = gpu_session.run({"X": X})[0].ravel()
        assert np.array_equal(gpu_prediction, forest.predict(X))
    report(
        "Fig 2(d) NN translation of a random forest (hospital stay)",
        rows,
        "RF-NN(CPU) ~2x RF at 1K; GPU up to 15x over scikit-learn at 1M",
    )
    # Shape: the GPU advantage must grow with batch size (utilization).
    assert ratios_gpu[SIZES[-1]] > ratios_gpu[SIZES[0]]
    # And at the largest size the GPU clearly beats scikit-learn scoring.
    assert ratios_gpu[SIZES[-1]] > 2.0
