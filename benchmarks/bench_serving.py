"""Serving-layer benchmark: plan-cache and micro-batching speedups.

Claims measured (printed as JSON for the bench trajectory):

* **plan cache** — executing a prepared inference query (analyze/optimize
  once, bind parameters per request) is >= 3x faster than running the full
  one-shot pipeline (parse -> analyze -> optimize -> codegen -> execute)
  for every request, over >= 1000 requests.
* **micro-batching** — coalescing one-row PREDICT requests into
  vectorized batches yields >= 2x the throughput of one-row-at-a-time
  prepared execution for the same requests.

* **observability overhead** — the always-compiled-in instrumentation
  (event emission + span guards) costs <= 5% of per-request latency
  when nothing subscribes (the "enabled-but-unsubscribed" default),
  measured by primitive-cost accounting: (calls per request) x (cost
  per unsubscribed call) against the request's wall time.
* **observatory overhead** — running the full workload observatory
  (drift watchdog + query-log profiler attached to the bus) costs
  <= 5% of per-request latency, by the same primitive-cost accounting
  with the consumers *subscribed*.

Also writes CI artifacts: one sample query trace
(``TRACE_SAMPLE.json`` / ``TRACE_SAMPLE_PATH``), a Prometheus
text-exposition snapshot (``PROM_SNAPSHOT.txt`` / ``PROM_SNAPSHOT_PATH``)
and a profiler report (``PROFILER_REPORT.json`` /
``PROFILER_REPORT_PATH``).

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks row counts so CI can exercise the full code path in
seconds; the speedup assertions only apply to full-size runs.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from concurrent.futures import wait

import numpy as np

from harness import capture_metrics, counter_rate
from repro import Database, RavenSession, Table
from repro.ml import DecisionTreeClassifier, Pipeline, StandardScaler
from repro.observability import events
from repro.observability import trace as qtrace
from repro.serving import MicroBatcher

FILTER_SQL = """
DECLARE @model varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'approval');
SELECT d.id, p.pred
FROM PREDICT(MODEL = @model, DATA = applicants AS d)
WITH (pred float) AS p
WHERE d.age < ?
"""

PREDICT_SQL = """
DECLARE @model varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'approval');
SELECT d.age, d.income, p.pred
FROM PREDICT(MODEL = @model, DATA = requests AS d)
WITH (pred float) AS p
"""


def build_session(num_rows: int) -> RavenSession:
    rng = np.random.default_rng(7)
    age = rng.uniform(18, 90, num_rows)
    income = rng.normal(55.0, 20.0, num_rows)
    approved = ((income > 50.0) | (age < 30.0)).astype(np.float64)
    database = Database()
    database.register_table(
        "applicants",
        Table.from_dict(
            {"id": np.arange(num_rows), "age": age, "income": income}
        ),
    )
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(np.column_stack([age, income]), approved)
    database.store_model(
        "approval", pipeline, metadata={"feature_names": ["age", "income"]}
    )
    return RavenSession(database)


def bench_plan_cache(session: RavenSession, num_requests: int) -> dict:
    cutoffs = [25.0 + (i % 50) for i in range(num_requests)]

    # Baseline: the full one-shot pipeline per request (what a client
    # without prepared queries pays every time).
    start = time.perf_counter()
    for cutoff in cutoffs:
        session.execute(FILTER_SQL.replace("?", repr(cutoff)))
    baseline_seconds = time.perf_counter() - start

    with capture_metrics() as registry:
        prepared = session.prepare(FILTER_SQL)
        start = time.perf_counter()
        for cutoff in cutoffs:
            prepared.execute(params=(cutoff,))
        prepared_seconds = time.perf_counter() - start
        # Each re-prepare of the same SQL (a new client session arriving)
        # resolves against the shared normalized-plan cache.
        for _ in range(20):
            session.prepare(FILTER_SQL)
    metrics = registry.snapshot()

    return {
        "requests": num_requests,
        "one_shot_seconds": round(baseline_seconds, 4),
        "prepared_seconds": round(prepared_seconds, 4),
        "one_shot_rps": round(num_requests / baseline_seconds, 1),
        "prepared_rps": round(num_requests / prepared_seconds, 1),
        "speedup": round(baseline_seconds / max(prepared_seconds, 1e-9), 2),
        "plan_cache": session.plan_cache.stats(),
        # Event-bus-derived view of the same scenario, for the
        # metrics-based regression gates.
        "metrics": {
            "plan_cache_hits": metrics.get("plan_cache.hit", 0),
            "plan_cache_misses": metrics.get("plan_cache.miss", 0),
            "plan_cache_hit_rate": round(
                counter_rate(metrics, "plan_cache.hit", "plan_cache.miss"), 4
            ),
        },
    }


def bench_micro_batching(
    session: RavenSession, num_requests: int, max_batch_rows: int = 128
) -> dict:
    rng = np.random.default_rng(11)
    rows = [
        Table.from_dict(
            {
                "age": np.array([rng.uniform(18, 90)]),
                "income": np.array([rng.normal(55.0, 20.0)]),
            }
        )
        for _ in range(num_requests)
    ]
    template = rows[0]
    prepared = session.prepare(PREDICT_SQL, data={"requests": template})

    # Baseline: one row at a time through the (already cheap) prepared path.
    start = time.perf_counter()
    for row in rows:
        prepared.execute(data={"requests": row})
    unbatched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with MicroBatcher(
        lambda table: prepared.execute(data={"requests": table}),
        max_batch_rows=max_batch_rows,
        max_wait_seconds=0.005,
    ) as batcher:
        futures = [batcher.submit(row) for row in rows]
        batcher.flush()
        wait(futures, timeout=600)
    batched_seconds = time.perf_counter() - start
    for future in futures:
        assert future.result().num_rows == 1

    return {
        "requests": num_requests,
        "max_batch_rows": max_batch_rows,
        "unbatched_seconds": round(unbatched_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "unbatched_rps": round(num_requests / unbatched_seconds, 1),
        "batched_rps": round(num_requests / batched_seconds, 1),
        "speedup": round(unbatched_seconds / max(batched_seconds, 1e-9), 2),
    }


def bench_observability_overhead(
    session: RavenSession, num_requests: int
) -> dict:
    """Instrumentation cost with nobody subscribed (the serving default).

    The tracing/event hooks are compiled into the hot path, so "off"
    cannot be measured by removing them; instead the overhead is
    accounted directly: count the emit/span call sites one request
    passes through (via a probe request with a subscriber and a trace
    attached), microbenchmark the *unsubscribed* cost of each primitive,
    and compare their product against the request's measured wall time.
    """
    prepared = session.prepare(FILTER_SQL)
    cutoffs = [25.0 + (i % 50) for i in range(num_requests)]

    start = time.perf_counter()
    for cutoff in cutoffs:
        prepared.execute(params=(cutoff,))
    per_request_seconds = (time.perf_counter() - start) / num_requests

    # Probe: how many events / spans does one request produce?
    with events.BUS.subscribe_queue() as sub:
        with qtrace.trace_query("probe") as trace:
            prepared.execute(params=(30.0,))
        events_per_request = len(sub.drain())
    spans_per_request = trace.span_count

    # Primitive costs in the unsubscribed / untraced state.
    probes = 200_000
    start = time.perf_counter()
    for _ in range(probes):
        events.emit("bench.noop", value=1)
    emit_seconds = (time.perf_counter() - start) / probes
    start = time.perf_counter()
    for _ in range(probes):
        with qtrace.span("noop", value=1):
            pass
    span_seconds = (time.perf_counter() - start) / probes

    overhead_seconds = (
        events_per_request * emit_seconds + spans_per_request * span_seconds
    )
    overhead_fraction = overhead_seconds / max(per_request_seconds, 1e-12)
    return {
        "requests": num_requests,
        "per_request_seconds": round(per_request_seconds, 7),
        "events_per_request": events_per_request,
        "spans_per_request": spans_per_request,
        "emit_unsubscribed_ns": round(emit_seconds * 1e9, 1),
        "span_untraced_ns": round(span_seconds * 1e9, 1),
        "overhead_seconds_per_request": round(overhead_seconds, 9),
        "overhead_fraction": round(overhead_fraction, 5),
    }


def bench_observatory_overhead(
    session: RavenSession, num_requests: int
) -> dict:
    """Serving cost of the full observatory, attached and listening.

    Same primitive-cost accounting as
    :func:`bench_observability_overhead`, but with the drift watchdog
    and query-log profiler subscribed: per-event *dispatch* cost (the
    bus fan-out plus both consumers folding the event) times events per
    request, plus the profiler's per-trace fold, against the request's
    wall time.
    """
    from repro.observability.profiler import QueryLogProfiler
    from repro.observability.watchdog import WorkloadWatchdog

    prepared = session.prepare(FILTER_SQL)
    cutoffs = [25.0 + (i % 50) for i in range(num_requests)]

    start = time.perf_counter()
    for cutoff in cutoffs:
        prepared.execute(params=(cutoff,))
    per_request_seconds = (time.perf_counter() - start) / num_requests

    watchdog = WorkloadWatchdog(
        session.database, auto_analyze=False
    ).attach(events.BUS)
    profiler = QueryLogProfiler().attach(events.BUS)
    try:
        # Events per request with the observatory listening, probed
        # under a trace (the profiler implies tracing), plus the two
        # serving-envelope events (submitted/completed) RavenServer
        # emits around every request this path doesn't pass through.
        with events.BUS.subscribe_queue() as sub:
            with qtrace.trace_query("probe"):
                prepared.execute(params=(30.0,))
            events_per_request = len(sub.drain()) + 2
        # Per-event dispatch cost through the subscribed consumers;
        # serving.completed is the watchdog's busiest path (it also
        # debounce-checks the poll clock).
        probes = 200_000
        start = time.perf_counter()
        for _ in range(probes):
            events.emit(
                "serving.completed", query="bench", latency_seconds=0.001
            )
        dispatch_seconds = (time.perf_counter() - start) / probes
        # Per-trace profiler fold (paid once per traced request).
        with qtrace.trace_query("probe") as trace:
            prepared.execute(params=(30.0,))
        record_probes = 20_000
        start = time.perf_counter()
        for _ in range(record_probes):
            profiler.record(trace)
        record_seconds = (time.perf_counter() - start) / record_probes
    finally:
        profiler.detach()
        watchdog.detach()

    overhead_seconds = (
        events_per_request * dispatch_seconds + record_seconds
    )
    overhead_fraction = overhead_seconds / max(per_request_seconds, 1e-12)
    return {
        "requests": num_requests,
        "per_request_seconds": round(per_request_seconds, 7),
        "events_per_request": events_per_request,
        "dispatch_subscribed_ns": round(dispatch_seconds * 1e9, 1),
        "profiler_record_us": round(record_seconds * 1e6, 2),
        "watchdog_polls": watchdog.stats()["polls"],
        "overhead_seconds_per_request": round(overhead_seconds, 9),
        "overhead_fraction": round(overhead_fraction, 5),
    }


def write_trace_sample(session: RavenSession) -> str:
    """One real traced request, dumped as JSON for the CI artifact."""
    prepared = session.prepare(FILTER_SQL)
    with qtrace.trace_query("bench_serving.sample") as trace:
        prepared.execute(params=(40.0,))
    path = os.environ.get("TRACE_SAMPLE_PATH", "TRACE_SAMPLE.json")
    with open(path, "w") as fh:
        fh.write(trace.to_json(indent=2))
    return path


def write_observatory_artifacts(session: RavenSession) -> dict:
    """A Prometheus snapshot and a profiler report from a short traced
    run — the CI artifacts proving the export surfaces stay render-able."""
    from repro.observability.export import render_prometheus
    from repro.observability.metrics import ServingMetrics
    from repro.observability.profiler import QueryLogProfiler

    metrics = ServingMetrics().attach(events.BUS)
    profiler = QueryLogProfiler().attach(events.BUS)
    prepared = session.prepare(FILTER_SQL)
    try:
        for i in range(20):
            with qtrace.trace_query("bench_serving.observatory") as trace:
                prepared.execute(params=(25.0 + i,))
            profiler.record(trace)
    finally:
        profiler.detach()
        metrics.detach()
    prom_path = os.environ.get("PROM_SNAPSHOT_PATH", "PROM_SNAPSHOT.txt")
    with open(prom_path, "w") as fh:
        fh.write(render_prometheus(metrics.registry.snapshot()))
    report_path = os.environ.get(
        "PROFILER_REPORT_PATH", "PROFILER_REPORT.json"
    )
    with open(report_path, "w") as fh:
        json.dump(profiler.report(), fh, indent=2, default=str)
    return {"prometheus": prom_path, "profiler_report": report_path}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny row counts; exercises the path without timing claims",
    )
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args()

    table_rows = 200 if args.smoke else 2_000
    num_requests = args.requests or (60 if args.smoke else 1_000)

    session = build_session(table_rows)
    # Smoke workloads are tiny (sub-millisecond requests over a 200-row
    # table), which inflates the instrumentation *fraction*; the 5%
    # claim is asserted at full size, smoke gets a noise-tolerant bound.
    overhead_target = 0.15 if args.smoke else 0.05
    # The observatory adds subscribed dispatch + a per-trace fold; on
    # sub-millisecond smoke requests the *fraction* inflates the same
    # way, so smoke gets the same style of relaxed bound.
    observatory_target = 0.25 if args.smoke else 0.05
    results = {
        "table_rows": table_rows,
        "smoke": args.smoke,
        "plan_cache": bench_plan_cache(session, num_requests),
        "micro_batching": bench_micro_batching(session, num_requests),
        "observability_overhead": bench_observability_overhead(
            session, num_requests
        ),
        "observatory_overhead": bench_observatory_overhead(
            session, num_requests
        ),
    }
    results["trace_sample_path"] = write_trace_sample(session)
    results["artifacts"] = write_observatory_artifacts(session)
    results["claims"] = {
        "plan_cache_speedup_target": 3.0,
        "plan_cache_speedup_measured": results["plan_cache"]["speedup"],
        "plan_cache_pass": results["plan_cache"]["speedup"] >= 3.0,
        "micro_batch_speedup_target": 2.0,
        "micro_batch_speedup_measured": results["micro_batching"]["speedup"],
        "micro_batch_pass": results["micro_batching"]["speedup"] >= 2.0,
        "overhead_target": overhead_target,
        "overhead_measured": results["observability_overhead"][
            "overhead_fraction"
        ],
        "overhead_pass": results["observability_overhead"][
            "overhead_fraction"
        ]
        <= overhead_target,
        "observatory_target": observatory_target,
        "observatory_measured": results["observatory_overhead"][
            "overhead_fraction"
        ],
        "observatory_pass": results["observatory_overhead"][
            "overhead_fraction"
        ]
        <= observatory_target,
    }
    print(json.dumps(results, indent=2))
    assert results["claims"]["overhead_pass"], (
        "unsubscribed observability overhead above "
        f"{overhead_target:.0%}: "
        f"{results['claims']['overhead_measured']:.2%}"
    )
    assert results["claims"]["observatory_pass"], (
        "watchdog+profiler observatory overhead above "
        f"{observatory_target:.0%}: "
        f"{results['claims']['observatory_measured']:.2%}"
    )
    if not args.smoke:
        assert results["claims"]["plan_cache_pass"], (
            "plan-cache speedup below 3x: "
            f"{results['claims']['plan_cache_speedup_measured']}"
        )
        assert results["claims"]["micro_batch_pass"], (
            "micro-batch speedup below 2x: "
            f"{results['claims']['micro_batch_speedup_measured']}"
        )


if __name__ == "__main__":
    main()
