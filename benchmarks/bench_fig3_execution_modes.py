"""Figure 3: Raven vs standalone ORT vs Raven Ext (RF and MLP pipelines).

Paper observations reproduced here:
 (i/ii) Raven ~= standalone ORT in the mid range, and *faster* on small
        inputs thanks to model/session caching across queries (ORT reloads
        the model per query);
 (iii)  on large inputs, Raven wins again (~5x in the paper) because the
        engine parallelizes scan + PREDICT;
 (iv)   Raven Ext pays a ~0.5 s constant out-of-process startup;
 (v)    batch scoring beats tuple-at-a-time by ~an order of magnitude
        (bench_text_batching.py).

"Standalone ORT" = creating an InferenceSession from the serialized graph
and running it (a fresh session per query, like loading the model file);
"Raven" = the in-database path with a warm session cache and chunked
parallel PREDICT.
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report
from repro import Database, Table
from repro.data import hospital
from repro.ml import (
    MLPClassifier,
    Pipeline,
    RandomForestClassifier,
    StandardScaler,
    model_format,
)
from repro.core.runtime import OutOfProcessRuntime
from repro.tensor import InferenceSession, convert
from repro.tensor.serialize import dumps as graph_dumps
from repro.tensor.serialize import loads as graph_loads

SIZES = [1_000, 20_000, 120_000]
PARALLEL_THRESHOLD = 50_000


def _models():
    train = hospital.generate(8_000, seed=31)
    rf = Pipeline(
        [
            ("scale", StandardScaler()),
            (
                "clf",
                RandomForestClassifier(
                    n_estimators=8, max_depth=7, random_state=0
                ),
            ),
        ]
    ).fit(train.features, train.length_of_stay)
    mlp = Pipeline(
        [
            ("scale", StandardScaler()),
            (
                "clf",
                MLPClassifier(
                    hidden_layer_sizes=(32, 16), max_iter=25, random_state=0
                ),
            ),
        ]
    ).fit(train.features, train.length_of_stay)
    return {"random_forest": rf, "mlp": mlp}


@pytest.fixture(scope="module")
def environment():
    models = _models()
    datasets = {n: hospital.generate(n, seed=32) for n in SIZES}
    databases = {}
    for name, pipeline in models.items():
        graph = convert(pipeline)
        db = Database()
        db.store_model(
            name,
            graph,
            flavor="tensor.graph",
            metadata={"feature_names": hospital.FEATURE_NAMES},
        )
        for n, data in datasets.items():
            db.register_table(
                f"rows_{n}",
                Table.from_dict(
                    {
                        fname: data.features[:, i]
                        for i, fname in enumerate(hospital.FEATURE_NAMES)
                    }
                ),
            )
        db.executor_options.parallel_row_threshold = PARALLEL_THRESHOLD
        databases[name] = (db, graph_dumps(graph))
    return models, datasets, databases


def raven_query(model_name: str, size: int) -> str:
    return (
        f"DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
        f"WHERE model_name = '{model_name}');"
        f"SELECT p.prediction FROM PREDICT(MODEL = @m, DATA = rows_{size} AS d) "
        f"WITH (prediction float) AS p"
    )


def run_ort(serialized_graph: str, X: np.ndarray):
    """Standalone ORT: load model, build session, run (per query)."""
    session = InferenceSession(graph_loads(serialized_graph))
    return session.run({session.input_names[0]: X})


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("model_name", ["random_forest", "mlp"])
@pytest.mark.parametrize("mode", ["ort", "raven"])
def test_fig3(benchmark, environment, model_name, mode, size):
    models, datasets, databases = environment
    db, serialized = databases[model_name]
    X = datasets[size].features
    if mode == "ort":
        benchmark.pedantic(
            lambda: run_ort(serialized, X), rounds=3, iterations=1
        )
    else:
        sql = raven_query(model_name, size)
        db.execute(sql)  # warm the model/session cache
        benchmark.pedantic(lambda: db.execute(sql), rounds=3, iterations=1)


@pytest.mark.parametrize("model_name", ["random_forest"])
def test_fig3_raven_ext(benchmark, environment, model_name):
    """Raven Ext at one size: the startup constant dominates anyway."""
    models, datasets, _ = environment
    pipeline = models[model_name]
    bundle = model_format.dumps(pipeline)
    data = datasets[SIZES[0]]
    table = Table.from_dict(
        {
            fname: data.features[:, i]
            for i, fname in enumerate(hospital.FEATURE_NAMES)
        }
    )
    runtime = OutOfProcessRuntime()
    benchmark.pedantic(
        lambda: runtime.score_model(bundle, table, hospital.FEATURE_NAMES),
        rounds=2,
        iterations=1,
    )


def test_fig3_shape(environment):
    models, datasets, databases = environment
    rows = []
    for model_name in models:
        db, serialized = databases[model_name]
        pipeline = models[model_name]
        bundle = model_format.dumps(pipeline)
        runtime = OutOfProcessRuntime()
        for size in SIZES:
            X = datasets[size].features
            ort = measure(lambda: run_ort(serialized, X), repeats=3)
            sql = raven_query(model_name, size)
            db.execute(sql)  # warm cache
            raven = measure(lambda: db.execute(sql), repeats=3)
            if size == SIZES[0]:
                table = db.table(f"rows_{size}")
                ext = measure(
                    lambda: runtime.score_model(
                        bundle, table, hospital.FEATURE_NAMES
                    ),
                    repeats=2,
                    warmup=0,
                )
            else:
                ext = float("nan")
            rows.append(
                {
                    "model": model_name,
                    "rows": size,
                    "ort_s": ort,
                    "raven_s": raven,
                    "raven_ext_s": ext,
                    "raven_vs_ort": ort / raven,
                }
            )
    report(
        "Fig 3 execution modes (ORT vs Raven vs Raven Ext)",
        rows,
        "Raven ~ORT mid-range; faster small (caching) and large "
        "(parallel scan+PREDICT ~5x); Ext has ~0.5s constant overhead",
    )
    by_key = {(r["model"], r["rows"]): r for r in rows}
    for model_name in models:
        small = by_key[(model_name, SIZES[0])]
        large = by_key[(model_name, SIZES[-1])]
        # Observation (iii): parallel PREDICT keeps Raven at least
        # competitive at the largest size.
        assert large["raven_s"] < large["ort_s"] * 1.5
        # Observation (iv): the external runtime pays a large constant.
        assert small["raven_ext_s"] > small["raven_s"] * 3
    # Observation (ii): caching wins on small inputs where session
    # construction is non-trivial — the forest's graph, not the tiny MLP.
    assert by_key[("random_forest", SIZES[0])]["raven_vs_ort"] > 1.0
