"""Ablations over the runtime design choices DESIGN.md calls out.

Knobs isolated here, each mapped to a Fig. 3 observation:

* session caching on/off — observation (ii),
* parallel scan+PREDICT on/off — observation (iii),
* batch size sweep — observation (v) and §5's "ideal batch size to be
  investigated".
"""

import pytest

from benchmarks.harness import measure, report
from repro import Database, Table
from repro.data import hospital
from repro.ml import Pipeline, RandomForestClassifier, StandardScaler
from repro.tensor import convert

ROWS = 120_000


@pytest.fixture(scope="module")
def environment():
    train = hospital.generate(8_000, seed=61)
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            (
                "clf",
                RandomForestClassifier(
                    n_estimators=8, max_depth=7, random_state=0
                ),
            ),
        ]
    ).fit(train.features, train.length_of_stay)
    data = hospital.generate(ROWS, seed=62)

    def build_database(enable_cache: bool) -> Database:
        db = Database(enable_session_cache=enable_cache)
        db.store_model(
            "rf",
            convert(pipeline),
            flavor="tensor.graph",
            metadata={"feature_names": hospital.FEATURE_NAMES},
        )
        db.register_table(
            "rows",
            Table.from_dict(
                {
                    name: data.features[:, i]
                    for i, name in enumerate(hospital.FEATURE_NAMES)
                }
            ),
        )
        db.register_table(
            "rows_small",
            Table.from_dict(
                {
                    name: data.features[:500, i]
                    for i, name in enumerate(hospital.FEATURE_NAMES)
                }
            ),
        )
        return db

    return build_database


SQL_SMALL = (
    "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
    "WHERE model_name = 'rf');"
    "SELECT p.prediction FROM PREDICT(MODEL = @m, DATA = rows_small AS d) "
    "WITH (prediction float) AS p"
)
SQL_LARGE = SQL_SMALL.replace("rows_small", "rows")


@pytest.mark.parametrize("cache", ["cached", "uncached"])
def test_ablation_session_cache(benchmark, environment, cache):
    db = environment(enable_cache=(cache == "cached"))
    db.execute(SQL_SMALL)  # first call builds the session either way
    benchmark.pedantic(lambda: db.execute(SQL_SMALL), rounds=5, iterations=1)


@pytest.mark.parametrize("parallel", ["parallel", "sequential"])
def test_ablation_parallel_predict(benchmark, environment, parallel):
    db = environment(enable_cache=True)
    db.executor_options.parallel_predict = parallel == "parallel"
    db.executor_options.parallel_row_threshold = 50_000
    db.execute(SQL_LARGE)
    benchmark.pedantic(lambda: db.execute(SQL_LARGE), rounds=3, iterations=1)


def test_ablation_shapes(environment):
    # Caching: repeated small queries should be faster with the cache.
    cached_db = environment(enable_cache=True)
    uncached_db = environment(enable_cache=False)
    cached_db.execute(SQL_SMALL)
    uncached_db.execute(SQL_SMALL)
    cached = measure(lambda: cached_db.execute(SQL_SMALL), repeats=5)
    uncached = measure(lambda: uncached_db.execute(SQL_SMALL), repeats=5)

    # Parallelism: the large scan+PREDICT benefits from the thread pool.
    db = environment(enable_cache=True)
    db.executor_options.parallel_row_threshold = 50_000
    db.executor_options.parallel_predict = True
    db.execute(SQL_LARGE)
    parallel = measure(lambda: db.execute(SQL_LARGE), repeats=3)
    db.executor_options.parallel_predict = False
    sequential = measure(lambda: db.execute(SQL_LARGE), repeats=3)

    report(
        "Ablations: caching and parallel PREDICT",
        [
            {"knob": "session cache ON (500 rows)", "seconds": cached},
            {"knob": "session cache OFF (500 rows)", "seconds": uncached},
            {"knob": f"parallel PREDICT ON ({ROWS} rows)", "seconds": parallel},
            {"knob": f"parallel PREDICT OFF ({ROWS} rows)", "seconds": sequential},
        ],
        "Fig 3 obs (ii): caching wins small; obs (iii): parallelism wins large",
    )
    assert cached < uncached, "session cache should win on repeated queries"
    assert parallel < sequential * 1.1, (
        "parallel PREDICT should not lose at large sizes"
    )


def test_ablation_batch_size_sweep(environment):
    """§5(v): find where batching stops helping (the paper's open item)."""
    db = environment(enable_cache=True)
    db.executor_options.parallel_predict = False
    rows = []
    times = {}
    for batch in (64, 1024, 16_384, None):
        db.executor_options.default_batch_size = batch
        db.execute(SQL_LARGE)
        seconds = measure(lambda: db.execute(SQL_LARGE), repeats=3)
        times[batch] = seconds
        rows.append(
            {"batch_size": batch if batch else "whole input", "seconds": seconds}
        )
    db.executor_options.default_batch_size = None
    report(
        "Ablation: PREDICT batch size",
        rows,
        "batching beats tuple-at-a-time by ~10x; ideal size to investigate",
    )
    # Tiny batches pay per-call overhead: the sweep's best point is not 64.
    best = min(times, key=times.get)
    assert best != 64
