"""Figure 2(b): model clustering on flight delay.

Paper: k-means clustering over 700K flight rows; per-cluster precompiled
models reduce inference time by up to 54%, with diminishing relative gains
as clusters grow; hospital stay does not benefit (its categorical features
are already binary). Compile time is reported as negligible-to-modest
(0.4-42 s at paper scale).
"""

import numpy as np
import pytest

from benchmarks.harness import measure, report
from repro.core.optimizer.rules.clustering import compile_clustered_pipeline
from repro.data import flights, hospital

ROWS = 50_000
CLUSTER_COUNTS = [1, 2, 4, 8, 16]


@pytest.fixture(scope="module")
def environment():
    dataset = flights.generate(ROWS, seed=9)
    pipeline = flights.train_logistic_pipeline(dataset, C=0.5, max_iter=250)
    sample = dataset.features[:10_000]
    clustered = {
        k: compile_clustered_pipeline(
            pipeline,
            sample,
            n_clusters=k,
            cluster_columns=[0, 1, 2],  # carrier / origin / dest
            random_state=0,
        )
        for k in CLUSTER_COUNTS
    }
    return dataset, pipeline, clustered


@pytest.mark.parametrize("k", CLUSTER_COUNTS)
def test_fig2b(benchmark, environment, k):
    dataset, _pipeline, clustered = environment
    model = clustered[k]
    benchmark.pedantic(
        lambda: model.predict(dataset.features), rounds=3, iterations=1
    )


def test_fig2b_shape(environment):
    dataset, pipeline, clustered = environment
    X = dataset.features
    baseline = measure(lambda: pipeline.predict(X), repeats=3)
    rows = []
    reductions = {}
    for k in CLUSTER_COUNTS:
        model = clustered[k]
        clustered_time = measure(lambda: model.predict(X), repeats=3)
        reduction = 1.0 - clustered_time / baseline
        reductions[k] = reduction
        rows.append(
            {
                "clusters": k,
                "avg_model_width": model.average_model_width(),
                "compile_s": model.compile_seconds,
                "baseline_s": baseline,
                "clustered_s": clustered_time,
                "reduction_%": 100.0 * reduction,
            }
        )
        assert np.array_equal(pipeline.predict(X), model.predict(X))
    report(
        "Fig 2(b) model clustering (flight delay)",
        rows,
        "up to 54% lower inference time; gains grow then diminish with k",
    )
    # Shape: per-cluster models get narrower as k grows...
    assert (
        clustered[CLUSTER_COUNTS[-1]].average_model_width()
        < clustered[1].average_model_width()
    )
    # ...and the best clustered configuration beats few-cluster setups.
    assert max(reductions.values()) == max(
        reductions[k] for k in CLUSTER_COUNTS[2:]
    ), "gains should come from the higher cluster counts"


def test_fig2b_hospital_control(environment):
    """Hospital stay benefits much less than flight delay.

    The paper: hospital doesn't benefit "since its categorical features
    are already binary, therefore fewer features are dropped". The
    contrast we assert: clustering removes a far smaller *fraction* of the
    hospital model than of the one-hot-heavy flights model.
    """
    _dataset, flights_pipeline, clustered_flights = environment
    flights_full = _pipeline_width(flights_pipeline)
    flights_ratio = (
        clustered_flights[8].average_model_width() / flights_full
    )

    dataset = hospital.generate(10_000, seed=2)
    pipeline = hospital.train_tree_pipeline(dataset, max_depth=6)
    # Cluster on the categorical columns, as for flights. Hospital's are
    # pregnant/gender (features 1, 2) — already binary, so pinning them
    # drops at most two features.
    clustered = compile_clustered_pipeline(
        pipeline,
        dataset.features[:4000],
        n_clusters=8,
        cluster_columns=[1, 2],
        random_state=0,
    )
    hospital_full = float(dataset.features.shape[1])
    hospital_ratio = clustered.average_model_width() / hospital_full
    assert hospital_ratio > flights_ratio, (
        f"hospital kept {hospital_ratio:.2f} of its features vs "
        f"flights {flights_ratio:.2f}: the flights win should dominate"
    )


def _pipeline_width(pipeline) -> float:
    return float(len(pipeline.final_estimator.coef_))
