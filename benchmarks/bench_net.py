"""Network front-door benchmark: live HTTP serving under concurrency.

Scenarios (printed as JSON for the bench trajectory):

* **concurrent_clients** — keep-alive HTTP clients hammer
  ``POST /prepared/{name}/execute`` against a live asyncio front door;
  the gate floors end-to-end requests/second (conservatively — CI
  runners are shared) and requires zero errors.
* **overload_shedding** — with one worker pinned busy and a 2-slot
  admission queue, a request burst must be *shed*, not queued without
  bound: ``429`` from the queue, then ``503`` once the circuit breaker
  trips, then recovery to ``200`` after the cooldown.
* **idempotent_replay** — the same request with an ``Idempotency-Key``
  repeated N times executes once and replays byte-identically N-1
  times.

Run:  PYTHONPATH=src python benchmarks/bench_net.py [--smoke]

``--smoke`` shrinks row and request counts so CI exercises the full
code path in seconds; the throughput claim asserts only at full size.
"""

from __future__ import annotations

import argparse
import http.client
import json
import socket
import threading
import time

import numpy as np

from repro import Database, RavenSession, Table
from repro.serving import RavenServer
from repro.serving.net import HttpFrontDoor

PREPARED_SQL = "SELECT id, x FROM points WHERE x < ? ORDER BY id"


def build_database(rows: int) -> Database:
    rng = np.random.default_rng(42)
    db = Database()
    db.register_table(
        "points",
        Table.from_dict(
            {
                "id": np.arange(rows, dtype=np.int64),
                "x": rng.uniform(0.0, 100.0, rows),
                "y": rng.normal(0.0, 1.0, rows),
            }
        ),
    )
    return db


def _post(conn, path, payload):
    conn.request("POST", path, body=json.dumps(payload))
    response = conn.getresponse()
    body = response.read()
    return response.status, body


def bench_concurrent_clients(door, clients: int, per_client: int) -> dict:
    errors: list[object] = []
    barrier = threading.Barrier(clients + 1)

    def client_loop():
        conn = http.client.HTTPConnection(door.host, door.port, timeout=30)
        barrier.wait()
        for index in range(per_client):
            status, body = _post(
                conn,
                "/prepared/filter/execute",
                {"params": [float(5 + (index % 90))]},
            )
            if status != 200:
                errors.append((status, body[:120]))
        conn.close()

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    total = clients * per_client
    return {
        "clients": clients,
        "requests": total,
        "seconds": seconds,
        "requests_per_second": total / max(seconds, 1e-9),
        "errors": len(errors),
    }


def bench_overload_shedding(db) -> dict:
    session = RavenSession(db)
    server = RavenServer(session, workers=1, max_queue=2)
    server.prepare("filter", PREPARED_SQL)
    door = HttpFrontDoor(
        server,
        breaker_failure_threshold=3,
        breaker_cooldown_seconds=0.3,
        request_timeout_seconds=10.0,
    )
    door.start()
    statuses: list[int] = []
    lock = threading.Lock()
    try:
        # Pin the only worker busy so the burst saturates the queue
        # deterministically (same-process privilege; real deployments
        # reach this state through slow queries).
        busy = server._enqueue(lambda: time.sleep(0.6), label="busy")

        def burst():
            conn = http.client.HTTPConnection(
                door.host, door.port, timeout=30
            )
            for _ in range(3):
                status, _body = _post(
                    conn, "/query", {"sql": PREPARED_SQL, "params": [50.0]}
                )
                with lock:
                    statuses.append(status)
            conn.close()

        threads = [threading.Thread(target=burst) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        busy.result(5)

        # Past the cooldown the half-open probe should close the circuit.
        time.sleep(0.4)
        recovered = False
        conn = http.client.HTTPConnection(door.host, door.port, timeout=30)
        for _ in range(20):
            status, _body = _post(
                conn, "/query", {"sql": PREPARED_SQL, "params": [50.0]}
            )
            if status == 200:
                recovered = True
                break
            time.sleep(0.2)
        conn.close()
        stats = door.stats()
        return {
            "requests_sent": len(statuses),
            "ok": statuses.count(200),
            "shed_429_overload": stats["rejected_overload"],
            "shed_503_circuit_open": stats["rejected_circuit_open"],
            "breaker_opens": stats["breaker"]["opens"],
            "recovered": recovered,
        }
    finally:
        door.close()
        server.shutdown()


def bench_idempotent_replay(door, repeats: int) -> dict:
    payload = json.dumps(
        {"sql": PREPARED_SQL, "params": [42.0]}
    ).encode("utf-8")
    request = (
        b"POST /query HTTP/1.1\r\n"
        b"Host: bench\r\n"
        b"Idempotency-Key: bench-replay\r\n"
        b"Connection: close\r\n"
        b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
        b"\r\n" + payload
    )

    def exchange() -> bytes:
        with socket.create_connection(
            (door.host, door.port), timeout=30
        ) as sock:
            sock.sendall(request)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    started = time.perf_counter()
    first = exchange()
    first_seconds = time.perf_counter() - started
    replay_times = []
    identical = True
    for _ in range(repeats - 1):
        started = time.perf_counter()
        replay = exchange()
        replay_times.append(time.perf_counter() - started)
        identical = identical and replay == first
    replay_seconds = sorted(replay_times)[len(replay_times) // 2]
    return {
        "repeats": repeats,
        "replays": door.stats()["idempotency"]["replays"],
        "byte_identical": identical,
        "first_seconds": first_seconds,
        "replay_seconds": replay_seconds,
        "replay_speedup": first_seconds / max(replay_seconds, 1e-9),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args()

    rows = 2_000 if args.smoke else 50_000
    clients = 4 if args.smoke else 8
    per_client = 8 if args.smoke else 40
    throughput_floor = 5.0 if args.smoke else 20.0

    db = build_database(rows)
    session = RavenSession(db)
    server = RavenServer(session, workers=4)
    server.prepare("filter", PREPARED_SQL)
    door = HttpFrontDoor(server)
    door.start()
    try:
        concurrent = bench_concurrent_clients(door, clients, per_client)
        replay = bench_idempotent_replay(door, 5)
    finally:
        door.close()
        server.shutdown()
    shedding = bench_overload_shedding(db)
    db.close()

    results = {
        "smoke": args.smoke,
        "table_rows": rows,
        "concurrent_clients": concurrent,
        "overload_shedding": shedding,
        "idempotent_replay": replay,
        "claims": {
            "throughput_pass": (
                concurrent["requests_per_second"] >= throughput_floor
                and concurrent["errors"] == 0
            ),
            "shedding_pass": (
                shedding["shed_429_overload"] >= 1
                and shedding["breaker_opens"] >= 1
                and shedding["recovered"]
            ),
            "replay_pass": (
                replay["byte_identical"]
                and replay["replays"] == replay["repeats"] - 1
            ),
        },
    }
    print(
        f"concurrent: {concurrent['requests']} requests from "
        f"{concurrent['clients']} clients -> "
        f"{concurrent['requests_per_second']:.0f} req/s "
        f"({concurrent['errors']} errors)"
    )
    print(
        f"shedding: {shedding['ok']} ok, "
        f"{shedding['shed_429_overload']} x 429, "
        f"{shedding['shed_503_circuit_open']} x 503, "
        f"opens={shedding['breaker_opens']}, "
        f"recovered={shedding['recovered']}"
    )
    print(
        f"replay: {replay['replays']} replays, "
        f"byte_identical={replay['byte_identical']}, "
        f"{replay['replay_speedup']:.1f}x vs first execution"
    )
    print(json.dumps(results, indent=2))

    assert results["claims"]["shedding_pass"], shedding
    assert results["claims"]["replay_pass"], replay
    if not args.smoke:
        assert results["claims"]["throughput_pass"], concurrent


if __name__ == "__main__":
    main()
