"""In-text evaluation claims (§3.2, §4.1, §5) not tied to a figure.

* §4.1: predicate-based pruning speeds up the hospital decision tree by
  ~29%, and the categorical flight-delay logistic model by ~2.1x —
  *independently of the filter's selectivity* (what matters is how many
  features drop, not how many rows pass).
* §3.2: static analysis takes < 10 ms in most practical cases.
* §5(v): batch inference beats tuple-at-a-time by ~an order of magnitude.
"""

import time

import numpy as np
import pytest

from benchmarks.harness import measure, report, speedup
from repro.core.analysis import PythonStaticAnalyzer
from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    apply_predicate_pruning,
)
from repro.data import flights, hospital

ROWS = 40_000


class TestPredicatePruningClaims:
    @pytest.fixture(scope="class")
    def hospital_env(self):
        dataset = hospital.generate(ROWS, seed=41)
        pipeline = hospital.train_tree_pipeline(dataset, max_depth=8)
        return dataset, pipeline

    def test_tree_pruning_speedup(self, benchmark, hospital_env):
        dataset, pipeline = hospital_env
        result = apply_predicate_pruning(
            pipeline, ColumnFacts(constants={1: 1.0})  # pregnant = 1
        )
        mask = dataset.features[:, 1] == 1.0
        X = dataset.features[mask]
        kept = X[:, result.kept_inputs]
        benchmark.pedantic(
            lambda: result.pipeline.predict(kept), rounds=3, iterations=1
        )

    def test_tree_pruning_shape(self, hospital_env):
        dataset, pipeline = hospital_env
        result = apply_predicate_pruning(
            pipeline, ColumnFacts(constants={1: 1.0})
        )
        mask = dataset.features[:, 1] == 1.0
        X = dataset.features[mask]
        kept = X[:, result.kept_inputs]
        base = measure(lambda: pipeline.predict(X), repeats=3)
        pruned = measure(lambda: result.pipeline.predict(kept), repeats=3)
        report(
            "§4.1 predicate-based pruning of the hospital tree",
            [
                {
                    "variant": "original tree",
                    "nodes": result.detail["nodes_before"],
                    "seconds": base,
                },
                {
                    "variant": "pruned (pregnant=1)",
                    "nodes": result.detail["nodes_after"],
                    "seconds": pruned,
                },
            ],
            "pruning improves prediction time by ~29%",
        )
        assert result.detail["nodes_after"] < result.detail["nodes_before"]
        assert pruned < base

    def test_categorical_pruning_selectivity_independent(self):
        """~2.1x on the categorical logistic model, at ANY selectivity.

        The paper: 'regardless of the filter's selectivity (what matters
        in this speed up is the number of features dropped)'. We check the
        pruned model's speedup is flat across destinations with very
        different row counts.
        """
        dataset = flights.generate(ROWS, seed=42)
        pipeline = flights.train_logistic_pipeline(dataset, C=1.0, max_iter=250)
        gains = []
        rows = []
        for dest in (0.0, 5.0, 15.0):  # different popularity levels
            result = apply_predicate_pruning(
                pipeline, ColumnFacts(constants={2: dest})
            )
            mask = dataset.features[:, 2] == dest
            X = dataset.features[mask]
            kept = X[:, result.kept_inputs]
            base = measure(lambda: pipeline.predict(X), repeats=3)
            fast = measure(lambda: result.pipeline.predict(kept), repeats=3)
            gain = speedup(base, fast)
            gains.append(gain)
            rows.append(
                {
                    "dest": int(dest),
                    "matching_rows": int(mask.sum()),
                    "features_folded": result.detail["features_folded"],
                    "speedup": gain,
                }
            )
            assert np.array_equal(
                pipeline.predict(X), result.pipeline.predict(kept)
            )
        report(
            "§4.1 categorical predicate pruning (flight delay)",
            rows,
            "~2.1x regardless of selectivity (feature count is what matters)",
        )
        assert min(gains) > 1.0
        # Selectivity independence: the spread stays narrow.
        assert max(gains) / min(gains) < 2.0


MODEL_SCRIPT = """
from sklearn.pipeline import Pipeline, FeatureUnion
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier
model_pipeline = Pipeline([
    ('union', FeatureUnion([('scaler', StandardScaler())])),
    ('clf', DecisionTreeClassifier(max_depth=8)),
])
"""

DATAFLOW_SCRIPT = """
df = table('patient_info')
df = df[df.pregnant == 1]
labs = table('blood_tests')
joined = df.merge(labs, on='id')
joined = joined[['id', 'age', 'bp']]
joined
"""


class TestStaticAnalysisLatency:
    def test_static_analysis_benchmark(self, benchmark):
        analyzer = PythonStaticAnalyzer()
        analyzer.analyze(MODEL_SCRIPT)  # warm imports
        benchmark(lambda: analyzer.analyze(MODEL_SCRIPT))

    def test_under_10ms(self):
        analyzer = PythonStaticAnalyzer()
        rows = []
        for label, script in (
            ("model pipeline", MODEL_SCRIPT),
            ("dataflow", DATAFLOW_SCRIPT),
        ):
            analyzer.analyze(script)  # warm
            start = time.perf_counter()
            for _ in range(20):
                analyzer.analyze(script)
            per_run = (time.perf_counter() - start) / 20
            rows.append({"script": label, "seconds": per_run})
            assert per_run < 0.010, f"{label}: {per_run * 1e3:.2f} ms"
        report(
            "§3.2 static analysis latency",
            rows,
            "static analysis takes < 10 ms in most practical cases",
        )


class TestBatching:
    def test_batch_vs_tuple_at_a_time(self):
        """§5(v): batch inference ~order of magnitude over per-tuple."""
        dataset = hospital.generate(2_000, seed=43)
        pipeline = hospital.train_tree_pipeline(dataset, max_depth=6)
        X = dataset.features

        def per_tuple():
            return np.concatenate(
                [pipeline.predict(X[i : i + 1]) for i in range(len(X))]
            )

        def batched():
            return pipeline.predict(X)

        tuple_time = measure(per_tuple, repeats=2, warmup=1)
        batch_time = measure(batched, repeats=3)
        report(
            "§5(v) batch vs tuple-at-a-time inference",
            [
                {"variant": "per tuple", "seconds": tuple_time},
                {"variant": "batched", "seconds": batch_time},
            ],
            "~an order of magnitude from batching",
        )
        assert np.array_equal(per_tuple(), batched())
        assert speedup(tuple_time, batch_time) > 10.0

    def test_batched_benchmark(self, benchmark):
        dataset = hospital.generate(2_000, seed=43)
        pipeline = hospital.train_tree_pipeline(dataset, max_depth=6)
        benchmark(lambda: pipeline.predict(dataset.features))
