"""Tests for the HTTP front door: framing, routes, resilience middleware.

The edge cases the front door exists for are exercised on a real wire:
oversized bodies are rejected before buffering, idempotency replays are
byte-identical, the circuit breaker opens / half-opens / closes, and a
client that disconnects mid-query has its queued work cancelled without
spending a worker slot.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.observability import events
from repro.serving.net import HttpFrontDoor
from repro.serving.net.codec import payload_to_table, table_to_payload
from repro.serving.net.http11 import HttpError, Request, Response
from repro.serving.net.resilience import (
    CircuitBreaker,
    IdempotencyCache,
    TokenBucketLimiter,
)
from repro.serving.server import RavenServer

POINTS_SQL = "SELECT id, x FROM points WHERE id < ? ORDER BY id"


@pytest.fixture(scope="module")
def net_db():
    db = Database()
    db.register_table(
        "points",
        Table.from_dict(
            {
                "id": np.arange(10, dtype=np.int64),
                "x": np.arange(10, dtype=np.float64) * 1.5,
            }
        ),
    )
    yield db
    db.close()


@contextmanager
def front_door(db, *, workers=2, max_queue=64, prepare=False, **door_kw):
    session = RavenSession(db)
    server = RavenServer(session, workers=workers, max_queue=max_queue)
    if prepare:
        server.prepare("less_than", POINTS_SQL)
    door = HttpFrontDoor(server, **door_kw)
    door.start()
    try:
        yield server, door
    finally:
        door.close()
        server.shutdown()


def _request(door, method, path, body=None, headers=None):
    """One HTTP exchange; returns (status, lowercased headers, raw body)."""
    conn = http.client.HTTPConnection(door.host, door.port, timeout=10)
    try:
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, raw
    finally:
        conn.close()


def _post_json(door, path, body, headers=None):
    status, _headers, raw = _request(door, "POST", path, body, headers)
    return status, json.loads(raw)


def _raw_exchange(door, data: bytes, timeout=10.0) -> bytes:
    """Send raw bytes, then read the response until the server closes."""
    with socket.create_connection(
        (door.host, door.port), timeout=timeout
    ) as sock:
        if data:
            sock.sendall(data)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except ConnectionResetError:
                break  # server closed with unread data still buffered
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _block_worker(server, gate):
    """Occupy one worker thread until ``gate`` is set."""
    return server._enqueue(lambda: gate.wait(15), label="block")


# -- routes ----------------------------------------------------------------


def test_query_roundtrip_with_params(net_db):
    with front_door(net_db) as (_server, door):
        status, payload = _post_json(
            door, "/query", {"sql": POINTS_SQL, "params": [4]}
        )
        assert status == 200
        assert payload["num_rows"] == 4
        assert payload["columns"]["id"] == [0, 1, 2, 3]
        assert payload["columns"]["x"] == [0.0, 1.5, 3.0, 4.5]


def test_query_with_inline_data(net_db):
    with front_door(net_db) as (_server, door):
        body = {
            "sql": "SELECT a FROM requests WHERE a < ? ORDER BY a",
            "params": [3.0],
            "data": {"requests": {"a": [3.0, 1.0, 2.0]}},
        }
        status, payload = _post_json(door, "/query", body)
        assert status == 200
        assert payload["columns"]["a"] == [1.0, 2.0]


def test_prepared_by_name_and_fingerprint(net_db):
    with front_door(net_db, prepare=True) as (server, door):
        status, payload = _post_json(
            door, "/prepared/less_than/execute", {"params": [3]}
        )
        assert status == 200
        assert payload["columns"]["id"] == [0, 1, 2]

        fingerprint = server.stats()["prepared"]["less_than"]
        status, by_fp = _post_json(
            door, f"/prepared/{fingerprint}/execute", {"params": [3]}
        )
        assert status == 200
        assert by_fp == payload

        status, payload = _post_json(
            door, "/prepared/nonexistent/execute", {"params": [3]}
        )
        assert status == 404
        assert "unknown prepared" in payload["detail"]


def test_route_and_request_errors(net_db):
    with front_door(net_db) as (_server, door):
        status, _h, _b = _request(door, "GET", "/nope")
        assert status == 404
        status, _h, _b = _request(door, "GET", "/query")
        assert status == 405
        status, _h, _b = _request(door, "POST", "/healthz")
        assert status == 405
        status, payload = _post_json(door, "/query", {"params": [1]})
        assert status == 400 and "sql" in payload["detail"]
        status, payload = _post_json(
            door, "/query", {"sql": "SELECT nope FROM missing"}
        )
        assert status == 400
        status, payload = _post_json(
            door, "/query", {"sql": POINTS_SQL, "params": "bad"}
        )
        assert status == 400 and "params" in payload["detail"]
        # Malformed JSON body.
        status, _h, raw = _request(
            door,
            "POST",
            "/query",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400


def test_healthz_stats_metrics(net_db):
    with front_door(net_db, prepare=True) as (_server, door):
        status, _h, raw = _request(door, "GET", "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload == {"status": "ok", "breaker": "closed"}

        _post_json(door, "/query", {"sql": POINTS_SQL, "params": [2]})

        status, _h, raw = _request(door, "GET", "/stats")
        assert status == 200
        stats = json.loads(raw)
        assert stats["net"]["requests"] >= 2
        assert "less_than" in stats["prepared"]
        assert stats["net"]["breaker"]["state"] == "closed"

        status, headers, raw = _request(door, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = raw.decode("utf-8")
        assert "repro_net_requests" in text
        assert "repro_net_latency_seconds" in text


# -- framing edge cases ----------------------------------------------------


def test_oversized_body_rejected_before_buffering(net_db):
    with front_door(net_db, max_body_bytes=1024) as (_server, door):
        # Declare a huge body but never send a byte of it: the 413 must
        # come back anyway, from the Content-Length alone.
        head = (
            b"POST /query HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: 100000000\r\n"
            b"\r\n"
        )
        raw = _raw_exchange(door, head)
        assert raw.startswith(b"HTTP/1.1 413 ")
        assert b"Connection: close" in raw
        assert door.stats()["rejected_oversized"] == 1


def test_transfer_encoding_and_bad_length_rejected(net_db):
    with front_door(net_db) as (_server, door):
        raw = _raw_exchange(
            door,
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 501 ")
        raw = _raw_exchange(
            door,
            b"POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 400 ")
        raw = _raw_exchange(door, b"GARBAGE\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400 ")
        raw = _raw_exchange(door, b"GET / HTTP/2.0\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 505 ")


def test_connection_limit_sheds(net_db):
    with front_door(net_db, max_connections_per_client=1) as (_srv, door):
        with socket.create_connection((door.host, door.port), timeout=10):
            assert _wait_until(
                lambda: door.stats()["connections_active"] == 1
            )
            # The over-limit connection is rejected at accept time —
            # nothing needs to be sent to draw the 503.
            raw = _raw_exchange(door, b"")
            assert raw.startswith(b"HTTP/1.1 503 ")
            assert b"Retry-After" in raw
        assert door.stats()["connections_rejected"] == 1


# -- resilience middleware -------------------------------------------------


def test_idempotency_replay_is_byte_identical(net_db):
    with front_door(net_db) as (_server, door):
        body = json.dumps({"sql": POINTS_SQL, "params": [3]}).encode()
        request = (
            b"POST /query HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Idempotency-Key: retry-me\r\n"
            b"Connection: close\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        first = _raw_exchange(door, request)
        second = _raw_exchange(door, request)
        assert first.startswith(b"HTTP/1.1 200 ")
        assert first == second
        stats = door.stats()
        assert stats["idempotent_replays"] == 1
        assert stats["idempotency"]["stores"] == 1
        assert stats["idempotency"]["replays"] == 1


def test_idempotent_error_responses_replay_too(net_db):
    with front_door(net_db) as (_server, door):
        body = {"sql": "SELECT nope FROM missing"}
        headers = {"Idempotency-Key": "bad-sql"}
        status1, payload1 = _post_json(door, "/query", body, headers)
        status2, payload2 = _post_json(door, "/query", body, headers)
        assert status1 == status2 == 400
        assert payload1 == payload2
        assert door.stats()["idempotent_replays"] == 1


def test_idempotent_concurrent_requests_execute_once(net_db):
    with front_door(net_db, workers=1) as (server, door):
        gate = threading.Event()
        blocker = _block_worker(server, gate)
        with events.BUS.subscribe_queue("serving.submitted") as sub:
            results = []

            def hit():
                results.append(
                    _post_json(
                        door,
                        "/query",
                        {"sql": POINTS_SQL, "params": [5]},
                        {"Idempotency-Key": "shared"},
                    )
                )

            threads = [threading.Thread(target=hit) for _ in range(2)]
            threads[0].start()
            # Let the first request own the idempotency entry before the
            # second arrives (a late second request replays instead of
            # joining — also correct, also asserted below).
            _wait_until(lambda: door.stats()["idempotency"]["entries"] == 1)
            threads[1].start()
            time.sleep(0.05)
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
            blocker.result(5)

            submitted_sql = [
                e for e in sub.drain() if e.attrs.get("query") == "sql"
            ]
        assert len(submitted_sql) == 1  # the work ran exactly once
        assert [r[0] for r in results] == [200, 200]
        assert results[0][1] == results[1][1]
        assert door.stats()["idempotent_replays"] == 1


def test_rate_limit_returns_429_with_retry_after(net_db):
    with front_door(
        net_db, rate_limit_per_client=5.0, rate_limit_burst=1.0
    ) as (_server, door):
        status, _payload = _post_json(
            door, "/query", {"sql": POINTS_SQL, "params": [1]}
        )
        assert status == 200
        status, headers, raw = _request(
            door, "POST", "/query", {"sql": POINTS_SQL, "params": [1]}
        )
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert door.stats()["rejected_rate_limited"] == 1
        # GET routes are not rate limited.
        assert _request(door, "GET", "/healthz")[0] == 200


def test_circuit_breaker_opens_half_opens_closes(net_db):
    with front_door(
        net_db,
        workers=1,
        max_queue=1,
        breaker_failure_threshold=2,
        breaker_cooldown_seconds=0.3,
    ) as (server, door):
        with events.BUS.subscribe_queue("net.*") as sub:
            gate = threading.Event()
            blocker = _block_worker(server, gate)
            # Wait for the worker to pick the blocker up, then fill the
            # (single-slot) admission queue.
            assert _wait_until(lambda: server._queue.qsize() == 0)
            filler = server._enqueue(lambda: None, label="fill")
            body = {"sql": POINTS_SQL, "params": [1]}

            # Queue is full: overloads trip the breaker at the threshold.
            assert _post_json(door, "/query", body)[0] == 429
            assert _post_json(door, "/query", body)[0] == 429
            status, headers, _raw = _request(door, "POST", "/query", body)
            assert status == 503
            assert "retry-after" in headers
            assert door.breaker.state == CircuitBreaker.OPEN
            assert door.stats()["rejected_circuit_open"] >= 1

            # Liveness reflects shedding.
            status, _h, raw = _request(door, "GET", "/healthz")
            assert status == 503
            assert json.loads(raw)["status"] == "shedding"

            # Drain the queue, wait out the cooldown: the next request
            # is the half-open probe, and its success closes the circuit.
            gate.set()
            blocker.result(5)
            filler.result(5)
            time.sleep(0.35)
            status, payload = _post_json(door, "/query", body)
            assert status == 200
            assert door.breaker.state == CircuitBreaker.CLOSED

            names = [
                e.name for e in sub.drain()
                if e.name.startswith("net.circuit_")
            ]
        assert "net.circuit_open" in names
        assert "net.circuit_half_open" in names
        assert "net.circuit_closed" in names


def test_disconnect_mid_query_cancels_queued_work(net_db):
    with front_door(
        net_db, workers=1, disconnect_poll_seconds=0.01
    ) as (server, door):
        gate = threading.Event()
        blocker = _block_worker(server, gate)
        body = json.dumps({"sql": POINTS_SQL, "params": [5]}).encode()
        request = (
            b"POST /query HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        sock = socket.create_connection((door.host, door.port), timeout=10)
        try:
            sock.sendall(request)
            # The request is parsed and queued behind the blocked worker.
            assert _wait_until(lambda: server._queue.qsize() >= 1)
        finally:
            sock.close()

        # The front door notices the hang-up and cancels the queued
        # future — no worker ever runs it.
        assert _wait_until(lambda: door.stats()["disconnects"] == 1)
        assert door.stats()["cancelled_in_queue"] == 1

        gate.set()
        blocker.result(5)
        # The worker slot was not leaked: a fresh request completes.
        status, payload = _post_json(
            door, "/query", {"sql": POINTS_SQL, "params": [2]}
        )
        assert status == 200
        assert payload["num_rows"] == 2


def test_request_timeout_cancels_queued_work(net_db):
    with front_door(
        net_db,
        workers=1,
        request_timeout_seconds=0.2,
        disconnect_poll_seconds=0.01,
    ) as (server, door):
        gate = threading.Event()
        blocker = _block_worker(server, gate)
        status, headers, _raw = _request(
            door, "POST", "/query", {"sql": POINTS_SQL, "params": [5]}
        )
        assert status == 504
        assert "retry-after" in headers
        stats = door.stats()
        assert stats["timeouts"] == 1
        assert stats["cancelled_in_queue"] == 1
        gate.set()
        blocker.result(5)


def test_concurrent_clients_over_keep_alive(net_db):
    with front_door(net_db, workers=4, prepare=True) as (_server, door):
        errors = []

        def client(limit):
            try:
                conn = http.client.HTTPConnection(
                    door.host, door.port, timeout=10
                )
                for _ in range(5):
                    conn.request(
                        "POST",
                        "/prepared/less_than/execute",
                        body=json.dumps({"params": [limit]}),
                    )
                    resp = conn.getresponse()
                    payload = json.loads(resp.read())
                    if resp.status != 200 or payload["num_rows"] != limit:
                        errors.append((resp.status, payload))
                conn.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(1 + i % 5,))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert door.stats()["requests"] == 40


def test_front_door_restart_and_closed_lifecycle(net_db):
    session = RavenSession(net_db)
    server = RavenServer(session, workers=1)
    door = HttpFrontDoor(server)
    try:
        door.start()
        assert door.start() == (door.host, door.port)  # idempotent
        assert _request(door, "GET", "/healthz")[0] == 200
    finally:
        door.close()
        door.close()  # idempotent
        server.shutdown()
    from repro.errors import ServingError

    with pytest.raises(ServingError):
        door.start()


# -- middleware unit tests (fake clocks, no sockets) -----------------------


def test_token_bucket_limiter_refill_and_lru():
    clock = [0.0]
    limiter = TokenBucketLimiter(
        2.0, burst=2.0, max_clients=2, clock=lambda: clock[0]
    )
    assert limiter.acquire("a") == 0.0
    assert limiter.acquire("a") == 0.0
    wait = limiter.acquire("a")
    assert wait == pytest.approx(0.5)
    clock[0] += 0.5
    assert limiter.acquire("a") == 0.0
    # LRU bound: a third client evicts the oldest bucket.
    limiter.acquire("b")
    limiter.acquire("c")
    assert limiter.stats()["clients"] == 2
    # Disabled limiter always grants.
    assert TokenBucketLimiter(None).acquire("x") == 0.0


def test_circuit_breaker_state_machine():
    clock = [0.0]
    breaker = CircuitBreaker(2, 1.0, clock=lambda: clock[0])
    assert breaker.allow() == (True, 0.0)
    breaker.record_overload()
    assert breaker.state == CircuitBreaker.CLOSED  # below threshold
    breaker.record_overload()
    assert breaker.state == CircuitBreaker.OPEN
    admit, retry_after = breaker.allow()
    assert not admit and retry_after == pytest.approx(1.0)
    clock[0] += 1.1
    assert breaker.allow() == (True, 0.0)  # the half-open probe
    assert breaker.state == CircuitBreaker.HALF_OPEN
    admit, _wait = breaker.allow()  # only one probe at a time
    assert not admit
    breaker.record_overload()  # probe failed: re-open immediately
    assert breaker.state == CircuitBreaker.OPEN
    clock[0] += 1.1
    assert breaker.allow()[0]
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.stats()["opens"] == 2


def test_idempotency_cache_lifecycle():
    async def scenario():
        clock = [0.0]
        cache = IdempotencyCache(2, 10.0, clock=lambda: clock[0])
        kind, value = cache.begin(("r", "k1"))
        assert (kind, value) == ("own", None)
        kind, future = cache.begin(("r", "k1"))
        assert kind == "join"
        cache.finish(("r", "k1"), "response-1")
        assert await future == "response-1"
        assert cache.begin(("r", "k1")) == ("replay", "response-1")
        # TTL expiry turns a replay back into ownership.
        clock[0] += 11.0
        assert cache.begin(("r", "k1"))[0] == "own"
        cache.abandon(("r", "k1"))
        # Pending entries are pinned; only completed ones are evicted.
        assert cache.begin(("r", "p1"))[0] == "own"
        assert cache.begin(("r", "p2"))[0] == "own"
        cache.finish(("r", "p1"), "done")
        assert cache.begin(("r", "p3"))[0] == "own"
        cache.finish(("r", "p3"), "done")
        cache.finish(("r", "p2"), "done")
        assert cache.stats()["entries"] <= 2
        assert cache.stats()["evictions"] >= 1
        # Abandon wakes joiners with the fallback response.
        assert cache.begin(("r", "k2"))[0] == "own"
        kind, future = cache.begin(("r", "k2"))
        cache.abandon(("r", "k2"), None)
        assert await future is None

    asyncio.run(scenario())


# -- framing / codec unit tests --------------------------------------------


def test_response_encoding_is_deterministic():
    response = Response(status=200, body=b'{"a": 1}')
    assert response.encode() == response.encode()
    assert b"Date:" not in response.encode()
    assert b"Content-Length: 8" in response.encode()
    closed = Response(status=503, body=b"", close=True)
    assert b"Connection: close" in closed.encode()


def test_request_keep_alive_semantics():
    def req(version, connection=None):
        headers = {"connection": connection} if connection else {}
        return Request("GET", "/", "", version, headers, b"")

    assert req("HTTP/1.1").keep_alive
    assert not req("HTTP/1.1", "close").keep_alive
    assert not req("HTTP/1.0").keep_alive
    assert req("HTTP/1.0", "keep-alive").keep_alive


def test_codec_roundtrip_and_errors(net_db):
    table = net_db.table("points")
    payload = table_to_payload(table)
    assert payload["num_rows"] == 10
    back = payload_to_table(payload["columns"])
    assert back.column("id").tolist() == table.column("id").tolist()
    with pytest.raises(HttpError):
        payload_to_table(["not", "a", "mapping"])
    with pytest.raises(HttpError):
        payload_to_table({"a": [1, 2], "b": [1]})  # ragged columns
