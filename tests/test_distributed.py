"""Tests for distributed shard execution (scatter-gather over shards)."""

import json
import os

import numpy as np
import pytest

from repro.distributed import routing, serialize, worker
from repro.distributed.operators import (
    Gather,
    Repartition,
    ShardScan,
    Shuffle,
    ShuffleJoin,
)
from repro.distributed.shards import ShardedTable, ShardingSpec, hash_buckets
from repro.errors import CatalogError
from repro.ml.ensemble import GradientBoostingRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler
from repro.relational.algebra import logical
from repro.relational.algebra.executor import ExecutionOptions
from repro.relational.database import Database
from repro.relational.expressions import BinaryOp, InList, col, lit
from repro.relational.statistics import collect_statistics
from repro.relational.storage import load_database, save_database
from repro.relational.table import Table

N_ROWS = 60_000
N_GROUPS = 50


def make_table(n=N_ROWS, seed=0):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, N_GROUPS, n).astype(np.int64),
            "v": rng.normal(size=n),
        }
    )


def train_pipeline(table, n_estimators=40, max_depth=3):
    X = np.column_stack(
        [table.column("grp").astype(float), table.column("v")]
    )
    y = table.column("v") * 2.0 + table.column("grp") * 0.1
    return Pipeline(
        [
            ("scale", StandardScaler()),
            (
                "gb",
                GradientBoostingRegressor(
                    n_estimators=n_estimators, max_depth=max_depth
                ),
            ),
        ]
    ).fit(X[:2000], y[:2000])


@pytest.fixture(scope="module")
def base_table():
    return make_table()


@pytest.fixture(scope="module")
def pipeline(base_table):
    return train_pipeline(base_table)


def distributed_db(table, pipeline=None, shards=8, key="grp", **shard_kw):
    """A database with the table sharded and in-process fragment dispatch.

    ``max_workers=8`` makes the cost model assume a real worker pool,
    so fan-out plans win whenever they should — while execution stays
    deterministic and fork-free for tests.
    """
    db = Database(
        options=ExecutionOptions(max_workers=8, distributed_mode="inprocess")
    )
    db.register_table("t", table)
    db.shard_table("t", key, shards, **shard_kw)
    if pipeline is not None:
        db.store_model(
            "m", pipeline, metadata={"feature_names": ["grp", "v"]}
        )
    return db


def baseline_db(table, pipeline=None):
    db = Database(options=ExecutionOptions(enable_distributed=False))
    db.register_table("t", table)
    if pipeline is not None:
        db.store_model(
            "m", pipeline, metadata={"feature_names": ["grp", "v"]}
        )
    return db


PREDICT_SQL = """
DECLARE @m varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'm');
SELECT id, p.out
FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (out float) AS p
WHERE d.grp = {value}
ORDER BY id
"""


class TestSharding:
    def test_hash_split_preserves_rows(self, base_table):
        spec = ShardingSpec(key="grp", num_shards=8)
        sharded = ShardedTable.build("t", base_table, spec)
        assert sharded.num_shards == 8
        assert sharded.num_rows == base_table.num_rows
        rebuilt = np.sort(
            np.concatenate([s.column("id") for s in sharded.shards])
        )
        assert np.array_equal(rebuilt, np.sort(base_table.column("id")))

    def test_hash_shards_are_key_disjoint(self, base_table):
        spec = ShardingSpec(key="grp", num_shards=4)
        sharded = ShardedTable.build("t", base_table, spec)
        seen: dict[int, int] = {}
        for shard_id, shard in enumerate(sharded.shards):
            for value in np.unique(shard.column("grp")):
                assert seen.setdefault(int(value), shard_id) == shard_id

    def test_range_split_respects_boundaries(self, base_table):
        spec = ShardingSpec(
            key="id", num_shards=4, kind="range",
            boundaries=(15_000, 30_000, 45_000),
        )
        sharded = ShardedTable.build("t", base_table, spec)
        assert sharded.shard(0).column("id").max() < 15_000
        assert sharded.shard(3).column("id").min() >= 45_000

    def test_hash_buckets_deterministic_across_dtypes(self):
        ints = np.array([-5, 0, 7, 123456789], dtype=np.int64)
        assert np.array_equal(hash_buckets(ints, 4), hash_buckets(ints, 4))
        assert (hash_buckets(ints, 4) >= 0).all()
        strings = np.array(["a", "bb", "a", "ccc"])
        buckets = hash_buckets(strings, 3)
        assert buckets[0] == buckets[2]  # equal values, equal bucket
        floats = np.array([1.5, -2.25, np.nan])
        assert (hash_buckets(floats, 4) >= 0).all()

    def test_spec_validation(self):
        with pytest.raises(CatalogError):
            ShardingSpec(key="k", num_shards=0)
        with pytest.raises(CatalogError):
            ShardingSpec(key="k", num_shards=3, kind="range", boundaries=(1,))
        with pytest.raises(CatalogError):
            ShardingSpec(
                key="k", num_shards=3, kind="range", boundaries=(5, 1)
            )
        with pytest.raises(CatalogError):
            ShardingSpec(key="k", num_shards=2, kind="mystery")

    def test_spec_json_roundtrip(self):
        spec = ShardingSpec(
            key="id", num_shards=3, kind="range", boundaries=(10, 20)
        )
        assert ShardingSpec.from_dict(spec.to_dict()) == spec

    def test_write_bumps_shard_epoch_and_resplits(self, base_table):
        db = distributed_db(base_table)
        before = db.catalog.shard_epoch("t")
        assert db.catalog.sharding("t").num_rows == base_table.num_rows
        db.register_table("t", make_table(n=1000, seed=3))
        assert db.catalog.shard_epoch("t") > before
        assert db.catalog.sharding("t").num_rows == 1000


class TestRouting:
    def test_range_predicate_prunes_range_shards(self, base_table):
        spec = ShardingSpec(
            key="id", num_shards=4, kind="range",
            boundaries=(15_000, 30_000, 45_000),
        )
        sharded = ShardedTable.build("t", base_table, spec)
        keep = routing.surviving_shards(
            sharded, BinaryOp("<", col("id"), lit(10_000))
        )
        assert keep.tolist() == [True, False, False, False]

    def test_hash_key_equality_routes_exactly(self, base_table):
        spec = ShardingSpec(key="grp", num_shards=8)
        sharded = ShardedTable.build("t", base_table, spec)
        keep = routing.surviving_shards(
            sharded, BinaryOp("=", col("grp"), lit(7))
        )
        assert keep.sum() == 1
        expected = int(spec.assign(np.array([7]))[0])
        assert keep[expected]

    def test_in_list_routes_to_value_shards(self, base_table):
        spec = ShardingSpec(key="grp", num_shards=8)
        sharded = ShardedTable.build("t", base_table, spec)
        keep = routing.surviving_shards(
            sharded, InList(col("grp"), (3, 7, 11))
        )
        targets = set(int(s) for s in spec.assign(np.array([3, 7, 11])))
        assert set(np.nonzero(keep)[0].tolist()) == targets

    def test_routing_never_drops_matching_rows(self, base_table):
        """Anti-over-pruning: surviving shards hold every matching row."""
        spec = ShardingSpec(key="grp", num_shards=8)
        sharded = ShardedTable.build("t", base_table, spec)
        predicate = BinaryOp("=", col("grp"), lit(13))
        keep = routing.surviving_shards(sharded, predicate)
        survivors = sum(
            int((sharded.shard(i).column("grp") == 13).sum())
            for i in np.nonzero(keep)[0]
        )
        assert survivors == int((base_table.column("grp") == 13).sum())

    def test_empty_shards_are_pruned(self):
        table = Table.from_dict(
            {"id": np.arange(10, dtype=np.int64), "v": np.ones(10)}
        )
        spec = ShardingSpec(
            key="id", num_shards=3, kind="range", boundaries=(100, 200)
        )
        sharded = ShardedTable.build("t", table, spec)  # shards 1,2 empty
        keep = routing.surviving_shards(
            sharded, BinaryOp(">", col("v"), lit(0.0))
        )
        assert keep.tolist() == [True, False, False]

    def test_all_null_column_constraint_prunes(self):
        table = Table.from_dict(
            {
                "id": np.arange(8, dtype=np.int64),
                "v": np.full(8, np.nan),
            }
        )
        spec = ShardingSpec(
            key="id", num_shards=2, kind="range", boundaries=(4,)
        )
        sharded = ShardedTable.build("t", table, spec)
        keep = routing.surviving_shards(
            sharded, BinaryOp(">", col("v"), lit(1.0))
        )
        # NaN never satisfies a comparison: both shards provably empty.
        assert keep.tolist() == [False, False]

    def test_key_routing_casts_probe_to_column_dtype(self):
        """An int literal probing a *float* shard key must hash the way
        the rows were placed — not via the integer hash path."""
        rng = np.random.default_rng(4)
        table = Table.from_dict(
            {
                "k": rng.integers(0, 10, 5_000).astype(np.float64),
                "v": rng.normal(size=5_000),
            }
        )
        sharded = ShardedTable.build(
            "t", table, ShardingSpec(key="k", num_shards=7)
        )
        predicate = BinaryOp("=", col("k"), lit(3))  # int literal
        keep = routing.surviving_shards(sharded, predicate)
        matching = sum(
            int((sharded.shard(i).column("k") == 3.0).sum())
            for i in np.nonzero(keep)[0]
        )
        assert matching == int((table.column("k") == 3.0).sum())
        assert matching > 0

    def test_unconstrained_predicate_routes_nowhere(self, base_table):
        spec = ShardingSpec(key="grp", num_shards=4)
        sharded = ShardedTable.build("t", base_table, spec)
        assert routing.surviving_shards(sharded, None) is None


class TestSerialization:
    def test_expression_roundtrip(self):
        from repro.relational.expressions import (
            CaseWhen,
            FunctionCall,
            Parameter,
            UnaryOp,
        )

        exprs = [
            BinaryOp("AND", BinaryOp("<", col("a"), lit(3.5)),
                     BinaryOp("=", col("b"), lit("x"))),
            UnaryOp("NOT", InList(col("a"), (1, 2, 3))),
            CaseWhen(((BinaryOp(">", col("a"), lit(0)), lit(1.0)),), lit(0.0)),
            FunctionCall("ABS", (col("a"),)),
            Parameter("@cutoff"),
        ]
        for expr in exprs:
            decoded = serialize.decode_expression(
                json.loads(json.dumps(serialize.encode_expression(expr)))
            )
            assert decoded == expr

    def test_fragment_roundtrip_executes(self, base_table, pipeline):
        fragment = logical.Predict(
            logical.Filter(
                ShardScan("t", base_table.schema, None, 4),
                BinaryOp("=", col("grp"), lit(3)),
            ),
            "m",
            (("out", __import__("repro.relational.types",
                                fromlist=["DataType"]).DataType.FLOAT),),
            payload=pipeline,
            flavor="ml.pipeline",
            feature_names=("grp", "v"),
        )
        spec = json.loads(json.dumps(serialize.encode_fragment(fragment)))
        decoded = serialize.decode_fragment(spec)
        shard = ShardedTable.build(
            "t", base_table, ShardingSpec(key="grp", num_shards=4)
        ).shard(0)
        result = worker.execute_fragment(decoded, shard)
        expected = int((shard.column("grp") == 3).sum())
        assert result.num_rows == expected
        assert "out" in result.schema.names

    def test_unserializable_shapes_are_rejected(self, base_table):
        join = logical.Join(
            ShardScan("t", base_table.schema, None, 2),
            ShardScan("t", base_table.schema, None, 2),
            "CROSS",
            None,
        )
        assert not serialize.fragment_is_serializable(
            join, lambda _op: "ml.pipeline"
        )
        predict = logical.Predict(
            ShardScan("t", base_table.schema, None, 2),
            "m",
            (),
        )
        assert not serialize.fragment_is_serializable(
            predict, lambda _op: "tensor.graph"
        )

    def test_worker_model_cache_reuses_decoded_bundle(self, pipeline):
        from repro.ml import model_format

        worker.clear_caches()
        bundle = model_format.dumps(pipeline)
        first = worker._load_model(bundle)
        second = worker._load_model(bundle)
        assert first is second


class TestGatherExecution:
    def test_distributed_aggregate_matches_baseline(self, base_table):
        db = distributed_db(base_table)
        db0 = baseline_db(base_table)
        sql = (
            "SELECT grp, COUNT(*) AS c, SUM(v) AS s, AVG(v) AS m, "
            "MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY grp ORDER BY grp"
        )
        result = db.execute(sql)
        assert db._executor.last_shard_routing is not None
        assert db._executor.last_shard_routing["shards_total"] == 8
        assert result.equals(db0.execute(sql))

    def test_global_aggregate_matches_baseline(self, base_table):
        db = distributed_db(base_table)
        db0 = baseline_db(base_table)
        sql = "SELECT COUNT(*) AS c, AVG(v) AS m FROM t WHERE grp = 9"
        assert db.execute(sql).equals(db0.execute(sql))

    def test_empty_result_aggregate(self, base_table):
        db = distributed_db(base_table)
        db0 = baseline_db(base_table)
        # No row has grp = 999: every shard's partial is the identity
        # row, and the row-guard must keep sentinel values out.
        sql = "SELECT COUNT(*) AS c, AVG(v) AS m FROM t WHERE grp = 999"
        result = db.execute(sql)
        assert result.equals(db0.execute(sql))
        assert result.column("c")[0] == 0

    def test_distributed_predict_matches_baseline(
        self, base_table, pipeline
    ):
        db = distributed_db(base_table, pipeline)
        db0 = baseline_db(base_table, pipeline)
        sql = PREDICT_SQL.format(value=7)
        result = db.execute(sql)
        routing_info = db._executor.last_shard_routing
        assert routing_info["table"] == "t"
        assert routing_info["shards_scanned"] < routing_info["shards_total"]
        assert result.equals(db0.execute(sql))

    def test_pruned_shards_never_dispatch(self, base_table, pipeline):
        """The acceptance-criterion test: fragment runners are only
        invoked for surviving shards."""
        db = distributed_db(base_table, pipeline)
        dispatched: list[int] = []
        real_runner = db.distributed.run_gather

        def recording_runner(op, sharded):
            dispatched.extend(op.shard_ids)
            return real_runner(op, sharded)

        db._executor._fragment_runner = recording_runner
        db.execute(PREDICT_SQL.format(value=7))
        sharded = db.catalog.sharding("t")
        expected = int(sharded.spec.assign(np.array([7]))[0])
        assert dispatched == [expected]

    def test_explain_reports_shards_scanned(self, base_table, pipeline):
        db = distributed_db(base_table, pipeline)
        lines = "\n".join(
            db.execute(
                "EXPLAIN SELECT COUNT(*) AS c FROM t WHERE grp = 7"
            ).column("plan")
        )
        assert "shards=1/8 (zone-map)" in lines
        assert "Gather t key=grp" in lines
        assert "ShardScan t" in lines

    def test_gather_falls_back_when_table_unsharded(self, base_table):
        db = distributed_db(base_table)
        plan = db.bind("SELECT id, grp, v FROM t WHERE grp = 5")
        plan = db._planner.optimize(plan)
        db.catalog.unshard_table("t")
        fragment = logical.Filter(
            ShardScan("t", base_table.schema, None, 8),
            BinaryOp("=", col("grp"), lit(5)),
        )
        gather = Gather("t", fragment, "grp", (0, 3), 8, "zone-map")
        result = db.execute_plan(gather)
        assert result.num_rows == int((base_table.column("grp") == 5).sum())

    def test_order_only_differs_without_order_by(self, base_table):
        db = distributed_db(base_table)
        db0 = baseline_db(base_table)
        sql = "SELECT id FROM t WHERE grp = 3"
        distributed = np.sort(db.execute(sql).column("id"))
        sequential = np.sort(db0.execute(sql).column("id"))
        assert np.array_equal(distributed, sequential)


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PROCESS_TESTS") == "1",
    reason="process pool disabled in this environment",
)
class TestProcessPool:
    def test_process_pool_predict_and_shard_cache(self):
        table = make_table(n=4_000, seed=2)
        pipeline = train_pipeline(table, n_estimators=5, max_depth=2)
        db = Database(
            options=ExecutionOptions(
                max_workers=2, distributed_mode="process"
            )
        )
        db.register_table("t", table)
        db.shard_table("t", "grp", 2)
        db.store_model("m", pipeline, metadata={"feature_names": ["grp", "v"]})
        db0 = baseline_db(table, pipeline)
        try:
            fragment = logical.Predict(
                logical.Filter(
                    ShardScan("t", table.schema, None, 2),
                    BinaryOp("<", col("grp"), lit(40)),
                ),
                "m",
                (("out", __import__("repro.relational.types",
                                    fromlist=["DataType"]).DataType.FLOAT),),
            )
            gather = Gather("t", fragment, "grp", (0, 1), 2, "none")
            first = db.execute_plan(logical.OrderBy(
                gather, ((col("id"), True),)
            ))
            second = db.execute_plan(logical.OrderBy(
                gather, ((col("id"), True),)
            ))
            assert first.equals(second)
            stats = db.distributed.stats()
            if stats["mode"] == "process":
                # Ship-on-miss: data crossed at most once per
                # (worker, shard); with the caches warm the second
                # query moved no shard data at all.
                assert stats["shard_ships"] <= 2 * 2
            expected = db0.execute(
                """
                DECLARE @m varbinary(max) = (
                    SELECT model FROM scoring_models WHERE model_name = 'm');
                SELECT id, grp, v, out FROM PREDICT(
                    MODEL = @m, DATA = t) WITH (out float)
                WHERE grp < 40 ORDER BY id
                """
            )
            assert np.allclose(
                first.column("out"), expected.column("out")
            )
        finally:
            db.close()


class TestRepartition:
    def test_repartition_buckets_are_key_disjoint(self, base_table):
        db = distributed_db(base_table)
        plan = Repartition(
            logical.InlineTable(base_table), "grp", 4
        )
        result = db.execute_plan(plan)
        assert result.num_rows == base_table.num_rows
        assert result.has_explicit_partitions
        seen: dict[int, int] = {}
        for index, (start, stop) in enumerate(result.partition_bounds()):
            for value in np.unique(result.column("grp")[start:stop]):
                assert seen.setdefault(int(value), index) == index

    def test_repartitioned_final_aggregate_matches(self, base_table):
        from repro.core.optimizer import search

        db = distributed_db(base_table)
        db0 = baseline_db(base_table)
        sql = "SELECT grp, AVG(v) AS m, COUNT(*) AS c FROM t GROUP BY grp"
        plan = db.bind(sql)
        context = search.SearchContext(
            catalog=db.catalog,
            options={"shard_workers": 8, "repartition_min_rows": 10},
        )
        optimizer = search.MemoOptimizer(search.sql_rules(), context)
        best, _report = optimizer.optimize(plan)
        assert any(isinstance(op, Repartition) for op in best.walk())
        result = db.execute_plan(best)
        expected = db0.execute(sql)

        def by_grp(table):
            return table.take(np.argsort(table.column("grp")))

        assert by_grp(result).equals(by_grp(expected))


class TestServingIntegration:
    def _session(self, db):
        from repro.core.raven import RavenSession

        return RavenSession(
            db,
            optimizer="heuristic",
            options={"shard_workers": 8, "enable_inlining": False},
        )

    def test_prepared_query_records_routing_and_reroutes(
        self, base_table, pipeline
    ):
        from repro.serving.prepared import PreparedQuery

        db = distributed_db(base_table, pipeline)
        db0 = baseline_db(base_table, pipeline)
        session = self._session(db)
        sql = """
        DECLARE @m varbinary(max) = (
            SELECT model FROM scoring_models WHERE model_name = 'm');
        SELECT id, p.out
        FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (out float) AS p
        WHERE d.grp = ?
        ORDER BY id
        """
        prepared = PreparedQuery(session, sql)
        entry = prepared._entry
        assert entry.shard_routing, "plan should contain a Gather"
        table_name, scanned, total, _pruned_by, strategy = entry.shard_routing[0]
        assert (table_name, total, strategy) == ("t", 8, "scan")
        assert entry.shard_epochs and entry.shard_epochs[0][0] == "t"
        assert "?1" in entry.param_names  # parameter lives in the fragment
        result = prepared.execute([7])
        assert result.equals(db0.execute(PREDICT_SQL.format(value=7)))
        # Same plan, different binding: parameters re-bind per request.
        assert prepared.execute([9]).equals(
            db0.execute(PREDICT_SQL.format(value=9))
        )
        assert prepared.replans == 0
        # Resharding moves the layout: the next execution replans and
        # re-routes against the new shard count.
        db.shard_table("t", "grp", 4)
        rerouted = prepared.execute([7])
        assert prepared.replans == 1
        assert prepared._entry.shard_routing[0][2] == 4
        assert rerouted.equals(result)

    def test_parameter_binding_routes_at_execution_time(
        self, base_table, pipeline
    ):
        """A `?` on the shard key cannot prune at prepare time, but the
        bound fragment re-routes exactly at each execution."""
        from repro.serving.prepared import PreparedQuery

        db = distributed_db(base_table, pipeline)
        session = self._session(db)
        prepared = PreparedQuery(
            session,
            """
            DECLARE @m varbinary(max) = (
                SELECT model FROM scoring_models WHERE model_name = 'm');
            SELECT id, p.out
            FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (out float) AS p
            WHERE d.grp = ?
            ORDER BY id
            """,
        )
        # Plan-time routing is necessarily unpruned.
        assert prepared._entry.shard_routing[0][1] == 8
        before = db.distributed.stats()
        prepared.execute([7])
        after = db.distributed.stats()
        assert after["shards_scanned"] - before["shards_scanned"] == 1
        assert after["shards_pruned"] - before["shards_pruned"] == 7

    def test_server_stats_surface_shard_fanout(self, base_table, pipeline):
        from repro.serving.server import RavenServer

        db = distributed_db(base_table, pipeline)
        session = self._session(db)
        server = RavenServer(session, workers=2, max_queue=16)
        try:
            server.prepare("score", PREDICT_SQL.format(value=7))
            for _ in range(3):
                server.query("score")
            snapshot = server.stats_snapshot()
            fanout = snapshot["distributed"]
            assert fanout["shard_queries"] >= 3
            assert fanout["shards_pruned"] > 0
            assert fanout["fragment_p95_ms"] >= fanout["fragment_p50_ms"]
            assert snapshot["distributed_runtime"]["queries"] >= 3
        finally:
            server.shutdown()


class TestStorageV3:
    def _sharded_db(self, table):
        db = Database()
        db.register_table("t", table)
        db.shard_table("t", "grp", 4)
        return db

    def test_v3_roundtrip_restores_sharding_lazily(
        self, tmp_path, base_table, monkeypatch
    ):
        saved = save_database(self._sharded_db(base_table), tmp_path / "db")
        manifest = json.loads((saved / "manifest.json").read_text())
        assert manifest["manifest_version"] == 3
        assert manifest["tables"]["t"]["sharding"]["num_shards"] == 4

        # Loading must not materialize shards (lazy rebuild).
        calls = []
        original = ShardedTable.build.__func__

        def counting_build(cls, *args, **kwargs):
            calls.append(1)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(
            ShardedTable, "build", classmethod(counting_build)
        )
        restored = load_database(saved)
        assert restored.catalog.is_sharded("t")
        assert not calls
        sharded = restored.catalog.sharding("t")
        assert calls and sharded.num_shards == 4
        assert sharded.num_rows == base_table.num_rows

    def test_v2_manifest_still_loads(self, tmp_path, base_table):
        saved = save_database(self._sharded_db(base_table), tmp_path / "db")
        manifest_path = saved / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 2
        for spec in manifest["tables"].values():
            spec.pop("sharding", None)
        manifest_path.write_text(json.dumps(manifest))
        restored = load_database(saved)
        assert restored.table("t").num_rows == base_table.num_rows
        assert not restored.catalog.is_sharded("t")

    def test_v1_manifest_still_loads(self, tmp_path, base_table):
        saved = save_database(self._sharded_db(base_table), tmp_path / "db")
        manifest_path = saved / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 1
        for spec in manifest["tables"].values():
            spec.pop("sharding", None)
            spec.pop("statistics", None)
            spec.pop("partition_size", None)
        manifest_path.write_text(json.dumps(manifest))
        restored = load_database(saved)
        assert restored.table("t").num_rows == base_table.num_rows
        # Stats rebuild lazily, exactly as before v3.
        assert (
            restored.catalog.table_statistics("t").row_count
            == base_table.num_rows
        )


class TestStatisticsEdgeCases:
    """The shard-pruning audit: empty/all-NULL/single-value inputs."""

    def test_empty_shard_statistics(self):
        table = Table.from_dict(
            {"a": np.empty(0, dtype=np.int64), "s": np.empty(0, dtype="U4")}
        )
        stats = collect_statistics(table)
        assert stats.row_count == 0
        assert stats.column("a").ndv == 0
        assert stats.column("a").min_value is None
        assert stats.column("s").min_value is None

    def test_all_null_column_statistics_and_selectivity(self):
        table = Table.from_dict({"a": np.full(16, np.nan)})
        stats = collect_statistics(table)
        column = stats.column("a")
        assert column.null_count == 16
        assert column.ndv == 0
        # No division by zero; degrade to defaults, never crash.
        assert 0.0 <= column.equality_selectivity(3.0) <= 1.0
        assert column.fraction_below(3.0, inclusive=True) is None

    def test_single_value_histogram_selectivity(self):
        table = Table.from_dict({"a": np.full(100, 5.0)})
        column = collect_statistics(table).column("a")
        assert column.histogram_edges == ()
        assert column.fraction_below(5.0, inclusive=True) == 1.0
        assert column.fraction_below(5.0, inclusive=False) == 0.0
        assert column.fraction_below(4.0, inclusive=True) == 0.0
        assert column.equality_selectivity(5.0) == 1.0

    def test_all_nan_partition_prunes_without_selecting_nan(self):
        from repro.relational.statistics import surviving_partitions

        values = np.concatenate([np.full(4, np.nan), np.arange(4.0)])
        table = Table.from_dict(
            {"v": values, "id": np.arange(8, dtype=np.int64)}
        ).with_partitioning(4)
        keep = surviving_partitions(
            table, BinaryOp("<", col("v"), lit(100.0))
        )
        assert keep.tolist() == [False, True]

    def test_empty_sharded_table_routes_safely(self):
        table = Table.from_dict(
            {"id": np.empty(0, dtype=np.int64), "v": np.empty(0)}
        )
        sharded = ShardedTable.build(
            "t", table, ShardingSpec(key="id", num_shards=2)
        )
        keep = routing.surviving_shards(
            sharded, BinaryOp("=", col("id"), lit(1))
        )
        assert not keep.any()


JOIN_SQL = (
    "SELECT e.id, e.v, g.w FROM events e JOIN groups g "
    "ON e.grp = g.grp{where} ORDER BY e.id"
)


def make_events(n=N_ROWS, groups=N_GROUPS, seed=0):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, groups, n).astype(np.int64),
            "v": rng.normal(size=n),
        }
    )


def make_groups(groups=N_GROUPS, seed=1):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "grp": np.arange(groups, dtype=np.int64),
            "w": rng.normal(size=groups),
        }
    )


def join_db(
    events,
    groups,
    events_sharding=None,
    groups_sharding=None,
    distributed=True,
):
    """``(kind, key, num_shards, boundaries)``-style sharding per table."""
    db = Database(
        options=ExecutionOptions(
            max_workers=8,
            distributed_mode="inprocess",
            enable_distributed=distributed,
        )
    )
    db.register_table("events", events)
    db.register_table("groups", groups)
    for name, sharding in (
        ("events", events_sharding),
        ("groups", groups_sharding),
    ):
        if sharding is not None:
            db.shard_table(name, **sharding)
    db.catalog.table_statistics("events")
    db.catalog.table_statistics("groups")
    return db


class TestDistributedJoins:
    """The cross-layout matrix for co-located and shuffle joins."""

    @pytest.fixture(scope="class")
    def events(self):
        return make_events()

    @pytest.fixture(scope="class")
    def groups(self):
        return make_groups()

    @pytest.fixture(scope="class")
    def expected(self, events, groups):
        db0 = join_db(events, groups, distributed=False)
        return {
            "all": db0.execute(JOIN_SQL.format(where="")),
            "filtered": db0.execute(
                JOIN_SQL.format(where=" WHERE e.grp = 7")
            ),
        }

    def _explain(self, db, where=""):
        return "\n".join(
            db.execute(
                "EXPLAIN " + JOIN_SQL.format(where=where)
            ).column("plan")
        )

    def test_compatible_hash_layouts_join_colocated(
        self, events, groups, expected
    ):
        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 8},
            {"key": "grp", "num_shards": 8},
        )
        lines = self._explain(db)
        assert "join=colocated" in lines
        assert "shards=8/8" in lines
        assert db.execute(JOIN_SQL.format(where="")).equals(expected["all"])

    def test_colocated_join_routes_on_shard_key_equality(
        self, events, groups, expected
    ):
        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 8},
            {"key": "grp", "num_shards": 8},
        )
        before = db.distributed.stats()
        result = db.execute(JOIN_SQL.format(where=" WHERE e.grp = 7"))
        after = db.distributed.stats()
        assert result.equals(expected["filtered"])
        assert after["shards_scanned"] - before["shards_scanned"] == 1
        assert after["shards_pruned"] - before["shards_pruned"] == 7

    # -- big⋈big shuffle shapes (the Python join loop dominates, so
    # the cost model flips to the shuffle above ~50k⋈50k rows) --------

    @pytest.fixture(scope="class")
    def mirror(self, events):
        rng = np.random.default_rng(9)
        return Table.from_dict(
            {
                "id": rng.permutation(events.num_rows).astype(np.int64),
                "w": rng.normal(size=events.num_rows),
            }
        )

    BIG_SQL = (
        "SELECT a.id, a.v, b.w FROM events AS a JOIN mirror AS b "
        "ON a.id = b.id ORDER BY a.id"
    )

    def _big_db(self, events, mirror, left_sharding, right_sharding):
        db = Database(
            options=ExecutionOptions(
                max_workers=8, distributed_mode="inprocess"
            )
        )
        db.register_table("events", events)
        db.register_table("mirror", mirror)
        if left_sharding:
            db.shard_table("events", **left_sharding)
        if right_sharding:
            db.shard_table("mirror", **right_sharding)
        db.catalog.table_statistics("events")
        db.catalog.table_statistics("mirror")
        return db

    @pytest.fixture(scope="class")
    def big_expected(self, events, mirror):
        db0 = Database(options=ExecutionOptions(enable_distributed=False))
        db0.register_table("events", events)
        db0.register_table("mirror", mirror)
        return db0.execute(self.BIG_SQL)

    def test_incompatible_hash_counts_force_shuffle(
        self, events, mirror, big_expected
    ):
        db = self._big_db(
            events,
            mirror,
            {"key": "id", "num_shards": 8},
            {"key": "id", "num_shards": 5},
        )
        lines = "\n".join(
            db.execute("EXPLAIN " + self.BIG_SQL).column("plan")
        )
        assert "join=shuffle" in lines
        assert "join=colocated" not in lines
        assert db.execute(self.BIG_SQL).equals(big_expected)
        assert db.distributed.stats()["shuffle_joins"] >= 1

    def test_range_vs_hash_forces_shuffle(
        self, events, mirror, big_expected
    ):
        db = self._big_db(
            events,
            mirror,
            {"key": "id", "num_shards": 8},
            {
                "key": "id",
                "num_shards": 4,
                "kind": "range",
                "boundaries": (15_000, 30_000, 45_000),
            },
        )
        lines = "\n".join(
            db.execute("EXPLAIN " + self.BIG_SQL).column("plan")
        )
        assert "join=shuffle" in lines
        assert db.execute(self.BIG_SQL).equals(big_expected)

    def test_compatible_range_layouts_join_colocated(
        self, events, groups, expected
    ):
        sharding = {
            "key": "grp",
            "num_shards": 4,
            "kind": "range",
            "boundaries": (12, 25, 38),
        }
        db = join_db(events, groups, dict(sharding), dict(sharding))
        lines = self._explain(db)
        assert "join=colocated" in lines
        assert "shards=4/4" in lines
        assert db.execute(JOIN_SQL.format(where="")).equals(expected["all"])

    def test_unsharded_side_joins_via_shuffle(
        self, events, mirror, big_expected
    ):
        db = self._big_db(
            events, mirror, {"key": "id", "num_shards": 8}, None
        )
        lines = "\n".join(
            db.execute("EXPLAIN " + self.BIG_SQL).column("plan")
        )
        assert "join=shuffle" in lines
        assert "local" in lines  # the mirror side maps at the coordinator
        assert db.execute(self.BIG_SQL).equals(big_expected)

    def test_key_hash_class_mismatch_declines_distribution(
        self, events, mirror
    ):
        """An int key joined to a float key must not distribute — the
        two dtypes hash through different paths, so equal values would
        land on different shards/buckets."""
        float_mirror = Table.from_dict(
            {
                "id": mirror.column("id").astype(np.float64),
                "w": mirror.column("w"),
            }
        )
        db = self._big_db(
            events,
            float_mirror,
            {"key": "id", "num_shards": 8},
            {"key": "id", "num_shards": 8},
        )
        lines = "\n".join(
            db.execute("EXPLAIN " + self.BIG_SQL).column("plan")
        )
        assert "join=shuffle" not in lines
        assert "join=colocated" not in lines

    @staticmethod
    def _nan_tables():
        rng = np.random.default_rng(5)
        n = 4_000
        keys = rng.integers(0, 20, n).astype(np.float64)
        keys[::7] = np.nan
        left = Table.from_dict(
            {
                "id": np.arange(n, dtype=np.int64),
                "grp": keys,
                "v": rng.normal(size=n),
            }
        )
        right = Table.from_dict(
            {
                "grp": np.concatenate(
                    [np.arange(20, dtype=np.float64), [np.nan]]
                ),
                "w": rng.normal(size=21),
            }
        )
        return left, right

    def test_null_join_keys_never_match(self):
        """NaN keys bucket deterministically but match nothing — SQL
        NULL = NULL semantics, identical on every distributed path."""
        left, right = self._nan_tables()
        condition = BinaryOp("=", col("e.grp"), col("g.grp"))
        db0 = join_db(left, right, distributed=False)
        expected = db0.execute(JOIN_SQL.format(where=""))
        valid = ~np.isnan(left.column("grp"))
        assert expected.num_rows == int(valid.sum())  # NaNs matched nothing

        db = join_db(
            left,
            right,
            {"key": "grp", "num_shards": 4},
            {"key": "grp", "num_shards": 4},
        )
        fragment = logical.Join(
            ShardScan("events", left.schema, "e", 4, "grp"),
            ShardScan("groups", right.schema, "g", 4, "grp"),
            "INNER",
            condition,
        )
        gather = Gather(
            "events", fragment, "grp", (0, 1, 2, 3), 4, "none", "colocated"
        )
        colocated = db.execute_plan(gather)
        assert colocated.num_rows == expected.num_rows
        assert np.array_equal(
            np.sort(colocated.column("e.id")),
            np.sort(expected.column("id")),
        )
        shuffled = db.execute_plan(
            ShuffleJoin(
                Shuffle(
                    "events",
                    ShardScan("events", left.schema, "e", 4),
                    "e.grp",
                    (0, 1, 2, 3),
                    4,
                    4,
                ),
                Shuffle(
                    "groups",
                    ShardScan("groups", right.schema, "g", 4),
                    "g.grp",
                    (0, 1, 2, 3),
                    4,
                    4,
                ),
                "INNER",
                condition,
                4,
            )
        )
        assert shuffled.num_rows == expected.num_rows
        assert np.array_equal(
            np.sort(shuffled.column("e.id")),
            np.sort(expected.column("id")),
        )

    def test_empty_shard_joined_against_populated_one(self):
        """The empty-shard regression: provably empty shard pairs are
        never dispatched and the join still returns every match."""
        left = Table.from_dict(
            {
                "id": np.arange(10, dtype=np.int64),
                "grp": np.arange(10, dtype=np.int64),
                "v": np.ones(10),
            }
        )
        # The right side only populates shard 0's key range too, but
        # with fewer keys — shard 0 is a populated⋈populated pair,
        # shards 1 and 2 are empty⋈empty, and the boundary case of an
        # empty right shard against a populated left one comes from
        # pruning: every pair with an empty side must be skipped.
        right = Table.from_dict(
            {"grp": np.arange(5, dtype=np.int64), "w": np.ones(5)}
        )
        sharding = dict(
            key="grp", num_shards=3, kind="range", boundaries=(7, 200)
        )
        # left: shard 0 holds grp 0..6, shard 1 holds 7..9, shard 2
        # empty; right: shard 0 holds 0..4, shards 1 and 2 empty. The
        # pair (1, 1) is populated⋈empty and must be pruned.
        db = join_db(left, right, dict(sharding), dict(sharding))
        fragment = logical.Join(
            ShardScan("events", left.schema, "e", 3, "grp"),
            ShardScan("groups", right.schema, "g", 3, "grp"),
            "INNER",
            BinaryOp("=", col("e.grp"), col("g.grp")),
        )
        gather = Gather(
            "events", fragment, "grp", (0, 1, 2), 3, "none", "colocated"
        )
        before = db.distributed.stats()
        result = db.execute_plan(gather)
        after = db.distributed.stats()
        assert after["shards_scanned"] - before["shards_scanned"] == 1
        assert after["shards_pruned"] - before["shards_pruned"] == 2
        assert result.num_rows == 5
        assert np.array_equal(np.sort(result.column("e.grp")), np.arange(5.0))

    def test_shuffle_skips_empty_buckets(self):
        """Filtering one side to a single key leaves most buckets empty
        on that side; the empty-bucket guard must skip their dispatch."""
        events = make_events(n=4_000)
        groups = make_groups()
        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 4},
            {"key": "grp", "num_shards": 3},
        )
        left_fragment = logical.Filter(
            ShardScan("events", events.schema, "e", 4),
            BinaryOp("=", col("grp"), lit(7)),
        )
        shuffle_join = ShuffleJoin(
            Shuffle(
                "events", left_fragment, "e.grp", (0, 1, 2, 3), 4, 8
            ),
            Shuffle(
                "groups",
                ShardScan("groups", groups.schema, "g", 3),
                "g.grp",
                (0, 1, 2),
                3,
                8,
            ),
            "INNER",
            BinaryOp("=", col("e.grp"), col("g.grp")),
            8,
        )
        before = db.distributed.stats()
        result = db.execute_plan(shuffle_join)
        after = db.distributed.stats()
        assert result.num_rows == int((events.column("grp") == 7).sum())
        assert after["buckets_joined"] - before["buckets_joined"] == 1
        assert after["buckets_skipped"] - before["buckets_skipped"] == 7

    def test_distributed_modes_agree_with_runnerless_executor(
        self, events, mirror, big_expected
    ):
        """The injected-runner path and the no-runner inline path must
        produce row-identical results (acceptance criterion)."""
        from repro.relational.algebra.executor import Executor

        db = self._big_db(
            events,
            mirror,
            {"key": "id", "num_shards": 8},
            {"key": "id", "num_shards": 5},
        )
        plan = db.bind(self.BIG_SQL)
        best = db._planner.optimize(plan)
        assert any(isinstance(op, ShuffleJoin) for op in best.walk())
        with_runner = db.execute_plan(best)
        inline = Executor(
            table_provider=db._provide_table,
            model_resolver=db,
            options=db.executor_options,
            shard_provider=db._provide_shards,
        ).execute(best)
        assert with_runner.equals(inline)
        assert with_runner.equals(big_expected)

    def test_predict_rides_inside_colocated_join_fragment(
        self, events, groups
    ):
        pipe = train_pipeline(events)
        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 8},
            {"key": "grp", "num_shards": 8},
        )
        db.store_model(
            "m", pipe, metadata={"feature_names": ["grp", "v"]}
        )
        db0 = join_db(events, groups, distributed=False)
        db0.store_model(
            "m", pipe, metadata={"feature_names": ["grp", "v"]}
        )
        sql = """
        DECLARE @m varbinary(max) = (
            SELECT model FROM scoring_models WHERE model_name = 'm');
        SELECT e.id, g.w, p.out
        FROM PREDICT(MODEL = @m, DATA = (
            SELECT e.id, e.grp, e.v, g.w FROM events e
            JOIN groups g ON e.grp = g.grp) AS j)
        WITH (out float) AS p
        ORDER BY id
        """
        plan = db._planner.optimize(db.bind(sql))
        gathers = [op for op in plan.walk() if isinstance(op, Gather)]
        assert gathers and gathers[0].join == "colocated"
        assert any(
            isinstance(op, logical.Predict)
            for op in gathers[0].fragment.walk()
        ), "PREDICT should ride inside the join fragment"
        assert db.execute(sql).equals(db0.execute(sql))

    def test_prepared_join_reroutes_after_reshard_and_unshard(
        self, events, groups, expected
    ):
        from repro.core.raven import RavenSession
        from repro.serving.prepared import PreparedQuery

        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 8},
            {"key": "grp", "num_shards": 8},
        )
        session = RavenSession(
            db,
            optimizer="heuristic",
            options={"shard_workers": 8, "enable_inlining": False},
        )
        prepared = PreparedQuery(
            session, JOIN_SQL.format(where=" WHERE e.grp = ?")
        )
        routing = prepared._entry.shard_routing
        assert routing and routing[0][4] == "colocated"
        assert "?1" in prepared._entry.param_names
        result = prepared.execute([7])
        assert result.equals(expected["filtered"])
        # The bound `?` routes at execution time: one shard pair runs.
        before = db.distributed.stats()
        prepared.execute([7])
        after = db.distributed.stats()
        assert after["shards_scanned"] - before["shards_scanned"] == 1
        assert after["shards_pruned"] - before["shards_pruned"] == 7
        # Incompatible reshard stales the plan; results stay identical.
        db.shard_table("groups", "grp", 5)
        assert prepared.execute([7]).equals(expected["filtered"])
        assert prepared.replans == 1
        assert all(
            strategy != "colocated"
            for _t, _s, _n, _p, strategy in prepared._entry.shard_routing
        )
        # Unsharding re-plans again; still identical.
        db.catalog.unshard_table("groups")
        assert prepared.execute([7]).equals(expected["filtered"])
        assert prepared.replans == 2

    def test_colocated_gather_degrades_when_layout_drifts(
        self, events, groups, expected
    ):
        """A cached colocated plan raced by a reshard executes the
        fragment over the full base tables — correct, just local."""
        db = join_db(
            events,
            groups,
            {"key": "grp", "num_shards": 8},
            {"key": "grp", "num_shards": 8},
        )
        plan = db.bind(JOIN_SQL.format(where=""))
        best = db._planner.optimize(plan)
        assert any(
            isinstance(op, Gather) and op.join == "colocated"
            for op in best.walk()
        )
        db.shard_table("groups", "grp", 4)  # stale layout assumption
        assert db.execute_plan(best).equals(expected["all"])
        db.catalog.unshard_table("events")
        db.catalog.unshard_table("groups")
        assert db.execute_plan(best).equals(expected["all"])


class TestRepartitionEmptyBuckets:
    def test_repartition_empty_table_is_noop(self):
        db = baseline_db(make_table(n=16))
        empty = Table.from_dict(
            {"grp": np.empty(0, dtype=np.int64), "v": np.empty(0)}
        )
        plan = Repartition(logical.InlineTable(empty), "grp", 4)
        result = db._executor.execute(plan)
        assert result.num_rows == 0

    def test_repartition_with_empty_buckets_keeps_bounds_contiguous(self):
        # Every row hashes to the same bucket of 8: six buckets empty.
        table = Table.from_dict(
            {
                "grp": np.full(32, 8, dtype=np.int64),
                "v": np.arange(32, dtype=np.float64),
            }
        )
        db = baseline_db(make_table(n=16))
        plan = Repartition(logical.InlineTable(table), "grp", 8)
        result = db._executor.execute(plan)
        assert result.num_rows == 32
        # One non-empty bucket: no explicit bounds worth keeping, but
        # the rows must all survive in hash-cluster order.
        assert np.array_equal(
            np.sort(result.column("v")), np.arange(32, dtype=np.float64)
        )

    def test_bucketize_marks_empty_buckets_none(self):
        table = Table.from_dict(
            {"grp": np.array([3, 3, 3], dtype=np.int64), "v": np.ones(3)}
        )
        buckets = worker.bucketize(table, "grp", 4)
        assert sum(b is not None for b in buckets) == 1
        assert buckets[3 % 4].num_rows == 3
        empty = Table.from_dict(
            {"grp": np.empty(0, dtype=np.int64), "v": np.empty(0)}
        )
        assert worker.bucketize(empty, "grp", 4) == [None] * 4


class TestConcurrencyAffinity:
    def test_prefers_sched_getaffinity(self, monkeypatch):
        from repro import concurrency

        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda _pid: {0, 1}, raising=False
        )
        assert concurrency.default_max_workers() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        from repro import concurrency

        def boom(_pid):
            raise OSError("no affinity syscall")

        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        assert concurrency.default_max_workers() == 6


# ---------------------------------------------------------------------------
# DAG fragments: multi-stage worker pipelines + distributed outer joins
# ---------------------------------------------------------------------------


AGG_JOIN_SQL = (
    "SELECT grp, AVG(w) AS avg_w, COUNT(*) AS cnt FROM events "
    "{kind} JOIN groups ON events.grp = groups.ggrp "
    "GROUP BY grp ORDER BY grp"
)


def make_outer_groups(groups=N_GROUPS, seed=3, offset=0):
    """Group table keyed ``ggrp`` so unqualified references resolve;
    ``offset`` shifts keys to create unmatched rows on both sides."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "ggrp": (np.arange(groups, dtype=np.int64) + offset),
            "w": rng.normal(size=groups),
        }
    )


def outer_join_db(events, groups, events_shards, groups_shards):
    db = Database(
        options=ExecutionOptions(
            max_workers=8, distributed_mode="inprocess"
        )
    )
    db.register_table("events", events)
    db.register_table("groups", groups)
    if events_shards:
        db.shard_table("events", "grp", events_shards)
    if groups_shards:
        db.shard_table("groups", "ggrp", groups_shards)
    db.catalog.table_statistics("events")
    db.catalog.table_statistics("groups")
    return db


def local_db(events, groups):
    db = Database(options=ExecutionOptions(enable_distributed=False))
    db.register_table("events", events)
    db.register_table("groups", groups)
    return db


def assert_tables_close(result, expected):
    assert result.num_rows == expected.num_rows
    assert list(result.schema.names) == list(expected.schema.names)
    for name in result.schema.names:
        got = np.asarray(result.column(name), dtype=float)
        want = np.asarray(expected.column(name), dtype=float)
        assert np.allclose(got, want, equal_nan=True), name


class TestDagFragments:
    """Aggregates-over-joins run as one multi-stage worker round-trip."""

    @pytest.fixture(scope="class")
    def events(self):
        return make_events(seed=11)

    @pytest.fixture(scope="class")
    def groups(self):
        # Offset keys: some events match nothing, some groups match
        # nothing — both outer-join directions are exercised.
        return make_outer_groups(offset=N_GROUPS // 2)

    def _expected(self, events, groups, kind):
        return local_db(events, groups).execute(
            AGG_JOIN_SQL.format(kind=kind)
        )

    def test_shuffle_aggregate_runs_as_worker_stage(self, events, groups):
        db = outer_join_db(events, groups, 8, 5)
        sql = AGG_JOIN_SQL.format(kind="INNER")
        plan = "\n".join(db.execute("EXPLAIN " + sql).column("plan"))
        assert "join=shuffle" in plan
        assert "stages=1" in plan
        assert "Stage stage=1/1 [partial-agg]" in plan
        # The coordinator-side tree above the exchange is only the
        # final merge: no Join and no partial Aggregate outside it.
        head = plan.split("ShuffleJoin")[0]
        assert "Join" not in head
        before = db.distributed.stats()
        result = db.execute(sql)
        after = db.distributed.stats()
        assert after["stages_run"] - before["stages_run"] > 0
        assert_tables_close(result, self._expected(events, groups, "INNER"))

    def test_colocated_aggregate_rides_in_fragment(self, events, groups):
        db = outer_join_db(events, groups, 8, 8)
        sql = AGG_JOIN_SQL.format(kind="INNER")
        plan = "\n".join(db.execute("EXPLAIN " + sql).column("plan"))
        assert "join=colocated" in plan
        assert "[partial-agg]" in plan
        assert_tables_close(
            db.execute(sql), self._expected(events, groups, "INNER")
        )

    @pytest.mark.parametrize("kind", ["LEFT", "FULL"])
    @pytest.mark.parametrize(
        "layout", [(8, 5), (8, 8)], ids=["shuffle", "colocated"]
    )
    def test_outer_join_aggregates_match_local(
        self, events, groups, kind, layout
    ):
        db = outer_join_db(events, groups, *layout)
        sql = AGG_JOIN_SQL.format(kind=kind)
        assert_tables_close(
            db.execute(sql), self._expected(events, groups, kind)
        )

    @pytest.mark.parametrize("kind", ["LEFT", "FULL"])
    @pytest.mark.parametrize(
        "layout", [(8, 5), (8, 8)], ids=["shuffle", "colocated"]
    )
    def test_outer_join_rows_match_local(
        self, events, groups, kind, layout
    ):
        sql = (
            "SELECT grp, ggrp, v, w FROM events "
            f"{kind} JOIN groups ON events.grp = groups.ggrp "
            "ORDER BY grp, ggrp, v, w"
        )
        db = outer_join_db(events, groups, *layout)
        assert_tables_close(
            db.execute(sql), local_db(events, groups).execute(sql)
        )

    def test_full_join_pads_unmatched_right_rows(self, events, groups):
        """FULL output must include right rows no left key matches."""
        sql = (
            "SELECT ggrp, w FROM events "
            "FULL JOIN groups ON events.grp = groups.ggrp "
            "ORDER BY ggrp, w"
        )
        db = outer_join_db(events, groups, 8, 5)
        result = db.execute(sql)
        unmatched = set(np.asarray(groups.column("ggrp"))) - set(
            np.asarray(events.column("grp"))
        )
        got = set(np.asarray(result.column("ggrp"), dtype=np.int64))
        assert unmatched <= got
        assert_tables_close(result, local_db(events, groups).execute(sql))

    @pytest.mark.parametrize(
        "layout", [(4, 3), (4, 4)], ids=["shuffle", "colocated"]
    )
    def test_empty_build_side_left_join_keeps_probe_rows(self, layout):
        """Empty-shard pruning must never drop the NULL-preserved side:
        an empty build table ⋈ LEFT populated probe returns all rows."""
        probe = Table.from_dict(
            {
                "grp": np.arange(24, dtype=np.int64) % 6,
                "v": np.ones(24),
            }
        )
        build = Table.from_dict(
            {
                "ggrp": np.empty(0, dtype=np.int64),
                "w": np.empty(0, dtype=np.float64),
            }
        )
        db = outer_join_db(probe, build, *layout)
        result = db.execute(
            "SELECT grp, w FROM events "
            "LEFT JOIN groups ON events.grp = groups.ggrp ORDER BY grp"
        )
        assert result.num_rows == 24
        assert np.all(np.isnan(result.column("w")))

    def test_colocated_routing_preserves_null_side(self):
        """`colocated_shard_ids` keeps pairs whose only-empty shard is
        on the non-preserved side (LEFT keeps them, INNER drops)."""
        from repro.distributed.operators import ShardScan
        from repro.relational.types import Column, DataType, Schema

        left = ShardedTable.build(
            "events",
            Table.from_dict(
                {
                    "grp": np.arange(12, dtype=np.int64) % 4,
                    "v": np.ones(12),
                }
            ),
            ShardingSpec("grp", 4),
        )
        right = ShardedTable.build(
            "groups",
            Table.from_dict(
                {
                    "ggrp": np.empty(0, dtype=np.int64),
                    "w": np.empty(0, dtype=np.float64),
                }
            ),
            ShardingSpec("ggrp", 4),
        )
        shardeds = {"events": left, "groups": right}

        def fragment(kind):
            return logical.Join(
                ShardScan("events", left.shard(0).schema, None, 4, "grp"),
                ShardScan("groups", right.shard(0).schema, None, 4, "ggrp"),
                kind,
                BinaryOp("=", col("grp"), col("ggrp")),
            )

        inner_ids, _ = routing.colocated_shard_ids(
            fragment("INNER"), shardeds
        )
        left_ids, _ = routing.colocated_shard_ids(
            fragment("LEFT"), shardeds
        )
        full_ids, _ = routing.colocated_shard_ids(
            fragment("FULL"), shardeds
        )
        assert inner_ids == []  # every right shard is provably empty
        assert len(left_ids) > 0  # preserved-side shards still run
        assert left_ids == full_ids

    def test_stage_spans_attach_under_trace(self, events, groups):
        from repro import observability as qtrace

        db = outer_join_db(events, groups, 8, 5)
        sql = AGG_JOIN_SQL.format(kind="LEFT")
        with qtrace.trace_query(sql) as trace:
            db.execute(sql)
        stages = trace.find("stage")
        assert stages
        for span in stages:
            assert span.attrs["stage"] == "1/1"
            assert span.attrs["worker_seconds"] >= 0.0

    def test_prepared_join_replans_on_either_side_shard_epoch(
        self, events, groups
    ):
        """Resharding *either* join side invalidates a cached plan."""
        from repro.core.raven import RavenSession
        from repro.serving.prepared import PreparedQuery

        db = outer_join_db(events, groups, 8, 5)
        session = RavenSession(
            db,
            optimizer="heuristic",
            options={"shard_workers": 8, "enable_inlining": False},
        )
        sql = AGG_JOIN_SQL.format(kind="LEFT")
        prepared = PreparedQuery(session, sql)
        expected = prepared.execute()
        assert prepared.replans == 0
        db.catalog.unshard_table("groups")
        db.shard_table("groups", "ggrp", 3)
        assert_tables_close(prepared.execute(), expected)
        assert prepared.replans == 1
        db.catalog.unshard_table("events")
        assert_tables_close(prepared.execute(), expected)
        assert prepared.replans == 2

    def test_server_stats_surface_stage_latencies(self, events, groups):
        from repro.core.raven import RavenSession
        from repro.serving.server import RavenServer

        db = outer_join_db(events, groups, 8, 5)
        session = RavenSession(
            db,
            optimizer="heuristic",
            options={"shard_workers": 8, "enable_inlining": False},
        )
        server = RavenServer(session, workers=2, max_queue=16)
        try:
            server.prepare("agg", AGG_JOIN_SQL.format(kind="INNER"))
            for _ in range(3):
                server.query("agg")
            snapshot = server.stats_snapshot()
            fanout = snapshot["distributed"]
            assert fanout["stages_run"] > 0
            assert fanout["stage_p95_ms"] >= fanout["stage_p50_ms"] > 0.0
        finally:
            server.shutdown()
