"""Tests for the workload observatory: the drift watchdog, the
query-log profiler, the telemetry exporters, and the drop-counter /
lifecycle satellites."""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro import Database, RavenServer, RavenSession, Table
from repro.observability import events
from repro.observability import trace as qtrace
from repro.observability.events import EventBus
from repro.observability.export import (
    render_chrome_trace,
    render_prometheus,
    sanitize_metric_name,
    trace_to_events,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import QueryLogProfiler
from repro.observability.watchdog import WorkloadWatchdog


@pytest.fixture(autouse=True)
def _clean_bus():
    """Each test starts and ends with an unsubscribed process-wide bus."""
    events.BUS.reset()
    yield
    events.BUS.reset()


N = 4_000


def _uniform_table(n: int = N, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    v = rng.uniform(0.0, 100.0, n)
    # Exact range sentinels: the drift check compares min/max against
    # cached stats, so both tables must share identical bounds.
    v[0], v[1] = 0.0, 100.0
    return Table.from_dict(
        {"id": np.arange(n, dtype=np.int64), "v": v}
    )


def _skewed_table(n: int = N, seed: int = 8) -> Table:
    """Same row count and [0, 100] bounds, but ~everything below 5 —
    an in-range value shuffle the catalog's drift check keeps stats
    for, leaving the histogram badly wrong."""
    rng = np.random.default_rng(seed)
    v = rng.uniform(0.0, 4.5, n)
    v[0], v[1] = 0.0, 100.0
    return Table.from_dict(
        {"id": np.arange(n, dtype=np.int64), "v": v}
    )


def _drift_db() -> Database:
    db = Database()
    db.register_table("t", _uniform_table())
    db.execute("ANALYZE t")
    return db


# -- end-to-end drift loop ---------------------------------------------------


class TestWatchdogEndToEnd:
    def test_skewed_writes_trigger_analyze_and_replan(self):
        db = _drift_db()
        epoch0 = db.catalog.stats_epoch("t")
        session = RavenSession(db)
        server = RavenServer(session, workers=1)
        try:
            server.enable_watchdog(
                q_error_threshold=4.0,
                min_observations=1,
                poll_interval_seconds=0.0,
                cooldown_seconds=60.0,
            )
            server.prepare("q", "SELECT id FROM t WHERE v < ?")
            baseline = server.query("q", params=(5.0,), timeout=30)
            assert baseline.num_rows < N // 4
            # Skewed write: same row count, same bounds — the catalog
            # keeps the (now badly wrong) statistics.
            db.catalog.set_table("t", _skewed_table())
            assert db.catalog.stats_epoch("t") == epoch0
            # EXPLAIN ANALYZE measures the estimate error under skew.
            db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v < 5.0")
            summary = db.catalog.q_error_summary("t")
            assert summary is not None and summary["last"] > 4.0
            # The next serving completion drives the watchdog poll;
            # it detects the drift and ANALYZEs before the request's
            # future even resolves.
            server.query("q", params=(5.0,), timeout=30)
            assert db.catalog.stats_epoch("t") > epoch0
            # Fresh statistics restarted the q-error series.
            assert db.catalog.q_error_summary("t") is None
            # The prepared plan replans on the bumped epoch.
            prepared = server.prepared("q")
            assert prepared.replans == 0
            result = server.query("q", params=(5.0,), timeout=30)
            assert prepared.replans == 1
            assert result.num_rows > N // 2  # skew is real
            # The decision is on the stats surface.
            watchdog_stats = server.stats()["watchdog"]
            assert watchdog_stats["analyzes_triggered"] == 1
            assert watchdog_stats["drifts_detected"] >= 1
            decision = next(
                d
                for d in watchdog_stats["decisions"]
                if d["action"] == "analyze"
            )
            assert decision["table"] == "t"
            assert decision["signal"] == "q_error"
            assert decision["epoch_after"] > decision["epoch_before"]
            # The ANALYZE is the watchdog's (audit log records it).
            analyzes = db.catalog.audit_log(["analyze"])
            assert len(analyzes) == 2  # setup ANALYZE + watchdog's
        finally:
            server.shutdown()
            db.close()

    def test_watchdog_emits_drift_and_analyze_events(self):
        db = _drift_db()
        watchdog = WorkloadWatchdog(
            db, q_error_threshold=4.0, min_observations=1
        ).attach(events.BUS)
        try:
            with events.BUS.subscribe_queue("watchdog.*") as sub:
                db.catalog.record_q_error("t", 50.0)
                watchdog.poll()
                names = [e.name for e in sub.drain()]
            assert "watchdog.drift_detected" in names
            assert "watchdog.analyze_triggered" in names
        finally:
            watchdog.detach()
            db.close()

    def test_dropped_table_does_not_break_poll(self):
        db = _drift_db()
        watchdog = WorkloadWatchdog(
            db, q_error_threshold=4.0, min_observations=1
        )
        db.catalog.record_q_error("t", 50.0)
        db.catalog.drop_table("t")
        decisions = watchdog.poll()  # series died with the table
        assert all(d["action"] != "analyze" for d in decisions)
        assert watchdog.stats()["analyze_errors"] == 0
        db.close()


# -- hysteresis / cooldown / kill-switch -------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestWatchdogHysteresis:
    @pytest.fixture()
    def db(self):
        database = _drift_db()
        yield database
        database.close()

    def test_no_analyze_storm_under_oscillating_drift(self, db):
        clock = _Clock()
        watchdog = WorkloadWatchdog(
            db,
            q_error_threshold=4.0,
            min_observations=1,
            cooldown_seconds=100.0,
            clock=clock,
        )
        for step in range(20):
            clock.now = float(step)
            db.catalog.record_q_error("t", 50.0 if step % 2 else 2.0)
            watchdog.poll()
        # Drift crossed the threshold many times inside one cooldown
        # window; exactly one ANALYZE ran.
        assert watchdog.stats()["analyzes_triggered"] == 1
        assert len(db.catalog.audit_log(["analyze"])) == 2  # setup + 1

    def test_cooldown_expiry_allows_reanalyze(self, db):
        clock = _Clock()
        watchdog = WorkloadWatchdog(
            db,
            q_error_threshold=4.0,
            min_observations=1,
            cooldown_seconds=100.0,
            clock=clock,
        )
        db.catalog.record_q_error("t", 50.0)
        watchdog.poll()
        assert watchdog.stats()["analyzes_triggered"] == 1
        # Persisting drift inside the window: logged, not acted on.
        clock.now = 50.0
        db.catalog.record_q_error("t", 50.0)
        watchdog.poll()
        assert watchdog.stats()["analyzes_triggered"] == 1
        # Past the window the second trigger is allowed.
        clock.now = 150.0
        db.catalog.record_q_error("t", 50.0)
        watchdog.poll()
        assert watchdog.stats()["analyzes_triggered"] == 2

    def test_observe_only_never_mutates(self, db):
        epoch0 = db.catalog.stats_epoch("t")
        analyzes0 = len(db.catalog.audit_log(["analyze"]))
        watchdog = WorkloadWatchdog(
            db,
            auto_analyze=False,
            q_error_threshold=4.0,
            min_observations=1,
        )
        for _ in range(5):
            db.catalog.record_q_error("t", 50.0)
            watchdog.poll()
        stats = watchdog.stats()
        assert stats["auto_analyze"] is False
        assert stats["drifts_detected"] == 1
        assert stats["analyzes_triggered"] == 0
        assert db.catalog.stats_epoch("t") == epoch0
        assert len(db.catalog.audit_log(["analyze"])) == analyzes0
        # The detection is still logged — once per drift entry, not
        # once per poll.
        observed = [
            d for d in stats["decisions"] if d["action"] == "observe"
        ]
        assert len(observed) == 1
        # The q-error series is untouched (nothing consumed it).
        assert db.catalog.q_error_summary("t")["count"] == 5

    def test_recovery_needs_hysteresis_margin(self, db):
        watchdog = WorkloadWatchdog(
            db,
            auto_analyze=False,
            q_error_threshold=4.0,
            recovery_ratio=0.5,
            ewma_alpha=0.5,
            min_observations=1,
        )
        db.catalog.record_q_error("t", 16.0)
        watchdog.poll()
        assert watchdog.stats()["tables"]["t"]["state"] == "drifted"
        # 0.5*1 + 0.5*16 = 8.5 — below threshold 4? No: still above
        # recovery bound 2.0, so the state must hold.
        db.catalog.record_q_error("t", 1.0)
        watchdog.poll()
        assert watchdog.stats()["tables"]["t"]["state"] == "drifted"
        # Keep feeding clean measurements until the EWMA sinks under
        # threshold * recovery_ratio; exactly one recovery decision.
        for _ in range(6):
            db.catalog.record_q_error("t", 1.0)
            watchdog.poll()
        stats = watchdog.stats()
        assert stats["tables"]["t"]["state"] == "ok"
        recoveries = [
            d for d in stats["decisions"] if d["action"] == "recovered"
        ]
        assert len(recoveries) == 1
        # Back under threshold but only one drift was ever counted.
        assert stats["drifts_detected"] == 1


class TestWatchdogSecondarySignals:
    @pytest.fixture()
    def db(self):
        database = _drift_db()
        yield database
        database.close()

    def test_plan_cache_hit_collapse_is_observe_only(self, db):
        epoch0 = db.catalog.stats_epoch("t")
        watchdog = WorkloadWatchdog(
            db, plan_cache_hit_floor=0.9, plan_cache_min_events=4
        ).attach(events.BUS)
        try:
            for _ in range(6):
                events.emit("plan_cache.miss", fingerprint="fp")
            decisions = watchdog.poll()
        finally:
            watchdog.detach()
        assert [d["signal"] for d in decisions] == ["plan_cache_hit_rate"]
        assert decisions[0]["action"] == "observe"
        assert db.catalog.stats_epoch("t") == epoch0
        stats = watchdog.stats()["plan_cache"]
        assert stats["misses"] == 6
        assert stats["state"] == "drifted"

    def test_shard_prune_quality_tracked_per_table(self, db):
        watchdog = WorkloadWatchdog(
            db, shard_prune_floor=0.5, shard_prune_min_queries=2
        ).attach(events.BUS)
        try:
            for _ in range(3):
                events.emit(
                    "distributed.gather", table="t", scanned=8, pruned=0
                )
            decisions = watchdog.poll()
            assert [(d["signal"], d["action"]) for d in decisions] == [
                ("shard_prune", "observe")
            ]
            # Routing quality recovers: pruned-heavy gathers raise the
            # EWMA past the hysteresis bound.
            for _ in range(10):
                events.emit(
                    "distributed.gather", table="t", scanned=1, pruned=7
                )
            decisions = watchdog.poll()
            assert [(d["signal"], d["action"]) for d in decisions] == [
                ("shard_prune", "recovered")
            ]
            table_stats = watchdog.stats()["tables"]["t"]
            assert table_stats["prune_state"] == "ok"
            assert table_stats["prune_queries"] == 13
        finally:
            watchdog.detach()

    def test_replans_counted_from_bus(self, db):
        watchdog = WorkloadWatchdog(db).attach(events.BUS)
        try:
            events.emit("serving.replan", fingerprint="fp", replans=1)
            events.emit("serving.replan", fingerprint="fp", replans=2)
        finally:
            watchdog.detach()
        assert watchdog.stats()["plan_cache"]["replans"] == 2


# -- q-error summary edge cases ----------------------------------------------


class TestQErrorEdgeCases:
    def test_zero_actual_rows_is_finite(self):
        db = _drift_db()
        db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v < -1.0")
        summary = db.catalog.q_error_summary("t")
        assert summary is not None
        assert np.isfinite(summary["last"])
        assert summary["last"] >= 1.0
        db.close()

    def test_empty_table_analyze(self):
        db = Database()
        db.register_table(
            "empty",
            Table.from_dict(
                {
                    "id": np.array([], dtype=np.int64),
                    "v": np.array([], dtype=np.float64),
                }
            ),
        )
        db.execute("EXPLAIN ANALYZE SELECT id FROM empty WHERE v < 1.0")
        summary = db.catalog.q_error_summary("empty")
        if summary is not None:  # recorded only for anchored operators
            assert np.isfinite(summary["geo_mean"])
            assert summary["last"] >= 1.0
        db.close()

    def test_analyze_restarts_the_series(self):
        db = _drift_db()
        for _ in range(3):
            db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v < 5.0")
        assert db.catalog.q_error_summary("t")["count"] == 3
        db.execute("ANALYZE t")
        # Fresh statistics invalidate the recorded estimate errors.
        assert db.catalog.q_error_summary("t") is None
        db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v < 5.0")
        assert db.catalog.q_error_summary("t")["count"] == 1
        db.execute("ANALYZE t")
        assert db.catalog.q_error_summary("t") is None  # repeatable
        db.close()

    def test_q_error_tables_and_drop(self):
        db = _drift_db()
        assert db.catalog.q_error_tables() == []
        db.execute("EXPLAIN ANALYZE SELECT id FROM t WHERE v < 5.0")
        assert db.catalog.q_error_tables() == ["t"]
        db.catalog.drop_table("t")
        assert db.catalog.q_error_tables() == []
        db.close()


# -- query-log profiler ------------------------------------------------------


def _make_trace(name: str, sleep: float = 0.0) -> qtrace.QueryTrace:
    import time as _time

    with qtrace.trace_query(name) as trace:
        with qtrace.span("execute"):
            with qtrace.span("gather", shards=2):
                if sleep:
                    _time.sleep(sleep)
    return trace


class TestProfiler:
    def test_per_operator_self_time_attribution(self):
        profiler = QueryLogProfiler()
        profiler.record(_make_trace("q1", sleep=0.002))
        report = profiler.report()
        operators = report["queries"]["q1"]["operators"]
        assert set(operators) == {"q1", "execute", "gather"}
        # The leaf holds the wall time; its parents' self time is near
        # zero, never negative, and inclusive totals nest.
        assert operators["gather"]["self_ms"] == pytest.approx(
            operators["gather"]["total_ms"]
        )
        assert operators["execute"]["self_ms"] >= 0.0
        assert (
            operators["execute"]["total_ms"]
            >= operators["gather"]["total_ms"]
        )
        assert operators["gather"]["total_ms"] >= 2.0  # the sleep

    def test_top_k_slowest_with_exemplars(self):
        profiler = QueryLogProfiler(top_k=3)
        for i in range(10):
            trace = _make_trace(f"q{i}")
            # Synthesize deterministic durations: the dict form is
            # as acceptable as the live trace.
            body = trace.to_dict()
            body["duration_ms"] = float(i)
            profiler.record(body, query=f"q{i}")
        report = profiler.report()
        top = report["top_slow"]
        assert [entry["query"] for entry in top] == ["q9", "q8", "q7"]
        assert all("trace" in entry for entry in top)
        # The stats-surface form elides the span trees.
        lean = profiler.report(include_traces=False)
        assert all("trace" not in entry for entry in lean["top_slow"])
        assert "exemplars" not in lean["queries"]["q9"]

    def test_fingerprint_overflow_folds_to_other(self):
        profiler = QueryLogProfiler(max_queries=2)
        for i in range(5):
            profiler.record(_make_trace(f"q{i}"))
        report = profiler.report()
        assert report["queries_tracked"] == 3  # q0, q1, __other__
        assert report["queries_overflowed"] == 3
        assert report["queries"]["__other__"]["count"] == 3
        assert report["traces"] == 5

    def test_stage_breakdown(self):
        with qtrace.trace_query("staged") as trace:
            with qtrace.span("stage", stage="1/2"):
                pass
            with qtrace.span("stage", stage="2/2"):
                pass
        profiler = QueryLogProfiler()
        profiler.record(trace)
        stages = profiler.report()["queries"]["staged"]["stages"]
        assert set(stages) == {"1/2", "2/2"}
        assert stages["1/2"]["count"] == 1

    def test_backend_breakdown_from_bus(self):
        profiler = QueryLogProfiler().attach(events.BUS)
        try:
            events.emit("backend.run", backend="numba", rows=64, seconds=0.01)
            events.emit("backend.run", backend="numba", rows=36, seconds=0.02)
            events.emit("backend.run", backend="numpy", rows=10, seconds=0.001)
        finally:
            profiler.detach()
        backends = profiler.report()["backends"]
        assert backends["numba"]["runs"] == 2
        assert backends["numba"]["rows"] == 100
        assert backends["numpy"]["runs"] == 1

    def test_latency_reservoir_percentiles(self):
        profiler = QueryLogProfiler(reservoir_size=128)
        base = _make_trace("q").to_dict()
        for i in range(100):
            body = dict(base)
            body["duration_ms"] = float(i + 1)
            profiler.record(body, query="q")
        stats = profiler.report()["queries"]["q"]
        assert stats["count"] == 100
        assert 40.0 <= stats["p50_ms"] <= 60.0
        assert stats["p95_ms"] >= 90.0
        assert stats["max_ms"] == 100.0


# -- exporters ---------------------------------------------------------------

#: One sample line of the text-exposition grammar: name, optional
#: labels, a float value (and no timestamp — we never emit one).
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(NaN|[+-]?Inf|[-+]?[0-9.eE+-]+)$"
)
_TYPE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped)$"
)


def _parse_prometheus(text: str) -> dict[str, float]:
    """Validate every line against the exposition grammar; return the
    samples as ``{name_with_labels: value}``."""
    samples: dict[str, float] = {}
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _TYPE.match(line), line
            continue
        assert _SAMPLE.match(line), line
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


class TestPrometheusExport:
    def test_grammar_and_histogram_cumulativity(self):
        registry = MetricsRegistry()
        registry.counter("serving.completed").inc(5)
        registry.gauge("pool.size").set(4)
        histogram = registry.histogram("serving.latency_seconds")
        for value in (0.0002, 0.003, 0.4, 99.0):
            histogram.observe(value)
        text = render_prometheus(registry.snapshot())
        samples = _parse_prometheus(text)
        assert samples["repro_serving_completed"] == 5.0
        assert samples["repro_pool_size"] == 4.0
        buckets = [
            (float(match.group(1)), value)
            for name, value in samples.items()
            if (
                match := re.match(
                    r'repro_serving_latency_seconds_bucket\{le="([^"]+)"\}',
                    name,
                )
            )
            and match.group(1) != "+Inf"
        ]
        counts = [count for _bound, count in sorted(buckets)]
        assert counts == sorted(counts)  # cumulative, monotone
        assert (
            samples['repro_serving_latency_seconds_bucket{le="+Inf"}']
            == samples["repro_serving_latency_seconds_count"]
            == 4.0
        )
        assert samples["repro_serving_latency_seconds_sum"] == (
            pytest.approx(99.4032)
        )

    def test_labels_attach_to_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.histogram("latency").observe(0.01)
        text = render_prometheus(
            registry.snapshot(), labels={"instance": "raven-0"}
        )
        samples = _parse_prometheus(text)
        for name in samples:
            assert 'instance="raven-0"' in name, name

    def test_metric_names_sanitized(self):
        assert (
            sanitize_metric_name("backend.numpy.runs", "repro")
            == "repro_backend_numpy_runs"
        )
        assert sanitize_metric_name("1weird-name")[0] == "_"
        registry = MetricsRegistry()
        registry.counter("plan_cache.hit").inc()
        samples = _parse_prometheus(render_prometheus(registry.snapshot()))
        assert "repro_plan_cache_hit" in samples

    def test_server_metrics_round_trip(self):
        db = _drift_db()
        session = RavenSession(db)
        server = RavenServer(session, workers=1)
        try:
            server.enable_metrics()
            server.prepare("q", "SELECT id FROM t WHERE v < ?")
            for _ in range(3):
                server.query("q", params=(5.0,), timeout=30)
            registry_snapshot = server.stats()["metrics"]
            samples = _parse_prometheus(render_prometheus(registry_snapshot))
            assert samples["repro_serving_completed"] == 3.0
            assert samples["repro_serving_latency_seconds_count"] == 3.0
        finally:
            server.shutdown()
            db.close()


class TestChromeTraceExport:
    def test_span_count_matches_server_last_trace(self):
        db = _drift_db()
        session = RavenSession(db)
        server = RavenServer(session, workers=1, trace_requests=True)
        try:
            server.prepare("q", "SELECT id FROM t WHERE v < ?")
            server.query("q", params=(5.0,), timeout=30)
            last = server.last_trace()
            assert last is not None and last["span_count"] >= 2
            blob = json.loads(render_chrome_trace(last))
            assert len(blob["traceEvents"]) == last["span_count"]
            assert blob["displayTimeUnit"] == "ms"
            for event in blob["traceEvents"]:
                assert event["ph"] == "X"
                assert event["dur"] >= 0.0
        finally:
            server.shutdown()
            db.close()

    def test_multiple_traces_get_distinct_tracks(self):
        first = _make_trace("a").to_dict()
        second = _make_trace("b").to_dict()
        blob = json.loads(render_chrome_trace([first, second]))
        tids = {event["tid"] for event in blob["traceEvents"]}
        assert tids == {1, 2}
        assert len(blob["traceEvents"]) == (
            first["span_count"] + second["span_count"]
        )

    def test_events_carry_span_attrs(self):
        trace = _make_trace("q").to_dict()
        gather = next(
            e for e in trace_to_events(trace) if e["name"] == "gather"
        )
        assert gather["args"]["shards"] == 2


# -- satellite: drop counters ------------------------------------------------


class TestDropCounters:
    def test_queue_drops_survive_unsubscribe(self):
        bus = EventBus()
        sub = bus.subscribe_queue(maxsize=2)
        for i in range(5):
            bus.emit("serving.completed", i=i)
        assert sub.dropped == 3
        assert bus.stats()["queue_dropped"] == 3
        sub.close()
        # The evidence of loss outlives the lossy consumer.
        assert bus.stats()["queue_subscribers"] == 0
        assert bus.stats()["queue_dropped"] == 3

    def test_reset_retires_drop_counts(self):
        bus = EventBus()
        sub = bus.subscribe_queue(maxsize=1)
        bus.emit("a")
        bus.emit("b")
        assert sub.dropped == 1
        bus.reset()
        assert bus.stats()["queue_dropped"] == 1

    def test_server_surfaces_span_cap_drops(self, monkeypatch):
        monkeypatch.setattr(qtrace, "MAX_SPANS", 2)
        db = _drift_db()
        session = RavenSession(db)
        server = RavenServer(session, workers=1, trace_requests=True)
        try:
            server.prepare("q", "SELECT id FROM t WHERE v < ?")
            server.query("q", params=(5.0,), timeout=30)
            snapshot = server.stats()
            assert snapshot["traces"]["spans_dropped"] > 0
            assert snapshot["traces"]["retained"] == 1
            assert snapshot["traces"]["span_cap"] == 2
            assert server.last_trace()["spans_dropped"] > 0
        finally:
            server.shutdown()
            db.close()

    def test_bus_drops_on_stats_surface(self):
        db = _drift_db()
        session = RavenSession(db)
        server = RavenServer(session, workers=1)
        sub = events.BUS.subscribe_queue(maxsize=1)
        try:
            server.prepare("q", "SELECT id FROM t WHERE v < ?")
            for _ in range(3):
                server.query("q", params=(5.0,), timeout=30)
            snapshot = server.stats()
            assert snapshot["events"]["queue_dropped"] == sub.dropped
            assert sub.dropped > 0
        finally:
            sub.close()
            server.shutdown()
            db.close()


# -- satellite: lifecycle ----------------------------------------------------


class TestObservatoryLifecycle:
    @pytest.fixture()
    def served(self):
        db = _drift_db()
        session = RavenSession(db)
        server = RavenServer(session, workers=1)
        yield db, server
        server.shutdown()
        db.close()

    def test_enable_metrics_idempotent(self, served):
        _db, server = served
        first = server.enable_metrics()
        subscribers = events.BUS.stats()["callback_subscribers"]
        second = server.enable_metrics()
        assert first is second
        assert events.BUS.stats()["callback_subscribers"] == subscribers

    def test_enable_watchdog_and_profiler_idempotent(self, served):
        _db, server = served
        assert server.enable_watchdog() is server.enable_watchdog()
        assert server.enable_profiler() is server.enable_profiler()
        subscribers = events.BUS.stats()["callback_subscribers"]
        server.enable_watchdog()
        server.enable_profiler()
        assert events.BUS.stats()["callback_subscribers"] == subscribers

    def test_shutdown_unsubscribes_observers(self):
        db = _drift_db()
        server = RavenServer(RavenSession(db), workers=1)
        server.enable_metrics()
        server.enable_watchdog()
        server.enable_profiler()
        assert events.BUS.stats()["callback_subscribers"] == 3
        server.shutdown()
        assert events.BUS.stats()["callback_subscribers"] == 0
        db.close()

    def test_database_close_unsubscribes_observers(self):
        db = _drift_db()
        server = RavenServer(RavenSession(db), workers=1)
        server.enable_metrics()
        server.enable_watchdog()
        server.enable_profiler()
        assert events.BUS.stats()["callback_subscribers"] == 3
        db.close()  # never called server.shutdown()
        assert events.BUS.stats()["callback_subscribers"] == 0
        server.shutdown()  # still clean afterwards
        assert events.BUS.stats()["callback_subscribers"] == 0

    def test_profiler_enables_tracing_and_feeds_stats(self, served):
        _db, server = served
        assert server.trace_requests is False
        server.enable_profiler()
        assert server.trace_requests is True
        server.prepare("q", "SELECT id FROM t WHERE v < ?")
        for _ in range(2):
            server.query("q", params=(5.0,), timeout=30)
        snapshot = server.stats()
        assert snapshot["profiler"]["queries"]["q"]["count"] == 2
        assert "operators" in snapshot["profiler"]["queries"]["q"]
        full = server.profiler_report()
        assert full["queries"]["q"]["exemplars"]

    def test_plan_cache_invalidation_reasons_exported(self, served):
        db, server = served
        server.prepare("q", "SELECT id FROM t WHERE v < ?")
        server.query("q", params=(5.0,), timeout=30)
        db.execute("ANALYZE t")  # stales the prepared plan
        server.query("q", params=(5.0,), timeout=30)
        stats = server.stats()["plan_cache"]
        assert stats["invalidations_by_reason"].get("stale", 0) >= 1
