"""Property-based tests (hypothesis) on core data structures & invariants.

Each property pins a semantic equivalence the optimizer depends on:
pruning/pushdown/inlining/NN-translation must be *exact* rewrites on the
domains where they apply, and the relational kernels must agree with their
NumPy reference semantics for arbitrary data.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    apply_predicate_pruning,
    apply_projection_pushdown,
    pipeline_to_expression,
    prune_tree,
)
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from repro.relational.expressions import BinaryOp, col, conjoin, lit
from repro.relational.sql.parser import parse_expression
from repro.relational.table import Table
from repro.tensor import InferenceSession, convert

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def matrix(draw, rows=st.integers(30, 120), cols=st.integers(2, 4)):
    n = draw(rows)
    d = draw(cols)
    return draw(
        arrays(np.float64, (n, d), elements=finite_floats)
    )


@st.composite
def classification_problem(draw):
    X = matrix(draw)
    weights = draw(
        arrays(
            np.float64,
            (X.shape[1],),
            elements=st.floats(-3.0, 3.0, allow_nan=False),
        )
    )
    y = (X @ weights > np.median(X @ weights)).astype(np.float64)
    if len(np.unique(y)) < 2:
        y[0] = 1.0 - y[0]
    return X, y


@settings(max_examples=25, deadline=None)
@given(classification_problem(), st.floats(-50.0, 50.0, allow_nan=False))
def test_tree_pruning_exact_on_restricted_domain(problem, threshold):
    """prune(tree, x0 <= t) scores identically to tree on {x : x0 <= t}."""
    X, y = problem
    tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
    facts = ColumnFacts(bounds={0: (-math.inf, threshold)})
    pruned = prune_tree(tree.tree_, facts)
    mask = X[:, 0] <= threshold
    if mask.any():
        assert np.allclose(
            tree.tree_.leaf_values(X[mask]), pruned.leaf_values(X[mask])
        )
    assert pruned.node_count <= tree.tree_.node_count


@settings(max_examples=20, deadline=None)
@given(classification_problem())
def test_projection_pushdown_is_exact(problem):
    """Dropping zero-weight features never changes predictions."""
    X, y = problem
    pipe = Pipeline(
        [("clf", LogisticRegression(penalty="l1", C=0.05, max_iter=200))]
    ).fit(X, y)
    result = apply_projection_pushdown(pipe)
    reduced = result.pipeline.predict(X[:, result.kept_inputs])
    assert np.array_equal(pipe.predict(X), reduced)


@settings(max_examples=20, deadline=None)
@given(classification_problem(), st.floats(-20.0, 20.0, allow_nan=False))
def test_predicate_pruning_exact_on_matching_rows(problem, pivot):
    """Pruning under x0 >= pivot is exact for rows satisfying it."""
    X, y = problem
    pipe = Pipeline(
        [
            ("sc", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(X, y)
    result = apply_predicate_pruning(
        pipe, ColumnFacts(bounds={0: (pivot, math.inf)})
    )
    mask = X[:, 0] >= pivot
    if mask.any():
        assert np.array_equal(
            pipe.predict(X[mask]),
            result.pipeline.predict(X[mask][:, result.kept_inputs]),
        )


@settings(max_examples=15, deadline=None)
@given(classification_problem())
def test_inlined_expression_matches_pipeline(problem):
    """tree -> CASE WHEN SQL is an exact rewrite."""
    X, y = problem
    pipe = Pipeline(
        [
            ("sc", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(X, y)
    names = [f"f{i}" for i in range(X.shape[1])]
    expression = pipeline_to_expression(pipe, names)
    table = Table.from_dict({name: X[:, i] for i, name in enumerate(names)})
    assert np.array_equal(
        expression.evaluate(table).astype(np.float64), pipe.predict(X)
    )


@settings(max_examples=15, deadline=None)
@given(classification_problem())
def test_nn_translation_matches_pipeline(problem):
    """tree -> tensor graph (GEMM encoding) is an exact rewrite."""
    X, y = problem
    model = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
    out = InferenceSession(convert(model)).run({"X": X})[0]
    assert np.array_equal(out.ravel(), model.predict(X))


@settings(max_examples=15, deadline=None)
@given(classification_problem())
def test_regressor_nn_translation(problem):
    X, _ = problem
    y = X[:, 0] * 2.0 + (X[:, 1] if X.shape[1] > 1 else 0.0)
    model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
    out = InferenceSession(convert(model)).run({"X": X})[0]
    assert np.allclose(out.ravel(), model.predict(X))


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 60), elements=finite_floats),
    st.floats(-100.0, 100.0, allow_nan=False),
    st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
)
def test_filter_agrees_with_numpy(values, threshold, op):
    """Table.filter(pred) == boolean-mask semantics for every operator."""
    table = Table.from_dict({"x": values})
    predicate = BinaryOp(op, col("x"), lit(threshold))
    filtered = table.filter(predicate.evaluate(table))
    reference = {
        "<": values < threshold,
        "<=": values <= threshold,
        ">": values > threshold,
        ">=": values >= threshold,
        "=": values == threshold,
        "<>": values != threshold,
    }[op]
    assert np.array_equal(filtered["x"], values[reference])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("abc"), st.floats(-10, 10, allow_nan=False)),
        min_size=1,
        max_size=50,
    )
)
def test_group_by_sums_match_reference(pairs):
    """SQL GROUP BY SUM == a dict-based reference aggregation."""
    from repro import Database

    keys = np.array([k for k, _ in pairs])
    values = np.array([v for _, v in pairs])
    db = Database()
    db.register_table("t", Table.from_dict({"k": keys, "v": values}))
    out = db.execute("SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k")
    reference: dict[str, float] = {}
    for k, v in pairs:
        reference[k] = reference.get(k, 0.0) + v
    assert out["k"].tolist() == sorted(reference)
    assert np.allclose(out["s"], [reference[k] for k in sorted(reference)])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40),
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40),
)
def test_hash_join_matches_nested_loop(left_keys, right_keys):
    """Hash equi-join output == the quadratic reference join."""
    from repro import Database

    db = Database()
    db.register_table(
        "l",
        Table.from_dict(
            {"k": np.array(left_keys), "li": np.arange(len(left_keys))}
        ),
    )
    db.register_table(
        "r",
        Table.from_dict(
            {"k": np.array(right_keys), "ri": np.arange(len(right_keys))}
        ),
    )
    out = db.execute(
        "SELECT l.li, r.ri FROM l AS l JOIN r AS r ON l.k = r.k"
    )
    got = sorted(zip(out["li"].tolist(), out["ri"].tolist()))
    expected = sorted(
        (i, j)
        for i, lk in enumerate(left_keys)
        for j, rk in enumerate(right_keys)
        if lk == rk
    )
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=30),
    st.booleans(),
)
def test_order_by_is_sorted(values, ascending):
    from repro import Database

    db = Database()
    db.register_table("t", Table.from_dict({"x": np.array(values)}))
    direction = "ASC" if ascending else "DESC"
    out = db.execute(f"SELECT x FROM t ORDER BY x {direction}")
    expected = np.sort(np.array(values))
    if not ascending:
        expected = expected[::-1]
    assert np.array_equal(out["x"], expected)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=20))
def test_expression_sql_text_roundtrip(values):
    """expr -> SQL text -> parse -> evaluate is the identity."""
    table = Table.from_dict({"x": np.array(values)})
    expression = conjoin(
        [
            BinaryOp(">", col("x"), lit(float(np.mean(values)))),
            BinaryOp("<=", col("x"), lit(50.0)),
        ]
    )
    reparsed = parse_expression(expression.to_sql())
    assert np.array_equal(
        reparsed.evaluate(table), expression.evaluate(table)
    )


@settings(max_examples=20, deadline=None)
@given(classification_problem())
def test_model_bundle_roundtrip_property(problem):
    """Serialization round-trips arbitrary fitted trees exactly."""
    from repro.ml import model_format

    X, y = problem
    pipe = Pipeline(
        [("clf", DecisionTreeClassifier(max_depth=4, random_state=0))]
    ).fit(X, y)
    restored = model_format.loads(model_format.dumps(pipe))
    assert np.array_equal(restored.predict(X), pipe.predict(X))


# ---------------------------------------------------------------------------
# Distributed multi-stage joins ≡ coordinator-local execution
# ---------------------------------------------------------------------------


@st.composite
def distributed_join_case(draw):
    """Random INNER/LEFT/FULL aggregate-over-join with NULL join keys."""
    kind = draw(st.sampled_from(["INNER", "LEFT", "FULL"]))
    n = draw(st.integers(20, 60))
    m = draw(st.integers(10, 40))
    key_pool = st.one_of(
        st.integers(0, 6).map(float), st.just(float("nan"))
    )
    left_keys = draw(
        st.lists(key_pool, min_size=n, max_size=n)
    )
    right_keys = draw(
        st.lists(key_pool, min_size=m, max_size=m)
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=m, max_size=m
        )
    )
    shards = draw(st.sampled_from([(4, 3), (4, 4)]))
    return kind, left_keys, right_keys, values, shards


# NaN join keys flow into MIN partials as NaN (SQL NULL); numpy warns
# on the comparison but both paths produce identical results.
@pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning")
@settings(max_examples=15, deadline=None)
@given(distributed_join_case())
def test_distributed_join_aggregate_matches_local(case):
    """A sharded aggregate-over-join (any join kind, NaN keys included)
    is row-identical to coordinator-local execution — partial
    aggregates ride the worker round-trip, the coordinator only
    merges."""
    from repro.relational.algebra.executor import ExecutionOptions
    from repro.relational.database import Database

    kind, left_keys, right_keys, values, shards = case
    left = Table.from_dict(
        {
            "k": np.array(left_keys, dtype=np.float64),
            "tag": np.arange(len(left_keys), dtype=np.int64) % 3,
        }
    )
    right = Table.from_dict(
        {
            "rk": np.array(right_keys, dtype=np.float64),
            "score": np.array(values, dtype=np.float64),
        }
    )
    sql = (
        "SELECT tag, COUNT(*) AS cnt, SUM(score) AS total, "
        "MIN(score) AS low FROM a "
        f"{kind} JOIN b ON k = rk GROUP BY tag ORDER BY tag"
    )
    dist = Database(
        options=ExecutionOptions(max_workers=8, distributed_mode="inprocess")
    )
    dist.register_table("a", left)
    dist.register_table("b", right)
    dist.shard_table("a", "k", shards[0])
    dist.shard_table("b", "rk", shards[1])
    local = Database(options=ExecutionOptions(enable_distributed=False))
    local.register_table("a", left)
    local.register_table("b", right)
    got = dist.execute(sql)
    want = local.execute(sql)
    assert got.num_rows == want.num_rows
    for name in ("tag", "cnt", "total", "low"):
        assert np.allclose(
            np.asarray(got.column(name), dtype=float),
            np.asarray(want.column(name), dtype=float),
            equal_nan=True,
        ), name


@settings(max_examples=5, deadline=None)
@given(
    st.sampled_from(["INNER", "LEFT", "FULL"]),
    st.integers(0, 6),
)
def test_prepared_join_reroutes_after_reshard(kind, probe):
    """A prepared `?` query over a distributed join keeps returning the
    same rows after shard_table/unshard_table on either side."""
    from repro.core.raven import RavenSession
    from repro.relational.algebra.executor import ExecutionOptions
    from repro.relational.database import Database
    from repro.serving.prepared import PreparedQuery

    rng = np.random.default_rng(7)
    left = Table.from_dict(
        {
            "k": rng.integers(0, 7, 48).astype(np.int64),
            "tag": np.arange(48, dtype=np.int64) % 3,
        }
    )
    right = Table.from_dict(
        {
            "rk": rng.integers(0, 9, 30).astype(np.int64),
            "score": rng.normal(size=30),
        }
    )
    db = Database(
        options=ExecutionOptions(max_workers=8, distributed_mode="inprocess")
    )
    db.register_table("a", left)
    db.register_table("b", right)
    db.shard_table("a", "k", 4)
    db.shard_table("b", "rk", 3)
    session = RavenSession(
        db,
        optimizer="heuristic",
        options={"shard_workers": 8, "enable_inlining": False},
    )
    sql = (
        "SELECT tag, COUNT(*) AS cnt, SUM(score) AS total FROM a "
        f"{kind} JOIN b ON k = rk WHERE k = ? GROUP BY tag ORDER BY tag"
    )
    prepared = PreparedQuery(session, sql)
    first = prepared.execute([probe])
    db.catalog.unshard_table("b")
    after_unshard = prepared.execute([probe])
    db.shard_table("b", "rk", 5)
    after_reshard = prepared.execute([probe])
    for other in (after_unshard, after_reshard):
        assert other.num_rows == first.num_rows
        for name in ("tag", "cnt", "total"):
            assert np.allclose(
                np.asarray(first.column(name), dtype=float),
                np.asarray(other.column(name), dtype=float),
                equal_nan=True,
            ), name
