"""Unit tests for the columnar Table and the type system."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.table import Table
from repro.relational.types import DataType, Schema


class TestDataType:
    def test_from_numpy_kinds(self):
        assert DataType.from_numpy(np.dtype(np.int32)) is DataType.INT
        assert DataType.from_numpy(np.dtype(np.float32)) is DataType.FLOAT
        assert DataType.from_numpy(np.dtype(np.bool_)) is DataType.BOOL
        assert DataType.from_numpy(np.dtype("U8")) is DataType.STRING
        assert DataType.from_numpy(np.dtype(object)) is DataType.BINARY

    def test_from_sql_name(self):
        assert DataType.from_sql_name("varbinary(max)") is DataType.BINARY
        assert DataType.from_sql_name("FLOAT") is DataType.FLOAT
        assert DataType.from_sql_name("bigint") is DataType.INT
        with pytest.raises(SchemaError):
            DataType.from_sql_name("geometry")

    def test_common_promotion(self):
        assert DataType.common(DataType.INT, DataType.FLOAT) is DataType.FLOAT
        assert DataType.common(DataType.BOOL, DataType.INT) is DataType.INT
        with pytest.raises(SchemaError):
            DataType.common(DataType.STRING, DataType.INT)


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT), ("A", DataType.FLOAT))

    def test_column_resolution_order(self):
        schema = Schema.of(("pi.id", DataType.INT), ("pi.age", DataType.FLOAT))
        assert schema.column("pi.id").name == "pi.id"
        assert schema.column("age").name == "pi.age"  # suffix match
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_ambiguous_suffix_raises(self):
        schema = Schema.of(("a.id", DataType.INT), ("b.id", DataType.INT))
        with pytest.raises(SchemaError):
            schema.column("id")

    def test_select_drop_rename_prefix(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        assert schema.select(["b"]).names == ("b",)
        assert schema.drop(["a"]).names == ("b",)
        assert schema.rename({"a": "x"}).names == ("x", "b")
        assert schema.prefixed("t").names == ("t.a", "t.b")


class TestTable:
    def make(self):
        return Table.from_dict(
            {
                "id": np.array([1, 2, 3], dtype=np.int64),
                "value": np.array([1.5, 2.5, 3.5]),
            }
        )

    def test_from_rows_roundtrip(self):
        schema = Schema.of(("x", DataType.INT), ("y", DataType.STRING))
        table = Table.from_rows(schema, [(1, "a"), (2, "b")])
        assert list(table.rows()) == [(1, "a"), (2, "b")]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_dict({"a": np.arange(3), "b": np.arange(4)})

    def test_filter_take_slice(self):
        table = self.make()
        assert table.filter(np.array([True, False, True])).num_rows == 2
        assert table.take(np.array([2, 0]))["id"].tolist() == [3, 1]
        assert table.slice(1, 3).num_rows == 2

    def test_with_column_replace_and_add(self):
        table = self.make()
        widened = table.with_column("flag", np.array([True, False, True]))
        assert widened.schema.dtype_of("flag") is DataType.BOOL
        replaced = widened.with_column("value", np.array([9.0, 9.0, 9.0]))
        assert replaced["value"].tolist() == [9.0, 9.0, 9.0]
        assert replaced.num_columns == 3

    def test_concat_rows_schema_mismatch(self):
        table = self.make()
        other = Table.from_dict({"id": np.array([4], dtype=np.int64)})
        with pytest.raises(SchemaError):
            Table.concat_rows([table, other])

    def test_concat_rows_and_columns(self):
        table = self.make()
        doubled = Table.concat_rows([table, table])
        assert doubled.num_rows == 6
        wide = table.concat_columns(
            Table.from_dict({"extra": np.array([0.0, 1.0, 2.0])})
        )
        assert wide.schema.names == ("id", "value", "extra")

    def test_to_matrix_rejects_strings(self):
        table = Table.from_dict({"s": np.array(["a", "b"])})
        with pytest.raises(SchemaError):
            table.to_matrix()

    def test_to_matrix_order_and_shape(self):
        table = self.make()
        matrix = table.to_matrix(["value", "id"])
        assert matrix.shape == (3, 2)
        assert matrix[0].tolist() == [1.5, 1.0]

    def test_prefixed_resolution(self):
        table = self.make().prefixed("t")
        assert table.column("t.id").tolist() == [1, 2, 3]
        assert table.column("id").tolist() == [1, 2, 3]  # suffix fallback

    def test_empty_table(self):
        schema = Schema.of(("a", DataType.FLOAT))
        table = Table.empty(schema)
        assert table.num_rows == 0
        assert table.filter(np.array([], dtype=bool)).num_rows == 0

    def test_equals(self):
        table = self.make()
        assert table.equals(self.make())
        assert not table.equals(table.filter(np.array([True, True, False])))

    def test_pretty_contains_header_and_rows(self):
        rendering = self.make().pretty()
        assert "id" in rendering and "value" in rendering
        assert "1.5" in rendering
