"""Tests for database persistence (save/load round-trips)."""

import json

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.data import hospital
from repro.errors import CatalogError
from repro.ml import DecisionTreeRegressor, Pipeline
from repro.relational.storage import (
    MANIFEST_VERSION,
    load_database,
    save_database,
)
from repro.tensor import convert


class TestRoundtrip:
    def test_tables_and_models_roundtrip(self, tmp_path, hospital_small):
        database, dataset, pipeline = hospital_small
        saved = save_database(database, tmp_path / "db")
        restored = load_database(saved)
        # Tables identical.
        for name in database.catalog.table_names():
            assert restored.table(name).equals(database.table(name))
        # The stored model still answers the Fig. 1 query identically.
        original = RavenSession(database).execute(hospital.INFERENCE_QUERY)
        reloaded = RavenSession(restored).execute(hospital.INFERENCE_QUERY)
        assert sorted(original.table.column("id").tolist()) == sorted(
            reloaded.table.column("id").tolist()
        )

    def test_model_versions_preserved(self, tmp_path):
        db = Database()
        X = np.arange(20.0).reshape(-1, 2)
        for depth in (1, 2, 3):
            pipe = Pipeline(
                [("m", DecisionTreeRegressor(max_depth=depth))]
            ).fit(X, X[:, 0])
            db.store_model(
                "m", pipe, metadata={"feature_names": ["a", "b"], "depth": depth}
            )
        restored = load_database(save_database(db, tmp_path / "db"))
        assert [e.version for e in restored.catalog.model_versions("m")] == [
            1,
            2,
            3,
        ]
        assert restored.get_model("m").metadata["depth"] == 3
        assert restored.get_model("m", version=1).metadata["depth"] == 1

    def test_tensor_graph_models_roundtrip(self, tmp_path):
        db = Database()
        X = np.random.default_rng(0).normal(size=(50, 2))
        model = DecisionTreeRegressor(max_depth=3).fit(X, X[:, 0])
        db.store_model(
            "g",
            convert(model),
            flavor="tensor.graph",
            metadata={"feature_names": ["a", "b"]},
        )
        db.register_table(
            "rows", Table.from_dict({"a": X[:, 0], "b": X[:, 1]})
        )
        restored = load_database(save_database(db, tmp_path / "db"))
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'g');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = rows AS d) "
            "WITH (y float) AS p"
        )
        assert np.allclose(
            np.asarray(restored.execute(sql)["y"]),
            np.asarray(db.execute(sql)["y"]),
        )

    def test_script_models_roundtrip(self, tmp_path):
        db = Database()
        db.store_model("s", "output = input_columns['x']", flavor="python.script")
        restored = load_database(save_database(db, tmp_path / "db"))
        assert restored.get_model("s").payload == "output = input_columns['x']"

    def test_string_columns_roundtrip(self, tmp_path):
        db = Database()
        db.register_table(
            "t",
            Table.from_dict(
                {"name": np.array(["ann", "bob"]), "x": np.array([1.0, 2.0])}
            ),
        )
        restored = load_database(save_database(db, tmp_path / "db"))
        assert restored.table("t")["name"].tolist() == ["ann", "bob"]


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CatalogError):
            load_database(tmp_path)

    def test_bad_manifest_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"manifest_version": 99})
        )
        with pytest.raises(CatalogError):
            load_database(tmp_path)

    def test_unpersistable_payload_rejected(self, tmp_path):
        db = Database()
        db.store_model("weird", object(), flavor="ml.pipeline")
        with pytest.raises(CatalogError):
            save_database(db, tmp_path / "db")


class TestStatisticsPersistence:
    def _events_db(self) -> Database:
        rng = np.random.default_rng(5)
        db = Database()
        db.register_table(
            "events",
            Table.from_dict(
                {
                    "id": np.arange(4000, dtype=np.int64),
                    "value": rng.uniform(0.0, 10.0, 4000),
                }
            ).with_partitioning(512),
        )
        return db

    def test_partitioned_table_and_stats_roundtrip(self, tmp_path):
        db = self._events_db()
        stats = db.catalog.table_statistics("events")
        saved = save_database(db, tmp_path / "db")
        manifest = json.loads((saved / "manifest.json").read_text())
        assert manifest["manifest_version"] == MANIFEST_VERSION
        spec = manifest["tables"]["events"]
        assert spec["partition_size"] == 512
        assert spec["statistics"]["row_count"] == 4000

        restored = load_database(saved)
        assert restored.table("events").partition_size == 512
        assert restored.table("events").num_partitions == 8
        restored_stats = restored.catalog.table_statistics("events")
        assert restored_stats.row_count == stats.row_count
        assert restored_stats.column("value").histogram_counts == (
            stats.column("value").histogram_counts
        )
        assert restored_stats.column("id").ndv == 4000

    def test_v2_load_reuses_persisted_stats(self, tmp_path, monkeypatch):
        saved = save_database(self._events_db(), tmp_path / "db")
        restored = load_database(saved)

        def boom(_table, bins=0):
            raise AssertionError("stats should come from the manifest")

        import repro.relational.catalog as catalog_module

        monkeypatch.setattr(catalog_module, "collect_statistics", boom)
        assert restored.catalog.table_statistics("events").row_count == 4000

    def test_v1_manifest_loads_with_lazily_rebuilt_stats(self, tmp_path):
        saved = save_database(self._events_db(), tmp_path / "db")
        manifest_path = saved / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 1
        for spec in manifest["tables"].values():
            spec.pop("statistics", None)
            spec.pop("partition_size", None)
        manifest_path.write_text(json.dumps(manifest, indent=2))

        restored = load_database(saved)
        assert restored.table("events").num_rows == 4000
        # No persisted stats: the catalog rebuilds them on first use.
        stats = restored.catalog.table_statistics("events")
        assert stats.row_count == 4000
        assert stats.column("value").ndv > 0
