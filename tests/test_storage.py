"""Tests for database persistence (save/load round-trips)."""

import json

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.data import hospital
from repro.errors import CatalogError
from repro.ml import DecisionTreeRegressor, Pipeline
from repro.relational.storage import load_database, save_database
from repro.tensor import convert


class TestRoundtrip:
    def test_tables_and_models_roundtrip(self, tmp_path, hospital_small):
        database, dataset, pipeline = hospital_small
        saved = save_database(database, tmp_path / "db")
        restored = load_database(saved)
        # Tables identical.
        for name in database.catalog.table_names():
            assert restored.table(name).equals(database.table(name))
        # The stored model still answers the Fig. 1 query identically.
        original = RavenSession(database).execute(hospital.INFERENCE_QUERY)
        reloaded = RavenSession(restored).execute(hospital.INFERENCE_QUERY)
        assert sorted(original.table.column("id").tolist()) == sorted(
            reloaded.table.column("id").tolist()
        )

    def test_model_versions_preserved(self, tmp_path):
        db = Database()
        X = np.arange(20.0).reshape(-1, 2)
        for depth in (1, 2, 3):
            pipe = Pipeline(
                [("m", DecisionTreeRegressor(max_depth=depth))]
            ).fit(X, X[:, 0])
            db.store_model(
                "m", pipe, metadata={"feature_names": ["a", "b"], "depth": depth}
            )
        restored = load_database(save_database(db, tmp_path / "db"))
        assert [e.version for e in restored.catalog.model_versions("m")] == [
            1,
            2,
            3,
        ]
        assert restored.get_model("m").metadata["depth"] == 3
        assert restored.get_model("m", version=1).metadata["depth"] == 1

    def test_tensor_graph_models_roundtrip(self, tmp_path):
        db = Database()
        X = np.random.default_rng(0).normal(size=(50, 2))
        model = DecisionTreeRegressor(max_depth=3).fit(X, X[:, 0])
        db.store_model(
            "g",
            convert(model),
            flavor="tensor.graph",
            metadata={"feature_names": ["a", "b"]},
        )
        db.register_table(
            "rows", Table.from_dict({"a": X[:, 0], "b": X[:, 1]})
        )
        restored = load_database(save_database(db, tmp_path / "db"))
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'g');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = rows AS d) "
            "WITH (y float) AS p"
        )
        assert np.allclose(
            np.asarray(restored.execute(sql)["y"]),
            np.asarray(db.execute(sql)["y"]),
        )

    def test_script_models_roundtrip(self, tmp_path):
        db = Database()
        db.store_model("s", "output = input_columns['x']", flavor="python.script")
        restored = load_database(save_database(db, tmp_path / "db"))
        assert restored.get_model("s").payload == "output = input_columns['x']"

    def test_string_columns_roundtrip(self, tmp_path):
        db = Database()
        db.register_table(
            "t",
            Table.from_dict(
                {"name": np.array(["ann", "bob"]), "x": np.array([1.0, 2.0])}
            ),
        )
        restored = load_database(save_database(db, tmp_path / "db"))
        assert restored.table("t")["name"].tolist() == ["ann", "bob"]


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CatalogError):
            load_database(tmp_path)

    def test_bad_manifest_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"manifest_version": 99})
        )
        with pytest.raises(CatalogError):
            load_database(tmp_path)

    def test_unpersistable_payload_rejected(self, tmp_path):
        db = Database()
        db.store_model("weird", object(), flavor="ml.pipeline")
        with pytest.raises(CatalogError):
            save_database(db, tmp_path / "db")
