"""Tests for the IR-level cross-optimizer rules and engines."""

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.core.analysis import SQLAnalyzer
from repro.core.optimizer import (
    CostBasedOptimizer,
    HeuristicOptimizer,
    RuleContext,
    default_rules,
)
from repro.core.optimizer.cost import plan_cost
from repro.core.optimizer.rules import (
    JoinElimination,
    ModelInlining,
    ModelProjectionPushdown,
    ModelQuerySplitting,
    NNTranslation,
    PredicateBasedModelPruning,
    PushFilterBelowPredict,
    compile_clustered_pipeline,
)
from repro.data import flights, hospital


def analyze(db, sql):
    return SQLAnalyzer(db).analyze(sql)


@pytest.fixture()
def hospital_env():
    return hospital.setup_database(3000, seed=5, max_depth=6)


class TestFilterPushdown:
    def test_input_conjunct_moves_below_predict(self, hospital_env):
        db, _, _ = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        context = RuleContext(database=db)
        assert PushFilterBelowPredict().apply(graph, context)
        predict = graph.find("mld.pipeline")[0]
        below = graph.node(predict.inputs[0])
        assert below.op == "ra.filter"
        assert "pregnant" in repr(below.attrs["predicate"])
        # The prediction-output conjunct stays above.
        above = graph.parents_of(predict)[0]
        assert "length_of_stay" in repr(above.attrs["predicate"])

    def test_idempotent(self, hospital_env):
        db, _, _ = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        context = RuleContext(database=db)
        PushFilterBelowPredict().apply(graph, context)
        assert not PushFilterBelowPredict().apply(graph, context)


class TestPredicatePruning:
    def test_tree_shrinks_and_inputs_narrow(self, hospital_env):
        db, _, pipeline = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        context = RuleContext(database=db)
        PushFilterBelowPredict().apply(graph, context)
        assert PredicateBasedModelPruning().apply(graph, context)
        node = graph.find("mld.pipeline")[0]
        detail = node.attrs["pruning_detail"]
        assert detail["nodes_after"] < detail["nodes_before"]
        assert len(node.attrs["feature_names"]) < len(
            hospital.QUERY_FEATURE_NAMES
        )

    def test_statistics_derived_predicates(self):
        """Columns constant in the stored data act as derived predicates."""
        rng = np.random.default_rng(0)
        n = 500
        X = np.column_stack(
            [np.full(n, 1.0), rng.normal(size=n)]  # col 'flag' is constant
        )
        y = (X[:, 1] > 0).astype(float)
        from repro.ml import DecisionTreeClassifier, Pipeline

        pipe = Pipeline(
            [("clf", DecisionTreeClassifier(max_depth=4, random_state=0))]
        ).fit(
            np.column_stack([rng.integers(0, 2, n).astype(float), X[:, 1]]), y
        )
        db = Database()
        db.register_table(
            "rows", Table.from_dict({"flag": X[:, 0], "x": X[:, 1]})
        )
        db.store_model("m", pipe, metadata={"feature_names": ["flag", "x"]})
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'm');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = rows AS d) "
            "WITH (y float) AS p"
        )
        graph = analyze(db, sql)
        context = RuleContext(
            database=db, options={"derive_statistics_predicates": True}
        )
        fired = PredicateBasedModelPruning().apply(graph, context)
        assert fired
        node = graph.find("mld.pipeline")[0]
        assert node.attrs["feature_names"] == ["x"]


class TestProjectionPushdownRule:
    def test_sparse_model_narrows_and_projects(self, flights_small):
        db, _, _ = flights_small
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'flight_delay');"
            "SELECT d.flight_id, p.delayed_pred FROM "
            "PREDICT(MODEL = @m, DATA = flights AS d) "
            "WITH (delayed_pred float) AS p"
        )
        graph = analyze(db, sql)
        context = RuleContext(database=db)
        assert ModelProjectionPushdown().apply(graph, context)
        node = graph.find("mld.pipeline")[0]
        detail = node.attrs["projection_detail"]
        # L1 zeroed some one-hot category weights: the model got narrower.
        assert detail["features_dropped"] > 0
        assert len(node.attrs["feature_names"]) <= len(flights.FEATURE_NAMES)
        if len(node.attrs["feature_names"]) < len(flights.FEATURE_NAMES):
            # Whole input columns died too: data projection inserted.
            assert graph.node(node.inputs[0]).op == "ra.project"

    def test_narrowed_model_is_exact(self, flights_small):
        db, dataset, pipeline = flights_small
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'flight_delay');"
            "SELECT d.flight_id, p.delayed_pred FROM "
            "PREDICT(MODEL = @m, DATA = flights AS d) "
            "WITH (delayed_pred float) AS p"
        )
        session = RavenSession(db, options={"enable_inlining": False})
        optimized = session.execute(sql)
        baseline = session.execute(sql, optimize=False)
        assert np.allclose(
            np.sort(optimized.table.column("delayed_pred")),
            np.sort(baseline.table.column("delayed_pred")),
        )


class TestProjectionPruningSafety:
    def test_select_list_survives_order_by_and_limit(self, hospital_env):
        """Regression: the result projection must keep every requested
        column even when ORDER BY/LIMIT sit above it in the plan."""
        db, _, _ = hospital_env
        query = hospital.INFERENCE_QUERY.replace(
            "SELECT d.id, p.length_of_stay",
            "SELECT d.id, d.age, p.length_of_stay",
        ) + " ORDER BY d.id LIMIT 5"
        result = RavenSession(db).execute(query)
        assert result.table.schema.names == ("id", "age", "length_of_stay")
        assert result.table.num_rows == 5


class TestJoinEliminationRule:
    def test_fig1_join_dropped_after_pruning(self, hospital_env):
        db, _, _ = hospital_env
        session = RavenSession(db)
        result = session.execute(hospital.INFERENCE_QUERY)
        assert any("JoinElimination" in r for r in result.report.applied)
        remaining_scans = {
            n.attrs["table"] for n in result.plan.find("ra.scan")
        }
        assert "prenatal_tests" not in remaining_scans

    def test_not_dropped_when_columns_needed(self, hospital_env):
        db, _, _ = hospital_env
        query = hospital.INFERENCE_QUERY.replace(
            "SELECT d.id, p.length_of_stay",
            "SELECT d.id, d.heart_rate, p.length_of_stay",
        )
        session = RavenSession(db)
        result = session.execute(query)
        remaining_scans = {
            n.attrs["table"] for n in result.plan.find("ra.scan")
        }
        assert "prenatal_tests" in remaining_scans

    def test_not_dropped_without_fk_containment(self):
        db = Database()
        db.register_table(
            "a", Table.from_dict({"id": np.arange(10), "x": np.arange(10.0)})
        )
        # b is missing half the keys: the join filters rows.
        db.register_table(
            "b", Table.from_dict({"id": np.arange(5), "y": np.arange(5.0)})
        )
        from repro.ml import DecisionTreeRegressor, Pipeline

        X = np.arange(10.0).reshape(-1, 1)
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=2))]).fit(X, X[:, 0])
        db.store_model("m", pipe, metadata={"feature_names": ["x"]})
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'm');"
            "SELECT p.z FROM PREDICT(MODEL = @m, "
            "DATA = (SELECT a.id AS id, a.x AS x, b.y AS y FROM a AS a "
            "JOIN b AS b ON a.id = b.id) AS d) WITH (z float) AS p"
        )
        session = RavenSession(db)
        result = session.execute(sql)
        assert result.table.num_rows == 5  # join semantics preserved
        tables = {n.attrs["table"] for n in result.plan.find("ra.scan")}
        assert "b" in tables


class TestSplitting:
    def test_union_of_pruned_branches(self, hospital_env):
        db, dataset, _ = hospital_env
        session_split = RavenSession(
            db, options={"enable_splitting": True, "enable_inlining": False}
        )
        result = session_split.execute(hospital.INFERENCE_QUERY)
        assert any("ModelQuerySplitting" in r for r in result.report.applied)
        assert result.plan.find("ra.union_all")
        # Same rows as the unsplit plan.
        plain = RavenSession(db).execute(hospital.INFERENCE_QUERY)
        assert sorted(result.table.column("id").tolist()) == sorted(
            plain.table.column("id").tolist()
        )


class TestInliningRule:
    def test_small_tree_inlined(self, hospital_env):
        db, _, _ = hospital_env
        session = RavenSession(db)
        result = session.execute(hospital.INFERENCE_QUERY)
        assert any("ModelInlining" in r for r in result.report.applied)
        assert not result.plan.find("mld.pipeline")

    def test_big_tree_not_inlined(self, hospital_env):
        db, _, _ = hospital_env
        session = RavenSession(db, options={"max_inline_nodes": 2})
        result = session.execute(hospital.INFERENCE_QUERY)
        assert not any("ModelInlining" in r for r in result.report.applied)
        assert result.plan.find("mld.pipeline")


class TestNNTranslationRule:
    def test_pipeline_becomes_tensor_graph(self, hospital_env):
        db, dataset, pipeline = hospital_env
        session = RavenSession(
            db,
            options={"enable_inlining": False, "enable_nn_translation": True},
        )
        result = session.execute(hospital.INFERENCE_QUERY)
        assert any("NNTranslation" in r for r in result.report.applied)
        assert result.plan.find("la.tensor_graph")
        # And results still match the in-process plan.
        plain = RavenSession(
            db, options={"enable_inlining": False}
        ).execute(hospital.INFERENCE_QUERY)
        assert sorted(result.table.column("id").tolist()) == sorted(
            plain.table.column("id").tolist()
        )


class TestClusteredModel:
    def test_per_cluster_models_are_narrower(self, flights_small):
        _db, dataset, pipeline = flights_small
        clustered = compile_clustered_pipeline(
            pipeline,
            dataset.features[:1500],
            n_clusters=8,
            cluster_columns=[0, 1, 2],
            random_state=0,
        )
        full_width = len(pipeline.final_estimator.coef_)
        assert clustered.average_model_width() < full_width
        assert clustered.compile_seconds > 0

    def test_predictions_match_original(self, flights_small):
        _db, dataset, pipeline = flights_small
        clustered = compile_clustered_pipeline(
            pipeline,
            dataset.features[:2000],
            n_clusters=4,
            cluster_columns=[2],  # destination airport
            random_state=0,
        )
        reference = pipeline.predict(dataset.features)
        routed = clustered.predict(dataset.features)
        assert np.array_equal(reference, routed)


class TestEnginesAndCost:
    def test_cost_based_reduces_cost(self, hospital_env):
        db, _, _ = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        optimized, report = CostBasedOptimizer().optimize(
            graph, RuleContext(database=db)
        )
        assert report.cost_after < report.cost_before

    def test_cost_based_picks_a_strategy(self, hospital_env):
        db, _, _ = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        optimized, report = CostBasedOptimizer().optimize(
            graph, RuleContext(database=db)
        )
        assert report.alternatives_considered == 4
        assert report.strategy in (
            "in-process",
            "inline",
            "nn-translate",
            "split+inline",
        )

    def test_engine_assignment(self, hospital_env):
        db, _, _ = hospital_env
        session = RavenSession(db, options={"enable_inlining": False})
        result = session.execute(hospital.INFERENCE_QUERY)
        engines = {n.engine for n in result.plan.nodes()}
        assert "relational" in engines
        assert "python" in engines  # the in-process pipeline node

    def test_plan_cost_monotone_in_rows(self):
        small_db, _, _ = hospital.setup_database(500, seed=1, max_depth=4)
        big_db, _, _ = hospital.setup_database(5000, seed=1, max_depth=4)
        small_graph = analyze(small_db, hospital.INFERENCE_QUERY)
        big_graph = analyze(big_db, hospital.INFERENCE_QUERY)
        assert plan_cost(
            big_graph, RuleContext(database=big_db)
        ) > plan_cost(small_graph, RuleContext(database=small_db))

    def test_rule_order_ablation(self, hospital_env):
        """Pruning before inlining beats inlining alone (smaller CASE)."""
        db, _, _ = hospital_env
        graph = analyze(db, hospital.INFERENCE_QUERY)
        full = HeuristicOptimizer(default_rules())
        no_pruning_rules = [
            r
            for r in default_rules()
            if type(r).__name__ != "PredicateBasedModelPruning"
        ]
        partial = HeuristicOptimizer(no_pruning_rules)
        _, full_report = full.optimize(graph, RuleContext(database=db))
        _, partial_report = partial.optimize(graph, RuleContext(database=db))
        assert full_report.cost_after <= partial_report.cost_after
