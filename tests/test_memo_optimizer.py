"""Tests for the unified Cascades memo optimizer and DP join search."""

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.core.analysis import SQLAnalyzer
from repro.core.optimizer.memo import Memo
from repro.core.optimizer.search import (
    SearchContext,
    ir_to_logical,
    logical_to_ir,
)
from repro.relational.algebra import logical
from repro.relational.algebra.binder import BindContext
from repro.relational.sql.parser import parse


def _bind(db, sql):
    script = parse(sql)
    (statement,) = script.statements
    return db._binder.bind_select(statement, BindContext())


def _naive_rows(db, sql):
    """Execute the binder's plan directly, bypassing the optimizer."""
    return db._executor.execute(db.bind(sql))


def _row_multiset(table):
    return sorted(tuple(row) for row in table.rows())


# ---------------------------------------------------------------------------
# Memo bookkeeping
# ---------------------------------------------------------------------------


class TestMemoBookkeeping:
    def _scan(self, name):
        from repro.relational.types import DataType, Schema

        return logical.Scan(name, Schema.of(("x", DataType.FLOAT)))

    def test_identical_subtrees_share_groups(self):
        memo = Memo()
        from repro.relational.sql.parser import parse_expression

        predicate = parse_expression("x > 1.0")
        a = logical.Filter(self._scan("t"), predicate)
        b = logical.Filter(self._scan("t"), predicate)
        gid_a = memo.register(a)
        gid_b = memo.register(b)
        assert gid_a == gid_b
        assert memo.stats.dedup_hits >= 1
        assert memo.stats.groups_created == 2  # scan group + filter group

    def test_alternatives_join_the_same_group(self):
        memo = Memo()
        from repro.relational.sql.parser import parse_expression

        plan = logical.Filter(self._scan("t"), parse_expression("x > 1.0"))
        gid = memo.register(plan)
        alternative = logical.Filter(
            self._scan("t"), parse_expression("x > 2.0")
        )
        assert memo.add_expression(gid, alternative)
        assert len(memo.group(gid).expressions) == 2
        # Re-adding the same alternative deduplicates.
        assert not memo.add_expression(gid, alternative)


# ---------------------------------------------------------------------------
# DP join search
# ---------------------------------------------------------------------------


def _star_db(num_dims=7, fact_rows=4000, dim_rows=20, seed=0):
    """A star schema: one fact table, ``num_dims`` dimensions."""
    rng = np.random.default_rng(seed)
    db = Database()
    fact = {"fid": np.arange(fact_rows, dtype=np.int64)}
    for d in range(num_dims):
        fact[f"fk{d}"] = rng.integers(0, dim_rows, fact_rows)
    db.register_table("fact", Table.from_dict(fact))
    for d in range(num_dims):
        db.register_table(
            f"dim{d}",
            Table.from_dict(
                {
                    f"k{d}": np.arange(dim_rows, dtype=np.int64),
                    f"attr{d}": np.arange(dim_rows, dtype=np.int64),
                }
            ),
        )
    for name in ["fact"] + [f"dim{d}" for d in range(num_dims)]:
        db.catalog.table_statistics(name)
    return db


def _star_sql(num_dims=7, where=""):
    joins = " ".join(
        f"JOIN dim{d} AS d{d} ON f.fk{d} = d{d}.k{d}"
        for d in range(num_dims)
    )
    return f"SELECT f.fid FROM fact AS f {joins} {where}"


class TestDPJoinSearch:
    def test_eight_way_star_matches_naive(self):
        db = _star_db()
        sql = _star_sql(7, "WHERE d0.attr0 < 3 AND d3.attr3 < 5")
        optimized = db.execute(sql)
        naive = _naive_rows(db, sql)
        assert _row_multiset(optimized) == _row_multiset(naive)
        stats = db._planner.last_report.stats
        assert stats.dp_relations == 8
        assert stats.dp_subsets > 0
        assert "DPJoinOrder" in stats.fired_rule_names()

    def test_eight_way_explain_reports_dp_stats(self):
        db = _star_db()
        lines = db.execute("EXPLAIN " + _star_sql(7))["plan"].tolist()
        text = "\n".join(lines)
        assert "memo: groups=" in text
        assert "memo: dp relations=8" in text
        assert "dpjoin_order" in text

    def test_bushy_plan_for_disconnected_pairs(self):
        """Two independently-joined pairs: DP must join each pair first
        (bushy), not force a left-deep chain through a cross join."""
        rng = np.random.default_rng(1)
        db = Database()
        db.register_table(
            "a",
            Table.from_dict(
                {"ka": rng.integers(0, 50, 400), "va": np.arange(400.0)}
            ),
        )
        db.register_table(
            "b", Table.from_dict({"kb": np.arange(2, dtype=np.int64)})
        )
        db.register_table(
            "c",
            Table.from_dict(
                {"kc": rng.integers(0, 50, 400), "vc": np.arange(400.0)}
            ),
        )
        db.register_table(
            "d", Table.from_dict({"kd": np.arange(2, dtype=np.int64)})
        )
        for name in "abcd":
            db.catalog.table_statistics(name)
        # Build the chain through the planner directly so the tree
        # shape is inspectable.
        plan = _bind(
            db,
            "SELECT a.va FROM a JOIN b ON a.ka = b.kb "
            "CROSS JOIN c JOIN d AS d ON c.kc = d.kd",
        )
        optimized = db._planner.optimize(plan)
        joins = [
            op for op in optimized.walk() if isinstance(op, logical.Join)
        ]
        top = joins[0]
        assert isinstance(top.left, logical.Join)
        assert isinstance(top.right, logical.Join)
        # And the reordered plan is still correct.
        assert _row_multiset(db._executor.execute(optimized)) == (
            _row_multiset(db._executor.execute(plan))
        )

    def test_greedy_fallback_above_size_guard(self):
        db = _star_db(num_dims=11, fact_rows=500, dim_rows=5)
        sql = _star_sql(11)
        optimized = db.execute(sql)
        stats = db._planner.last_report.stats
        assert stats.dp_fallbacks >= 1
        assert "GreedyJoinOrder" in stats.fired_rule_names()
        naive = _naive_rows(db, sql)
        assert _row_multiset(optimized) == _row_multiset(naive)

    def test_legacy_mode_never_runs_dp(self):
        """``legacy`` reproduces PR 2: greedy only, and only for
        sub-chains within the 6-relation cap — the full 8-way chain is
        left in FROM order (no DP, no fallback accounting)."""
        db = _star_db()
        db._planner.join_search = "legacy"
        result = db.execute(_star_sql(7))
        stats = db._planner.last_report.stats
        assert "DPJoinOrder" not in stats.fired_rule_names()
        assert stats.dp_subsets == 0
        assert stats.dp_fallbacks == 0
        naive = _naive_rows(db, _star_sql(7))
        assert _row_multiset(result) == _row_multiset(naive)

    def test_dp_beats_or_matches_from_order_estimate(self):
        """The DP plan's estimated cost never exceeds FROM order's."""
        db = _star_db()
        plan = _bind(db, _star_sql(7, "WHERE d0.attr0 < 2"))
        context = SearchContext(catalog=db.catalog)
        context.prepare(plan)
        naive_cost = context.cost_tree(plan)
        optimized = db._planner.optimize(plan)
        context_opt = SearchContext(catalog=db.catalog)
        context_opt.prepare(optimized)
        assert context_opt.cost_tree(optimized) <= naive_cost


# ---------------------------------------------------------------------------
# Relational + ML rules through one engine (acceptance)
# ---------------------------------------------------------------------------


def _scored_db(n=3000, seed=3):
    from repro.ml import DecisionTreeRegressor, Pipeline

    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 10.0, n)
    flag = rng.integers(0, 2, n).astype(np.float64)
    y = np.where(flag > 0.5, x * 2.0, -x)
    pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=5))]).fit(
        np.column_stack([flag, x]), y
    )
    db = Database()
    db.register_table(
        "rows",
        Table.from_dict(
            {"rid": np.arange(n, dtype=np.int64), "flag": flag, "x": x}
        ),
    )
    db.store_model("m", pipe, metadata={"feature_names": ["flag", "x"]})
    return db


PREDICT_SQL = (
    "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
    "WHERE model_name = 'm');"
    "{verb} SELECT d.rid, p.y FROM PREDICT(MODEL = @m, DATA = rows AS d) "
    "WITH (y float) AS p WHERE d.flag = 1 AND d.x < 5.0"
)


class TestUnifiedEngineAcceptance:
    def test_ml_and_relational_rules_fire_in_sql_explain(self):
        db = _scored_db()
        lines = db.execute(PREDICT_SQL.format(verb="EXPLAIN"))[
            "plan"
        ].tolist()
        text = "\n".join(lines)
        # Relational pushdown and the ML model rewrite both fired as
        # memo rules through the same engine.
        assert "push_filter_below_predict" in text
        assert "predicate_based_model_pruning" in text
        assert "memo: groups=" in text

    def test_pruned_sql_predict_matches_unpruned(self):
        """The plan-embedded pruned pipeline scores exactly like the
        catalog model it replaced."""
        db = _scored_db()
        sql = PREDICT_SQL.format(verb="")
        optimized = db.execute(sql)
        naive = _naive_rows(db, sql)
        assert optimized.num_rows > 0
        assert _row_multiset(optimized) == _row_multiset(naive)

    def test_session_report_shares_rule_names_with_sql_planner(self):
        db = _scored_db()
        session = RavenSession(db)
        result = session.execute(PREDICT_SQL.format(verb=""))
        applied = " ".join(result.report.applied)
        assert "PredicateBasedModelPruning" in applied
        assert "PushFilterBelowPredict" in applied
        assert "ModelInlining" in applied
        assert result.report.strategy == "memo"
        assert result.report.memo["groups_created"] > 0
        # SQL path fires the same registered rules (same engine).
        db.execute(PREDICT_SQL.format(verb="EXPLAIN"))
        sql_fired = db._planner.last_report.stats.fired_rule_names()
        assert "PredicateBasedModelPruning" in sql_fired

    def test_sql_predict_with_pruning_matches_session_results(self):
        db = _scored_db()
        sql = PREDICT_SQL.format(verb="")
        sql_rows = db.execute(sql)
        session_rows = RavenSession(db).execute(sql).table
        assert _row_multiset(sql_rows) == _row_multiset(session_rows)


# ---------------------------------------------------------------------------
# IR bridge round-trip
# ---------------------------------------------------------------------------


class TestIRBridge:
    def test_roundtrip_preserves_execution(self):
        db = _scored_db(800)
        sql = PREDICT_SQL.format(verb="").split(";")
        graph = SQLAnalyzer(db).analyze(";".join(sql))
        plan = ir_to_logical(graph)
        back = logical_to_ir(plan)
        session = RavenSession(db)
        direct = session.executor.execute(graph)
        rebuilt = session.executor.execute(back)
        assert _row_multiset(direct) == _row_multiset(rebuilt)

    def test_payload_predict_round_trips(self):
        db = _scored_db(500)
        graph = SQLAnalyzer(db).analyze(PREDICT_SQL.format(verb=""))
        plan = ir_to_logical(graph)
        predicts = [
            op for op in plan.walk() if isinstance(op, logical.Predict)
        ]
        assert len(predicts) == 1
        assert predicts[0].flavor == "ml.pipeline"
        assert predicts[0].payload is not None
        back = logical_to_ir(plan)
        node = back.find("mld.pipeline")[0]
        assert node.attrs["pipeline"] is predicts[0].payload


# ---------------------------------------------------------------------------
# Property test: memo plans are result-equivalent to naive execution
# ---------------------------------------------------------------------------


class TestPlanEquivalenceProperty:
    """Randomized 2..8-way join (+ PREDICT) queries: the memo-chosen
    plan returns exactly the naive (unoptimized) plan's row set."""

    def _random_db_and_sql(self, seed):
        rng = np.random.default_rng(seed)
        num_tables = int(rng.integers(2, 9))
        db = Database()
        key_space = int(rng.integers(8, 24))
        for t in range(num_tables):
            if t == 0:
                rows = int(rng.integers(20, 120))
                keys = rng.integers(0, key_space, rows)
            else:
                # Dimension-style: unique keys, so chained joins stay
                # lookups and the naive baseline cannot blow up
                # multiplicatively across 8 relations.
                rows = int(rng.integers(2, key_space + 1))
                keys = rng.permutation(key_space)[:rows]
            db.register_table(
                f"t{t}",
                Table.from_dict(
                    {
                        f"k{t}": keys.astype(np.int64),
                        f"v{t}": rng.uniform(0.0, 100.0, rows),
                    }
                ),
            )
            db.catalog.table_statistics(f"t{t}")
        # Random join topology: each later table joins a random earlier
        # one on the key columns (chain/star mixtures).
        clauses = [f"FROM t0 AS t0"]
        for t in range(1, num_tables):
            prev = int(rng.integers(0, t))
            clauses.append(
                f"JOIN t{t} AS t{t} ON t{prev}.k{prev} = t{t}.k{t}"
            )
        where = ""
        if rng.random() < 0.7:
            col = int(rng.integers(0, num_tables))
            cutoff = float(rng.uniform(10.0, 90.0))
            where = f"WHERE t{col}.v{col} < {cutoff:.2f}"
        select = ", ".join(f"t{t}.v{t}" for t in range(num_tables))
        sql = f"SELECT {select} {' '.join(clauses)} {where}"
        return db, sql

    @pytest.mark.parametrize("seed", range(12))
    def test_random_join_query_equivalence(self, seed):
        db, sql = self._random_db_and_sql(seed)
        optimized = db.execute(sql)
        naive = _naive_rows(db, sql)
        assert _row_multiset(optimized) == _row_multiset(naive)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_predict_over_join_equivalence(self, seed):
        from repro.ml import DecisionTreeRegressor, Pipeline

        rng = np.random.default_rng(100 + seed)
        db = Database()
        rows = int(rng.integers(50, 400))
        keys = rng.integers(0, 8, rows)
        db.register_table(
            "facts",
            Table.from_dict(
                {
                    "k": keys,
                    "f1": rng.uniform(0.0, 10.0, rows),
                    "f2": rng.uniform(0.0, 10.0, rows),
                }
            ),
        )
        db.register_table(
            "dims",
            Table.from_dict(
                {
                    "k": np.arange(8, dtype=np.int64),
                    "w": rng.uniform(0.0, 1.0, 8),
                }
            ),
        )
        X = rng.uniform(0.0, 10.0, (200, 2))
        y = X[:, 0] - X[:, 1]
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=4))]).fit(X, y)
        db.store_model("pm", pipe, metadata={"feature_names": ["f1", "f2"]})
        cutoff = float(rng.uniform(2.0, 8.0))
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'pm');"
            "SELECT d.k, d.w, p.yhat FROM PREDICT(MODEL = @m, DATA = "
            "(SELECT f.k AS k, f.f1 AS f1, f.f2 AS f2, d.w AS w "
            "FROM facts AS f JOIN dims AS d ON f.k = d.k) AS d) "
            f"WITH (yhat float) AS p WHERE d.f1 < {cutoff:.2f}"
        )
        optimized = db.execute(sql)
        naive = _naive_rows(db, sql)
        assert _row_multiset(optimized) == _row_multiset(naive)


# ---------------------------------------------------------------------------
# Shared sub-plans: DAG-shaped graphs intern into shared memo groups
# ---------------------------------------------------------------------------


class TestSharedSubPlans:
    def test_memo_interns_shared_subtree_object_once(self):
        from repro.relational.expressions import BinaryOp, col, lit

        scan = logical.Scan("t", None)
        shared = logical.Filter(
            scan, BinaryOp(">", col("x"), lit(1.0))
        )
        left = logical.Project(shared, ((col("x"), "x"),))
        right = logical.Project(shared, ((col("x"), "y"),))
        union = logical.UnionAll((left, right))
        memo = Memo()
        memo.register(union)
        # The shared Filter object registered once: the second parent
        # resolved it through the identity map (one dedup hit, no
        # duplicate groups for the shared chain).
        assert memo.stats.dedup_hits >= 1
        filter_groups = [
            g
            for g in memo.groups
            if isinstance(g.expressions[0].op, logical.Filter)
        ]
        assert len(filter_groups) == 1

    def test_ir_dag_bridges_and_round_trips(self):
        """An IR node with two consumers converts to one shared logical
        object and lowers back to one IR node with two consumers."""
        from repro.core.ir.graph import IRGraph
        from repro.relational.expressions import BinaryOp, col, lit
        from repro.relational.types import Column, DataType, Schema

        schema = Schema((Column("x", DataType.FLOAT),))
        graph = IRGraph()
        scan = graph.add("ra.scan", [], table="t", alias=None, schema=schema)
        shared = graph.add(
            "ra.filter",
            [scan.id],
            predicate=BinaryOp(">", col("x"), lit(0.0)),
        )
        left = graph.add(
            "ra.project", [shared.id], items=[(col("x"), "x")]
        )
        right = graph.add(
            "ra.project", [shared.id], items=[(col("x"), "y")]
        )
        union = graph.add("ra.union_all", [left.id, right.id])
        graph.set_output(union.id)
        plan = ir_to_logical(graph)
        assert isinstance(plan, logical.UnionAll)
        assert plan.branches[0].child is plan.branches[1].child
        back = logical_to_ir(plan)
        filters = back.find("ra.filter")
        assert len(filters) == 1
        consumers = sum(
            filters[0].id in node.inputs for node in back.nodes()
        )
        assert consumers == 2
