"""Docs stay true: the events reference is complete, snippets compile.

``docs/events.md`` claims to be the *complete* event taxonomy. This
test walks every ``emit(...)`` call site in ``src/repro`` with the AST
and asserts the claim in both directions — every emitted event is
documented with exactly its payload fields, and every documented event
still exists in the code.
"""

from __future__ import annotations

import ast
import importlib.util
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
EVENTS_DOC = REPO / "docs" / "events.md"


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "docs" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def emit_sites() -> dict[str, dict]:
    """``{event_name: {"kwargs": set, "dynamic": bool, "sites": [...]}}``
    for every constant-name ``emit(...)`` call under ``src/repro``.

    The one dynamic-name site — the module-level ``emit()`` forwarder
    in ``events.py`` that re-emits its argument — is skipped: it names
    no event of its own.
    """
    sites: dict[str, dict] = {}
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            is_emit = (
                isinstance(fn, ast.Attribute) and fn.attr == "emit"
            ) or (isinstance(fn, ast.Name) and fn.id == "emit")
            if not is_emit or not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue  # the dynamic forwarder in events.py
            record = sites.setdefault(
                first.value, {"kwargs": set(), "dynamic": False, "sites": []}
            )
            record["sites"].append(
                f"{path.relative_to(REPO)}:{node.lineno}"
            )
            for keyword in node.keywords:
                if keyword.arg is None:
                    record["dynamic"] = True  # **kwargs at the call site
                else:
                    record["kwargs"].add(keyword.arg)
    return sites


def documented_events() -> dict[str, set]:
    """``{event_name: payload_fields}`` parsed from docs/events.md."""
    documented: dict[str, set] = {}
    for line in EVENTS_DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if len(cells) != 3:
            continue
        name_match = re.fullmatch(r"`([a-z_.]+)`", cells[0])
        if name_match is None:
            continue  # header or separator row
        fields = set(re.findall(r"`([a-z_]+)`", cells[2]))
        documented[name_match.group(1)] = fields
    return documented


def test_every_emitted_event_is_documented():
    emitted = emit_sites()
    documented = documented_events()
    missing = {
        name: emitted[name]["sites"]
        for name in emitted
        if name not in documented
    }
    assert not missing, (
        f"events emitted but missing from docs/events.md: {missing}"
    )
    stale = sorted(set(documented) - set(emitted))
    assert not stale, (
        f"events documented in docs/events.md but never emitted: {stale}"
    )


def test_documented_payload_fields_match_emit_sites():
    emitted = emit_sites()
    documented = documented_events()
    problems = []
    for name, record in sorted(emitted.items()):
        if name not in documented:
            continue  # covered by the completeness test
        doc_fields = documented[name]
        static = record["kwargs"]
        if record["dynamic"]:
            # A site spreads **kwargs: the doc must cover at least the
            # static fields (and is trusted for the dynamic remainder).
            missing = static - doc_fields
            if missing:
                problems.append(
                    f"{name}: doc is missing fields {sorted(missing)} "
                    f"(emitted at {record['sites']})"
                )
        elif doc_fields != static:
            problems.append(
                f"{name}: doc says {sorted(doc_fields)}, code emits "
                f"{sorted(static)} (at {record['sites']})"
            )
    assert not problems, "\n".join(problems)


def test_events_doc_covers_a_sane_minimum():
    # Guard against the parser silently matching nothing.
    documented = documented_events()
    assert len(documented) >= 25
    assert "net.request" in documented
    assert "serving.completed" in documented


def test_doc_snippets_compile_and_links_resolve():
    check_docs = _load_check_docs()
    files = check_docs.doc_files()
    assert any(f.name == "README.md" for f in files)
    assert sum(
        1 for f in files if f.parent.name == "docs"
    ) >= 4, "docs/ must hold the four documentation pages"
    errors = check_docs.check_snippets(files) + check_docs.check_links(files)
    assert not errors, "\n".join(errors)


def test_check_docs_catches_broken_snippets_and_links(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "see [missing](nowhere.md)\n\n```python\ndef broken(:\n```\n",
        encoding="utf-8",
    )
    check_docs = _load_check_docs()
    assert check_docs.check_snippets([bad])
    assert check_docs.check_links([bad])


@pytest.mark.parametrize(
    "page", ["architecture.md", "serving.md", "operations.md", "events.md"]
)
def test_docs_pages_exist(page):
    assert (REPO / "docs" / page).is_file()
