"""Tests for the runtimes (integrated, out-of-process, container) and the
runtime code generator, plus RavenSession end-to-end behaviour."""

import numpy as np
import pytest

from repro import RavenSession, Table
from repro.core.codegen import generate_sql
from repro.core.runtime import ContainerRuntime, ModelServer, OutOfProcessRuntime
from repro.data import hospital
from repro.errors import RuntimeDispatchError
from repro.ml import DecisionTreeRegressor, Pipeline, StandardScaler
from repro.ml import model_format


class TestRavenSessionEndToEnd:
    def test_fig1_result_matches_unoptimized(self, hospital_small):
        db, dataset, pipeline = hospital_small
        session = RavenSession(db)
        optimized = session.execute(hospital.INFERENCE_QUERY)
        baseline = session.execute(hospital.INFERENCE_QUERY, optimize=False)
        assert sorted(optimized.table.column("id").tolist()) == sorted(
            baseline.table.column("id").tolist()
        )
        assert np.allclose(
            np.sort(optimized.table.column("length_of_stay")),
            np.sort(baseline.table.column("length_of_stay")),
        )

    def test_fig1_matches_direct_model_scoring(self, hospital_small):
        db, dataset, pipeline = hospital_small
        session = RavenSession(db)
        result = session.execute(hospital.INFERENCE_QUERY)
        predictions = pipeline.predict(dataset.features)
        pregnant = dataset.features[:, 1] == 1.0
        expected = np.nonzero(pregnant & (predictions > 7))[0]
        assert sorted(result.table.column("id").tolist()) == expected.tolist()

    def test_all_optimizer_modes_agree(self, hospital_small):
        db, _, _ = hospital_small
        reference = None
        for kind in ("none", "heuristic", "cost"):
            session = RavenSession(db, optimizer=kind)
            ids = sorted(
                session.execute(hospital.INFERENCE_QUERY).table.column("id").tolist()
            )
            if reference is None:
                reference = ids
            assert ids == reference, f"optimizer={kind} diverged"

    def test_strategy_option_combinations_agree(self, hospital_small):
        db, _, _ = hospital_small
        reference = None
        for options in (
            {"enable_inlining": False},
            {"enable_inlining": True},
            {"enable_inlining": False, "enable_nn_translation": True},
            {"enable_splitting": True, "enable_inlining": False},
        ):
            session = RavenSession(db, options=options)
            ids = sorted(
                session.execute(hospital.INFERENCE_QUERY).table.column("id").tolist()
            )
            if reference is None:
                reference = ids
            assert ids == reference, f"options={options} diverged"

    def test_explain_mentions_rules_and_sql(self, hospital_small):
        db, _, _ = hospital_small
        text = RavenSession(db).explain(hospital.INFERENCE_QUERY)
        assert "optimized IR" in text
        assert "PredicateBasedModelPruning" in text
        assert "generated SQL" in text

    def test_timings_and_analysis_time(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(db)
        result = session.execute(hospital.INFERENCE_QUERY)
        assert set(result.timings) == {"analyze", "optimize", "execute"}
        assert session.last_analysis_seconds is not None
        assert session.last_analysis_seconds < 0.2

    def test_gpu_device_option(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(
            db,
            options={
                "enable_inlining": False,
                "enable_nn_translation": True,
                "device": "gpu",
            },
        )
        result = session.execute(hospital.INFERENCE_QUERY)
        node = result.plan.find("la.tensor_graph")[0]
        assert node.attrs["device"] == "gpu"
        baseline = RavenSession(db).execute(hospital.INFERENCE_QUERY)
        assert sorted(result.table.column("id").tolist()) == sorted(
            baseline.table.column("id").tolist()
        )


class TestCodegen:
    def test_generated_sql_reexecutes_identically(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(db)
        result = session.execute(hospital.INFERENCE_QUERY)
        assert result.sql is not None
        # The regenerated SQL is fully relational after inlining; running
        # it through the plain database yields the same ids.
        rerun = db.execute(result.sql)
        assert sorted(rerun.column("id").tolist()) == sorted(
            result.table.column("id").tolist()
        )

    def test_predict_rendered_for_in_process_plans(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(db, options={"enable_inlining": False})
        result = session.execute(hospital.INFERENCE_QUERY)
        assert "PREDICT(MODEL" in result.sql
        assert "WITH (length_of_stay float)" in result.sql

    def test_plain_relational_roundtrip(self, simple_db):
        from repro.core.analysis import SQLAnalyzer

        sql = (
            "SELECT p.city, COUNT(*) AS n FROM people AS p "
            "WHERE p.age > 20 GROUP BY p.city"
        )
        graph = SQLAnalyzer(simple_db).analyze(sql)
        regenerated = generate_sql(graph)
        out = simple_db.execute(regenerated)
        reference = simple_db.execute(sql)
        assert sorted(out.column("n").tolist()) == sorted(
            reference.column("n").tolist()
        )


class TestParallelScoring:
    def test_parallel_matches_sequential(self, hospital_small):
        db, dataset, pipeline = hospital_small
        session = RavenSession(db, options={"enable_inlining": False})
        session.executor.options.parallel_row_threshold = 100
        parallel = session.execute(hospital.INFERENCE_QUERY)
        session.executor.options.parallel_predict = False
        sequential = session.execute(hospital.INFERENCE_QUERY)
        session.executor.options.parallel_predict = True
        assert sorted(parallel.table.column("id").tolist()) == sorted(
            sequential.table.column("id").tolist()
        )

    def test_batched_scoring_matches(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(db, options={"enable_inlining": False})
        session.executor.options.default_batch_size = 64
        batched = session.execute(hospital.INFERENCE_QUERY)
        session.executor.options.default_batch_size = None
        whole = session.execute(hospital.INFERENCE_QUERY)
        assert sorted(batched.table.column("id").tolist()) == sorted(
            whole.table.column("id").tolist()
        )


@pytest.fixture(scope="module")
def small_model_bundle():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = X[:, 0] * 2.0 - X[:, 2]
    pipe = Pipeline(
        [("sc", StandardScaler()), ("m", DecisionTreeRegressor(max_depth=5))]
    ).fit(X, y)
    table = Table.from_dict({"a": X[:, 0], "b": X[:, 1], "c": X[:, 2]})
    return pipe, model_format.dumps(pipe), table, X


class TestOutOfProcess:
    def test_score_model_matches_in_process(self, small_model_bundle):
        pipe, bundle, table, X = small_model_bundle
        runtime = OutOfProcessRuntime()
        out = runtime.score_model(bundle, table)
        assert np.allclose(out, pipe.predict(X))
        # The paper's point: a constant interpreter-startup overhead.
        assert runtime.last_startup_seconds > 0.05

    def test_run_script(self, small_model_bundle):
        _, _, table, X = small_model_bundle
        runtime = OutOfProcessRuntime()
        out = runtime.run_script(
            "output = input_columns['a'] * 10.0", table
        )
        assert np.allclose(out, X[:, 0] * 10.0)

    def test_script_errors_surface(self, small_model_bundle):
        _, _, table, _ = small_model_bundle
        runtime = OutOfProcessRuntime()
        with pytest.raises(RuntimeDispatchError):
            runtime.run_script("raise ValueError('boom')", table)

    def test_script_must_set_output(self, small_model_bundle):
        _, _, table, _ = small_model_bundle
        runtime = OutOfProcessRuntime()
        with pytest.raises(RuntimeDispatchError):
            runtime.run_script("x = 1", table)


class TestContainerized:
    def test_rest_scoring_matches(self, small_model_bundle):
        pipe, bundle, table, X = small_model_bundle
        with ContainerRuntime(
            bundle, simulated_container_start_seconds=0.0
        ) as runtime:
            out = runtime.score(table)
            assert np.allclose(out, pipe.predict(X))
            assert runtime.last_request_seconds is not None

    def test_server_rejects_bad_route(self, small_model_bundle):
        pipe, _, _, _ = small_model_bundle
        import http.client
        import json

        with ModelServer(pipe) as server:
            host, port = server.address
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("POST", "/nope", body="{}")
            assert connection.getresponse().status == 404
            connection.close()

    def test_server_reports_scoring_errors(self, small_model_bundle):
        pipe, _, _, _ = small_model_bundle
        import http.client
        import json

        with ModelServer(pipe) as server:
            host, port = server.address
            connection = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps({"matrix": [["not-a-number"]]})
            connection.request("POST", "/predict", body=body)
            assert connection.getresponse().status == 500
            connection.close()


class TestExternalScriptStatement:
    def test_exec_external_script_through_database(self, simple_db):
        runtime = OutOfProcessRuntime()
        simple_db.register_external_runtime(
            "python", lambda script, table: runtime.run_script(script, table)
        )
        out = simple_db.execute(
            "EXEC sp_execute_external_script @language = 'python', "
            "@script = 'output = input_columns[\"age\"] + 1.0', "
            "@input_data_1 = 'SELECT age FROM people'"
        )
        assert np.allclose(np.sort(out), np.sort(np.array([26.0, 36.0, 46.0, 56.0])))
