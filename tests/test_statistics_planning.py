"""Tests for statistics collection, zone-map pruning, and physical planning."""

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.concurrency import default_max_workers
from repro.core.optimizer import cost
from repro.core.optimizer.rule import RuleContext
from repro.relational.algebra.executor import ExecutionOptions
from repro.relational.catalog import AUTO_PARTITION_MIN_ROWS
from repro.relational.statistics import (
    TableStatistics,
    collect_statistics,
    estimate_predicate_selectivity,
    surviving_partitions,
)
from repro.relational.sql.parser import parse_expression


def _events_table(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": np.arange(n, dtype=np.int64),
            "value": rng.uniform(0.0, 100.0, n),
            "kind": rng.integers(0, 8, n),
            "city": rng.choice(np.array(["ny", "sf", "la"]), n),
        }
    )


@pytest.fixture()
def events_db():
    db = Database()
    db.register_table("events", _events_table().with_partitioning(2048))
    return db


class TestStatistics:
    def test_collect_basics(self):
        table = _events_table(5000)
        stats = collect_statistics(table)
        assert stats.row_count == 5000
        id_stats = stats.column("id")
        assert id_stats.min_value == 0
        assert id_stats.max_value == 4999
        assert id_stats.ndv == 5000
        assert sum(id_stats.histogram_counts) == 5000
        kind_stats = stats.column("kind")
        assert kind_stats.ndv == 8
        city_stats = stats.column("city")
        assert city_stats.ndv == 3
        assert city_stats.min_value == "la"
        assert city_stats.max_value == "sf"

    def test_null_count_and_qualified_lookup(self):
        values = np.array([1.0, np.nan, 3.0, np.nan])
        stats = collect_statistics(Table.from_dict({"x": values}))
        assert stats.column("x").null_count == 2
        assert stats.column("t.x") is stats.column("x")

    def test_roundtrip_through_dict(self):
        stats = collect_statistics(_events_table(1000))
        restored = TableStatistics.from_dict(stats.to_dict())
        assert restored.row_count == stats.row_count
        assert restored.column("value").histogram_counts == (
            stats.column("value").histogram_counts
        )
        assert restored.column("city").max_value == "sf"

    def test_range_selectivity_tracks_histogram(self):
        stats = collect_statistics(_events_table(10_000))
        resolve = stats.column
        predicate = parse_expression("value < 25.0")
        selectivity = estimate_predicate_selectivity(predicate, resolve)
        assert 0.2 < selectivity < 0.3  # uniform [0, 100): ~0.25
        predicate = parse_expression("kind = 3")
        assert estimate_predicate_selectivity(predicate, resolve) == (
            pytest.approx(1 / 8)
        )
        # Out-of-range equality is provably empty.
        predicate = parse_expression("value = 1000.0")
        assert estimate_predicate_selectivity(predicate, resolve) == 0.0

    def test_conjunction_backoff_is_less_aggressive_than_independence(self):
        stats = collect_statistics(_events_table(10_000))
        resolve = stats.column
        a = estimate_predicate_selectivity(
            parse_expression("value < 25.0"), resolve
        )
        both = estimate_predicate_selectivity(
            parse_expression("value < 25.0 AND kind = 3"), resolve
        )
        assert both < a  # still more selective than one conjunct
        assert both > a * (1 / 8)  # but dampened vs full independence


class TestSamplingNDV:
    """Sampling-based NDV (GEE) above the exact-count threshold."""

    def test_exact_below_threshold(self):
        from repro.relational.statistics import estimate_ndv

        values = np.random.default_rng(0).integers(0, 1000, 50_000)
        assert estimate_ndv(values) == len(np.unique(values))

    def test_skewed_data_within_gee_error_bound(self):
        from repro.relational.statistics import (
            NDV_SAMPLE_SIZE,
            NDV_SAMPLE_THRESHOLD,
            estimate_ndv,
        )

        rng = np.random.default_rng(7)
        # Synthetic skew: 500 heavy hitters cover 150k rows; 50k
        # singletons form the long tail. True NDV = 50_500.
        heavy = rng.integers(0, 500, 150_000).astype(np.float64)
        tail = np.arange(1_000_000, 1_050_000, dtype=np.float64)
        values = rng.permutation(np.concatenate([heavy, tail]))
        assert len(values) > NDV_SAMPLE_THRESHOLD
        true_ndv = len(np.unique(values))
        estimate = estimate_ndv(values)
        # GEE's guaranteed ratio error is sqrt(n / sample).
        bound = np.sqrt(len(values) / NDV_SAMPLE_SIZE) * 1.1
        assert true_ndv / bound <= estimate <= true_ndv * bound

    def test_estimate_is_deterministic(self):
        from repro.relational.statistics import estimate_ndv

        values = np.random.default_rng(3).integers(0, 10_000, 200_000)
        assert estimate_ndv(values) == estimate_ndv(values)

    def test_collect_statistics_uses_estimator_on_large_columns(self):
        from repro.relational import statistics as stats_module

        n = stats_module.NDV_SAMPLE_THRESHOLD + 1
        table = Table.from_dict(
            {"x": np.arange(n, dtype=np.float64)}
        )
        stats = collect_statistics(table)
        x = stats.column("x")
        # Sampled: every sampled value is a singleton, so the GEE
        # estimate is sqrt(n/r) * r — well below n but within bound.
        assert 0 < x.ndv <= n
        assert x.min_value == 0.0 and x.max_value == float(n - 1)
        # Histograms remain exact regardless of NDV sampling.
        assert sum(x.histogram_counts) == n


class TestPartitionedTable:
    def test_partition_accessors(self):
        table = _events_table(5000).with_partitioning(1000)
        assert table.partition_size == 1000
        assert table.num_partitions == 5
        assert table.partition(4).num_rows == 1000
        assert [b for b in table.partition_bounds()][0] == (0, 1000)
        # Derived tables do not inherit partitioning.
        assert table.filter(table["kind"] == 1).partition_size is None

    def test_zone_map_and_pruning(self):
        table = _events_table(8000).with_partitioning(1000)
        mins, maxs = table.zone_map("id")
        assert mins[0] == 0 and maxs[0] == 999
        keep = surviving_partitions(table, parse_expression("id < 1500"))
        assert keep.tolist() == [True, True] + [False] * 6
        keep = surviving_partitions(table, parse_expression("id IN (2500)"))
        assert keep.sum() == 1 and keep[2]
        # No constraint -> no pruning decision.
        assert surviving_partitions(table, parse_expression("value + id > 0")) is None

    def test_auto_partition_on_register(self):
        db = Database()
        db.register_table("big", _events_table(AUTO_PARTITION_MIN_ROWS))
        assert db.table("big").partition_size is not None
        db.register_table("small_t", _events_table(100))
        assert db.table("small_t").partition_size is None


class TestCatalogStatistics:
    def test_lazy_collection_and_epoch(self, events_db):
        catalog = events_db.catalog
        epoch = catalog.stats_epoch("events")
        assert epoch > 0
        stats = catalog.table_statistics("events")
        assert stats.row_count == 20_000
        # Collection itself does not move the epoch.
        assert catalog.stats_epoch("events") == epoch

    def test_analyze_statement_bumps_epoch(self, events_db):
        before = events_db.catalog.stats_epoch("events")
        result = events_db.execute("ANALYZE events")
        assert result.column("row_count")[0] == 20_000
        assert result.column("stats_epoch")[0] > before

    def test_small_write_keeps_epoch_large_write_moves_it(self, events_db):
        catalog = events_db.catalog
        catalog.table_statistics("events")  # cache stats
        epoch = catalog.stats_epoch("events")
        events_db.execute("DELETE FROM events WHERE id = 0")
        assert catalog.stats_epoch("events") == epoch
        events_db.execute("DELETE FROM events WHERE id < 15000")
        assert catalog.stats_epoch("events") > epoch


class TestExplain:
    def test_explain_shows_estimates_and_pruning(self, events_db):
        events_db.execute("ANALYZE events")
        plan = events_db.execute(
            "EXPLAIN SELECT id FROM events WHERE id < 1000 AND kind = 2"
        )
        text = "\n".join(plan.column("plan").tolist())
        assert "est_rows=" in text
        assert "selectivity=" in text
        assert "partitions=1/10 (zone-map)" in text
        assert "Scan events [rows=20000]" in text

    def test_explain_join_reorder_starts_from_selective_pair(self, events_db):
        events_db.register_table(
            "dims",
            Table.from_dict(
                {
                    "kind": np.arange(8, dtype=np.int64),
                    "label": np.array([f"k{i}" for i in range(8)]),
                }
            ),
        )
        events_db.register_table(
            "picked",
            Table.from_dict({"id": np.arange(40, dtype=np.int64)}),
        )
        plan = events_db.execute(
            "EXPLAIN SELECT e.id, d.label FROM events AS e "
            "JOIN dims AS d ON e.kind = d.kind "
            "JOIN picked AS p ON e.id = p.id"
        )
        lines = plan.column("plan").tolist()
        # The selective events<->picked equi-join runs first; the dims
        # join (output ~= events rows) is applied last.
        first_join = next(
            line for line in reversed(lines) if "Join INNER" in line
        )
        assert "p.id" in first_join or "e.id" in first_join

    def test_reordered_join_matches_unordered_semantics(self, events_db):
        events_db.register_table(
            "dims",
            Table.from_dict(
                {
                    "kind": np.arange(8, dtype=np.int64),
                    "weight": np.arange(8, dtype=np.float64),
                }
            ),
        )
        events_db.register_table(
            "picked", Table.from_dict({"id": np.arange(40, dtype=np.int64)})
        )
        result = events_db.execute(
            "SELECT e.id, d.weight FROM events AS e "
            "JOIN dims AS d ON e.kind = d.kind "
            "JOIN picked AS p ON e.id = p.id "
            "WHERE e.value < 50.0 ORDER BY e.id"
        )
        events = events_db.table("events")
        mask = (events["id"] < 40) & (events["value"] < 50.0)
        expected_ids = np.sort(events["id"][mask])
        assert result.column("id").tolist() == expected_ids.tolist()
        expected_weights = events["kind"][mask][np.argsort(events["id"][mask])]
        assert result.column("weight").tolist() == (
            expected_weights.astype(np.float64).tolist()
        )


class TestPrunedExecution:
    def test_pruned_scan_matches_full_scan(self, events_db):
        sql = "SELECT id, value FROM events WHERE id >= 4000 AND id < 4600"
        pruned = events_db.execute(sql)
        info = events_db._executor.last_scan_pruning
        assert info is not None
        assert info["partitions_scanned"] < info["partitions_total"]
        unpruned_db = Database(
            options=ExecutionOptions(enable_zone_map_pruning=False)
        )
        unpruned_db.register_table("events", events_db.table("events"))
        assert pruned.equals(unpruned_db.execute(sql))

    def test_empty_pruned_result(self, events_db):
        result = events_db.execute("SELECT id FROM events WHERE id > 999999")
        assert result.num_rows == 0


class TestMorselParallelPredict:
    @pytest.fixture()
    def scored_db(self):
        from repro.data import flights

        dataset = flights.generate(60_000, seed=3)
        db = Database(
            options=ExecutionOptions(parallel_row_threshold=10_000)
        )
        flights.load_into(db, dataset)
        pipeline = flights.train_logistic_pipeline(dataset, max_iter=60)
        db.store_model(
            "flight_delay",
            pipeline,
            metadata={"feature_names": flights.FEATURE_NAMES},
        )
        return db

    def test_morsel_predict_matches_sequential(self, scored_db):
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'flight_delay');"
            "SELECT d.flight_id, p.delayed FROM PREDICT(MODEL = @m, "
            "DATA = flights AS d) WITH (delayed float) AS p "
            "WHERE d.flight_id < 3000"
        )
        assert scored_db.table("flights").partition_size is not None
        parallel = scored_db.execute(sql)
        info = scored_db._executor.last_scan_pruning
        assert info is not None and info["partitions_scanned"] < (
            info["partitions_total"]
        )
        sequential_db = Database(
            options=ExecutionOptions(
                morsel_parallel_predict=False, enable_zone_map_pruning=False
            )
        )
        sequential_db.register_table("flights", scored_db.table("flights"))
        sequential_db.store_model(
            "flight_delay",
            scored_db.get_model("flight_delay").payload,
            metadata={"feature_names": ["carrier", "origin", "dest",
                                        "distance", "dep_hour", "day_of_week"]},
        )
        assert parallel.equals(sequential_db.execute(sql))


class TestCostModelStatistics:
    def test_aggregate_estimate_uses_group_key_ndv(self, events_db):
        session = RavenSession(events_db)
        graph = session.analyze(
            "SELECT kind, COUNT(*) AS n FROM events GROUP BY kind"
        )
        context = RuleContext(database=events_db)
        agg = next(n for n in graph.nodes() if n.op == "ra.aggregate")
        assert cost.estimate_rows(graph, agg, context) == 8.0

    def test_aggregate_estimate_falls_back_without_stats(self, events_db):
        session = RavenSession(events_db)
        graph = session.analyze(
            "SELECT kind, COUNT(*) AS n FROM events GROUP BY kind"
        )
        agg = next(n for n in graph.nodes() if n.op == "ra.aggregate")
        no_stats = RuleContext(database=None)
        child_rows = cost.estimate_rows(
            graph, graph.node(agg.inputs[0]), no_stats
        )
        assert cost.estimate_rows(graph, agg, no_stats) == (
            pytest.approx(child_rows * 0.1)
        )

    def test_filter_estimate_uses_histogram(self, events_db):
        session = RavenSession(events_db)
        graph = session.analyze("SELECT id FROM events WHERE value < 25.0")
        context = RuleContext(database=events_db)
        filt = next(n for n in graph.nodes() if n.op == "ra.filter")
        estimate = cost.estimate_rows(graph, filt, context)
        assert 0.2 * 20_000 < estimate < 0.3 * 20_000


class TestExecutionOptionsDefaults:
    def test_max_workers_defaults_from_machine(self):
        options = ExecutionOptions()
        assert options.max_workers == default_max_workers()
        assert 1 <= options.max_workers <= 16

    def test_explicit_max_workers_respected(self):
        assert ExecutionOptions(max_workers=3).max_workers == 3


class TestPushdownSafety:
    def test_ambiguous_bare_column_still_raises(self):
        from repro.errors import SchemaError

        db = Database()
        db.register_table(
            "a",
            Table.from_dict(
                {"id": np.array([1, 2]), "x": np.array([1.0, 2.0])}
            ),
        )
        db.register_table(
            "b",
            Table.from_dict(
                {"id": np.array([1, 2]), "y": np.array([1.0, 2.0])}
            ),
        )
        # `id` suffix-matches both t1.id and t2.id: pushdown must not
        # pick a side; evaluation reports the ambiguity instead.
        with pytest.raises(SchemaError, match="ambiguous"):
            db.execute(
                "SELECT t1.x FROM a AS t1 JOIN b AS t2 ON t1.x = t2.y "
                "WHERE id = 2"
            )


class TestPartitioningPersistsAcrossWrites:
    def test_explicit_partitioning_survives_dml(self):
        db = Database()
        db.register_table("t", _events_table(4000).with_partitioning(512))
        db.execute("INSERT INTO t VALUES (100000, 1.0, 1, 'ny')")
        assert db.table("t").partition_size == 512
        db.execute("DELETE FROM t WHERE id = 100000")
        assert db.table("t").partition_size == 512


class TestBatcherBackpressure:
    def test_overload_rejects_while_dispatch_saturated(self):
        import threading
        import time

        from repro.errors import ServerOverloadedError
        from repro.serving import MicroBatcher

        release = threading.Event()

        def slow_runner(table):
            release.wait(timeout=10)
            return table

        row = Table.from_dict({"x": np.array([1.0])})
        with MicroBatcher(
            slow_runner,
            max_batch_rows=1,
            max_wait_seconds=0.0,
            max_pending_requests=4,
            dispatch_workers=1,
        ) as batcher:
            futures = [batcher.submit(row)]
            # The dispatch slot is held by the slow batch; further
            # requests must queue and then reject at the bound instead
            # of piling into the dispatch pool unboundedly.
            deadline = time.monotonic() + 5.0
            rejected = False
            while time.monotonic() < deadline and not rejected:
                try:
                    futures.append(batcher.submit(row))
                except ServerOverloadedError:
                    rejected = True
            release.set()
            assert rejected, "max_pending_requests never fired"
            for future in futures:
                assert future.result(timeout=10).num_rows == 1


class TestInfinityHandling:
    def test_inf_rows_survive_pruning_and_stats(self):
        n = 40_000
        values = np.random.default_rng(0).uniform(0.0, 10.0, n)
        values[n - 1] = np.inf
        values[0] = -np.inf
        values[1] = np.nan
        db = Database()
        db.register_table(
            "m", Table.from_dict({"id": np.arange(n, dtype=np.int64),
                                  "x": values})
        )
        assert db.table("m").partition_size is not None
        # +inf matches x > 100; zone maps must not prune it away.
        result = db.execute("SELECT id FROM m WHERE x > 100.0")
        assert result.column("id").tolist() == [n - 1]
        result = db.execute("SELECT id FROM m WHERE x < -100.0")
        assert result.column("id").tolist() == [0]
        stats = db.catalog.table_statistics("m")
        x = stats.column("x")
        assert x.null_count == 1  # only the NaN row
        assert x.min_value == -np.inf and x.max_value == np.inf
        assert sum(x.histogram_counts) == n - 3  # finite rows only


class TestUpdateDrift:
    def test_full_table_update_moves_epoch(self):
        db = Database()
        rng = np.random.default_rng(7)
        db.register_table(
            "u",
            Table.from_dict(
                {
                    "id": np.arange(1000, dtype=np.int64),
                    "v": rng.uniform(0.0, 10.0, 1000),
                }
            ),
        )
        db.catalog.table_statistics("u")  # cache stats
        epoch = db.catalog.stats_epoch("u")
        # Same row count, every value rewritten far outside the old
        # range: the min/max spot-check must detect the drift.
        db.execute("UPDATE u SET v = v + 1000000")
        assert db.catalog.stats_epoch("u") > epoch
        assert db.catalog.table_statistics("u").column("v").min_value > 1000

    def test_in_range_update_keeps_epoch(self):
        db = Database()
        db.register_table(
            "u",
            Table.from_dict(
                {
                    "id": np.arange(1000, dtype=np.int64),
                    "v": np.linspace(0.0, 10.0, 1000),
                }
            ),
        )
        db.catalog.table_statistics("u")
        epoch = db.catalog.stats_epoch("u")
        db.execute("UPDATE u SET v = 5.0 WHERE id = 3")  # within range
        assert db.catalog.stats_epoch("u") == epoch


class TestPruningDiagnostics:
    def test_declined_pruning_is_not_reported(self):
        db = Database()
        db.register_table(
            "t", _events_table(10_000).with_partitioning(1000)
        )
        db.execute("SELECT id FROM t WHERE id < 500")  # strong: commits
        assert db._executor.last_scan_pruning["partitions_scanned"] == 1
        db._executor.last_scan_pruning = None
        # 9/10 partitions survive: above the copy threshold, pruning is
        # declined, and the diagnostic must not claim otherwise.
        db.execute("SELECT id FROM t WHERE id >= 850")
        assert db._executor.last_scan_pruning is None


class TestStringColumnPruningSafety:
    def test_numeric_bound_on_string_column_does_not_crash(self):
        db = Database()
        db.register_table("s", _events_table(10_000).with_partitioning(1000))
        # Numeric comparison against a string column: pruning must skip
        # the column, matching unpartitioned semantics (0 rows).
        assert db.execute("SELECT id FROM s WHERE city = 5").num_rows == 0
        unpartitioned = Database()
        unpartitioned.register_table("s", _events_table(10_000))
        assert unpartitioned.execute(
            "SELECT id FROM s WHERE city = 5"
        ).num_rows == 0

    def test_explain_marks_weak_pruning_as_full_scan(self):
        db = Database()
        db.register_table("t", _events_table(10_000).with_partitioning(1000))
        text = "\n".join(
            db.execute("EXPLAIN SELECT id FROM t WHERE id >= 850")["plan"]
        )
        assert "(zone-map: weak, full scan)" in text


class TestReorderResolutionFidelity:
    def test_bare_ref_in_on_clause_keeps_original_binding(self):
        # `score` in the ON clause binds to a's unprefixed column by
        # exact match; b (aliased) also has a score column that would
        # suffix-match. A 3-way chain triggers reordering, which must
        # not re-bind the bare ref onto b as a leaf-local filter.
        db = Database()
        db.register_table(
            "a",
            Table.from_dict(
                {
                    "id": np.arange(5, dtype=np.int64),
                    "score": np.arange(5, dtype=np.int64),
                }
            ),
        )
        db.register_table(
            "b",
            Table.from_dict(
                {
                    "k": np.arange(5, dtype=np.int64),
                    "score": np.zeros(5, dtype=np.int64),
                }
            ),
        )
        db.register_table(
            "c", Table.from_dict({"id": np.arange(5, dtype=np.int64)})
        )
        two_way = db.execute(
            "SELECT b.k FROM a JOIN b AS b ON score = b.k ORDER BY b.k"
        )
        three_way = db.execute(
            "SELECT b.k FROM a JOIN b AS b ON score = b.k "
            "JOIN c AS c ON a.id = c.id ORDER BY b.k"
        )
        assert two_way.column("k").tolist() == three_way.column("k").tolist()
        assert three_way.column("k").tolist() == [0, 1, 2, 3, 4]


class TestBatchAssemblyFailure:
    def test_mixed_schema_batch_fails_futures_not_silently(self):
        from repro.errors import SchemaError
        from repro.serving import MicroBatcher

        with MicroBatcher(
            lambda t: t, max_batch_rows=100, max_wait_seconds=5.0
        ) as batcher:
            f1 = batcher.submit(Table.from_dict({"x": np.array([1.0])}))
            f2 = batcher.submit(Table.from_dict({"y": np.array([1.0])}))
            batcher.flush()
            # concat_rows of mismatched schemas must fail both futures
            # promptly instead of stranding clients forever.
            with pytest.raises(SchemaError):
                f1.result(timeout=10)
            with pytest.raises(SchemaError):
                f2.result(timeout=10)


class TestReorderScopeWidening:
    def test_bare_ref_survives_reorder_into_wider_scope(self):
        # `id = b.a_id` resolves `id` to a.id in the (a, b) scope. If
        # the reorder seeds with (a, c) — both of which have an id
        # column — the relocated conjunct must not become ambiguous.
        rng = np.random.default_rng(12)
        n = 5000
        db = Database()
        db.register_table(
            "ta",
            Table.from_dict(
                {
                    "id": np.arange(n, dtype=np.int64),
                    "ck": rng.integers(0, 4, n),
                }
            ),
        )
        db.register_table(
            "tb",
            Table.from_dict({"a_id": np.arange(n, dtype=np.int64)}),
        )
        db.register_table(
            "tc",
            Table.from_dict(
                {
                    "id": np.arange(10, dtype=np.int64),
                    "ck2": np.arange(10, dtype=np.int64) % 4,
                }
            ),
        )
        result = db.execute(
            "SELECT a.id FROM ta AS a JOIN tb AS b ON id = b.a_id "
            "JOIN tc AS c ON a.ck = c.ck2"
        )
        naive = db._executor.execute(
            db.bind(
                "SELECT a.id FROM ta AS a JOIN tb AS b ON id = b.a_id "
                "JOIN tc AS c ON a.ck = c.ck2"
            )
        )
        assert sorted(result.column("id").tolist()) == (
            sorted(naive.column("id").tolist())
        )


class TestStringDrift:
    def test_string_rewrite_moves_epoch(self):
        db = Database()
        db.register_table(
            "s",
            Table.from_dict(
                {
                    "k": np.array(["a", "b", "c", "d"]),
                    "v": np.arange(4, dtype=np.int64),
                }
            ),
        )
        db.catalog.table_statistics("s")
        epoch = db.catalog.stats_epoch("s")
        db.execute("UPDATE s SET k = 'z'")
        assert db.catalog.stats_epoch("s") > epoch
        assert db.catalog.table_statistics("s").column("k").max_value == "z"

    def test_in_range_string_write_keeps_epoch(self):
        db = Database()
        db.register_table(
            "s",
            Table.from_dict(
                {
                    "k": np.array(["a", "b", "c", "d"]),
                    "v": np.arange(4, dtype=np.int64),
                }
            ),
        )
        db.catalog.table_statistics("s")
        epoch = db.catalog.stats_epoch("s")
        db.execute("UPDATE s SET k = 'b' WHERE v = 2")  # bounds unchanged
        assert db.catalog.stats_epoch("s") == epoch


class TestDriftEdgeCases:
    def test_inf_bound_does_not_mask_drift(self):
        db = Database()
        values = np.arange(1000, dtype=np.float64)
        values[-1] = np.inf
        db.register_table(
            "inf_t",
            Table.from_dict(
                {"id": np.arange(1000, dtype=np.int64), "v": values}
            ),
        )
        db.catalog.table_statistics("inf_t")
        epoch = db.catalog.stats_epoch("inf_t")
        # Every finite value shifts far out of the old range; an
        # infinite cached span must not swallow the drift.
        db.execute("UPDATE inf_t SET v = v + 1000000 WHERE v < 999999")
        assert db.catalog.stats_epoch("inf_t") > epoch

    def test_explain_omits_pruning_when_disabled(self):
        db = Database(
            options=ExecutionOptions(enable_zone_map_pruning=False)
        )
        db.register_table("t", _events_table(10_000).with_partitioning(1000))
        text = "\n".join(
            db.execute("EXPLAIN SELECT id FROM t WHERE id < 500")["plan"]
        )
        assert "zone-map" not in text  # executor will not prune


class TestConcurrentStatsCollection:
    def test_racing_write_does_not_cache_stale_stats(self, monkeypatch):
        """A write landing mid-collection must win: the stale result is
        discarded instead of being cached under the fresh epoch."""
        import repro.relational.catalog as catalog_module
        from repro.relational.statistics import collect_statistics as real

        db = Database()
        db.register_table(
            "r",
            Table.from_dict(
                {
                    "id": np.arange(100, dtype=np.int64),
                    "v": np.arange(100, dtype=np.float64),
                }
            ),
        )
        catalog = db.catalog

        def racing_collect(table, bins=32):
            stats = real(table, bins)
            # Simulate a concurrent large write finishing while this
            # thread was collecting.
            catalog._invalidate_stats("r")
            return stats

        monkeypatch.setattr(
            catalog_module, "collect_statistics", racing_collect
        )
        stale = catalog.table_statistics("r")
        assert stale.row_count == 100  # caller still gets usable stats
        monkeypatch.setattr(catalog_module, "collect_statistics", real)
        # The stale result was not cached: the next request recollects.
        assert catalog.table_statistics("r").row_count == 100
        assert catalog._stats.get("r") is not stale


class TestCompoundPredicatePushdown:
    def test_conjuncts_merge_into_one_filter_below_predict(self):
        from repro.data import flights

        dataset = flights.generate(60_000, seed=2)
        db = Database()
        flights.load_into(db, dataset)
        pipeline = flights.train_logistic_pipeline(
            flights.generate(3_000, seed=2), max_iter=40
        )
        db.store_model(
            "flight_delay",
            pipeline,
            metadata={"feature_names": flights.FEATURE_NAMES},
        )
        plan = db.execute(
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'flight_delay');"
            "EXPLAIN SELECT d.flight_id, p.delayed "
            "FROM PREDICT(MODEL = @m, DATA = flights AS d) "
            "WITH (delayed float) AS p "
            "WHERE d.flight_id < 2000 AND d.distance > 0"
        )
        lines = plan.column("plan").tolist()
        # Both conjuncts land in ONE filter directly over the scan, so
        # zone-map pruning sees the selective conjunct.
        filter_lines = [line for line in lines if "Filter" in line]
        assert len(filter_lines) == 1
        assert "(zone-map)" in filter_lines[0]
        assert "weak" not in filter_lines[0]


class TestConstantColumnSelectivity:
    def test_strict_and_inclusive_bounds_on_single_valued_column(self):
        stats = collect_statistics(
            Table.from_dict({"status": np.full(1000, 5.0)})
        )
        resolve = stats.column
        assert estimate_predicate_selectivity(
            parse_expression("status >= 5.0"), resolve
        ) == pytest.approx(1.0)
        assert estimate_predicate_selectivity(
            parse_expression("status < 5.0"), resolve
        ) == pytest.approx(0.0)
        assert estimate_predicate_selectivity(
            parse_expression("status <= 5.0"), resolve
        ) == pytest.approx(1.0)
        assert estimate_predicate_selectivity(
            parse_expression("status > 5.0"), resolve
        ) == pytest.approx(0.0)


class TestWriteBeforeFirstCollection:
    def test_write_without_cached_stats_bumps_epoch(self):
        db = Database()
        db.register_table(
            "w",
            Table.from_dict({"id": np.arange(100, dtype=np.int64)}),
        )
        epoch = db.catalog.stats_epoch("w")
        # Stats never collected: a write must still move the epoch so a
        # concurrent lazy collection cannot install stale stats.
        db.execute("DELETE FROM w WHERE id = 0")
        assert db.catalog.stats_epoch("w") > epoch
