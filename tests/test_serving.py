"""Tests for the serving layer: prepared queries, caches, batching, server."""

from __future__ import annotations

from concurrent.futures import wait

import numpy as np
import pytest

from repro import (
    Database,
    MicroBatcher,
    PlanCache,
    RavenServer,
    RavenSession,
    ResultCache,
    Table,
)
from repro.errors import (
    ExecutionError,
    ParameterBindError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.ml import DecisionTreeClassifier, Pipeline, StandardScaler
from repro.serving.fingerprint import sql_fingerprint

PREDICT_SQL = """
DECLARE @model varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'approval');
SELECT d.age, d.income, p.pred
FROM PREDICT(MODEL = @model, DATA = requests AS d)
WITH (pred float) AS p
"""

FILTER_SQL = """
DECLARE @model varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'approval');
SELECT d.id, p.pred
FROM PREDICT(MODEL = @model, DATA = applicants AS d)
WITH (pred float) AS p
WHERE d.age < ?
ORDER BY d.id
"""


def _request_row(age: float, income: float) -> Table:
    return Table.from_dict(
        {"age": np.array([age]), "income": np.array([income])}
    )


@pytest.fixture(scope="module")
def serving_setup():
    """(database, pipeline) with a stored approval model and a base table."""
    rng = np.random.default_rng(0)
    n = 600
    age = rng.uniform(18, 90, n)
    income = rng.normal(55.0, 20.0, n)
    approved = ((income > 50.0) | (age < 30.0)).astype(np.float64)
    database = Database()
    database.register_table(
        "applicants",
        Table.from_dict({"id": np.arange(n), "age": age, "income": income}),
    )
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]
    ).fit(np.column_stack([age, income]), approved)
    database.store_model(
        "approval", pipeline, metadata={"feature_names": ["age", "income"]}
    )
    return database, pipeline


@pytest.fixture()
def session(serving_setup):
    database, _pipeline = serving_setup
    return RavenSession(database)


class TestFingerprint:
    def test_whitespace_and_case_insensitive(self):
        a = sql_fingerprint("SELECT id FROM people WHERE age > 40")
        b = sql_fingerprint("select  id\n from People\twhere age > 40 -- hi")
        assert a == b

    def test_literals_distinguish(self):
        a = sql_fingerprint("SELECT id FROM people WHERE age > 40")
        b = sql_fingerprint("SELECT id FROM people WHERE age > 41")
        assert a != b


class TestPreparedQuery:
    def test_positional_parameters(self, session):
        prepared = session.prepare(FILTER_SQL)
        assert prepared.param_names == ("?1",)
        narrow = prepared.execute(params=(30.0,))
        wide = prepared.execute(params=(80.0,))
        assert 0 < narrow.num_rows < wide.num_rows

    def test_named_parameters(self, session):
        prepared = session.prepare(
            "SELECT id FROM applicants WHERE age > @lo AND age < @hi"
        )
        assert set(prepared.param_names) == {"@lo", "@hi"}
        out = prepared.execute(params={"lo": 30.0, "hi": 50.0})
        ages = session.database.table("applicants").column("age")
        assert out.num_rows == int(((ages > 30.0) & (ages < 50.0)).sum())

    def test_missing_and_extra_parameters_raise(self, session):
        prepared = session.prepare(FILTER_SQL)
        with pytest.raises(ParameterBindError):
            prepared.execute()
        with pytest.raises(ParameterBindError):
            prepared.execute(params=(1.0, 2.0))
        named = session.prepare("SELECT id FROM applicants WHERE age > @lo")
        with pytest.raises(ParameterBindError):
            named.execute(params={"lo": 1.0, "typo": 2.0})

    def test_plan_cache_hit_on_reprepare(self, session):
        session.prepare(FILTER_SQL)
        misses = session.plan_cache.misses
        hits = session.plan_cache.hits
        # Same query modulo whitespace, comments, and keyword/identifier
        # case — must hit the normalized-plan cache.
        variant = (
            "-- serving traffic\n"
            + FILTER_SQL.replace("SELECT", "select")
            .replace("FROM PREDICT", "from  PREDICT")
            .replace("applicants", "Applicants")
        )
        session.prepare(variant)
        assert session.plan_cache.misses == misses
        assert session.plan_cache.hits == hits + 1

    def test_data_rebinding(self, session, serving_setup):
        _database, pipeline = serving_setup
        prepared = session.prepare(
            PREDICT_SQL, data={"requests": _request_row(30.0, 50.0)}
        )
        assert prepared.data_names == ("requests",)
        out = prepared.execute(
            data={
                "requests": Table.from_dict(
                    {
                        "age": np.array([25.0, 70.0]),
                        "income": np.array([80.0, 20.0]),
                    }
                )
            }
        )
        expected = pipeline.predict(np.array([[25.0, 80.0], [70.0, 20.0]]))
        assert np.allclose(np.asarray(out["pred"]), expected)

    def test_missing_or_misnamed_data_raises(self, session):
        prepared = session.prepare(
            PREDICT_SQL, data={"requests": _request_row(30.0, 50.0)}
        )
        with pytest.raises(ParameterBindError, match="missing data"):
            prepared.execute()  # would silently score the template row
        with pytest.raises(ParameterBindError, match="unknown data"):
            prepared.execute(
                data={
                    "requests": _request_row(1.0, 1.0),
                    "requestz": _request_row(1.0, 1.0),
                }
            )

    def test_concurrent_execution_of_one_plan(self, session):
        from concurrent.futures import ThreadPoolExecutor

        prepared = session.prepare(FILTER_SQL)
        cutoffs = [25.0 + i for i in range(24)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda c: prepared.execute(params=(c,)), cutoffs)
            )
        counts = [r.num_rows for r in results]
        assert counts == sorted(counts)  # wider cutoff, more rows

    def test_replan_on_model_version_bump(self, session, serving_setup):
        database, pipeline = serving_setup
        prepared = session.prepare(FILTER_SQL)
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0
        database.store_model(
            "approval", pipeline, metadata={"feature_names": ["age", "income"]}
        )
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1
        version = database.get_model("approval").version
        assert prepared.model_names == ("approval",)
        name, qualified, tracked = prepared._entry.model_refs[0]
        assert (name, qualified, tracked) == (
            "approval",
            f"approval:v{version}",
            True,
        )
        # The refreshed plan is stable: no further replans on re-execute.
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1

    def test_store_model_invalidates_plan_cache(self, session, serving_setup):
        database, pipeline = serving_setup
        session.prepare(FILTER_SQL)
        assert len(session.plan_cache) >= 1
        before = session.plan_cache.invalidations
        database.store_model(
            "approval", pipeline, metadata={"feature_names": ["age", "income"]}
        )
        assert session.plan_cache.invalidations > before


class TestPlanCacheKeying:
    def test_same_sql_different_data_schemas_get_distinct_plans(self, session):
        sql = "SELECT * FROM requests"
        narrow = session.prepare(
            sql, data={"requests": Table.from_dict({"x": np.array([1.0])})}
        )
        wide = session.prepare(
            sql,
            data={
                "requests": Table.from_dict(
                    {"y": np.array([1.0]), "z": np.array([2.0])}
                )
            },
        )
        assert narrow.fingerprint != wide.fingerprint
        out = wide.execute(
            data={
                "requests": Table.from_dict(
                    {"y": np.array([3.0]), "z": np.array([4.0])}
                )
            }
        )
        assert out.schema.names == ("y", "z")
        assert out["y"].tolist() == [3.0]


class TestPlanCacheLRU:
    def test_capacity_and_eviction(self, session):
        cache = PlanCache(capacity=2)
        for i in range(3):
            from repro.serving.prepared import PreparedQuery

            PreparedQuery(
                session,
                f"SELECT id FROM applicants WHERE id > {i}",
                plan_cache=cache,
            )
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1


class TestResultCache:
    def test_ttl_expiry(self):
        now = [0.0]
        cache = ResultCache(capacity=8, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("k", "value", model_names=("m",))
        assert cache.get("k") == "value"
        now[0] = 9.9
        assert cache.get("k") == "value"
        now[0] = 10.1
        assert cache.get("k") is None
        assert cache.stats()["expired"] == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2, ttl_seconds=100.0, clock=lambda: 0.0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_model_invalidation(self):
        cache = ResultCache(clock=lambda: 0.0)
        cache.put("x", 1, model_names=("approval",))
        cache.put("y", 2, model_names=("other",))
        assert cache.invalidate_model("Approval") == 1
        assert cache.get("x") is None
        assert cache.get("y") == 2

    def test_standalone_result_cache_not_stale_after_model_bump(self):
        # A fresh database: this test swaps in an *inverted* model and
        # must not pollute the shared module fixture.
        rng = np.random.default_rng(5)
        age = rng.uniform(18, 90, 200)
        income = rng.normal(55.0, 20.0, 200)
        labels = ((income > 50.0) | (age < 30.0)).astype(np.float64)
        features = np.column_stack([age, income])
        database = Database()
        fit = lambda y: Pipeline(
            [
                ("scale", StandardScaler()),
                ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
            ]
        ).fit(features, y)
        database.store_model(
            "approval", fit(labels), metadata={"feature_names": ["age", "income"]}
        )
        local = RavenSession(database)
        from repro.serving.prepared import PreparedQuery

        cache = ResultCache(ttl_seconds=100.0)
        prepared = PreparedQuery(
            local,
            PREDICT_SQL,
            data={"requests": _request_row(30.0, 50.0)},
            result_cache=cache,
        )
        row = {"requests": _request_row(25.0, 80.0)}
        before = prepared.execute(data=row).column("pred")[0]
        assert before == 1.0
        # Even without a server wiring invalidation listeners, a version
        # bump must not serve the stale cached prediction: the cache key
        # embeds the model versions the plan was compiled against.
        database.store_model(
            "approval",
            fit(1.0 - labels),
            metadata={"feature_names": ["age", "income"]},
        )
        after = prepared.execute(data=row).column("pred")[0]
        assert after == 0.0

    def test_prepared_query_result_cache(self, session):
        cache = ResultCache(ttl_seconds=100.0)
        from repro.serving.prepared import PreparedQuery

        prepared = PreparedQuery(session, FILTER_SQL, result_cache=cache)
        first = prepared.execute(params=(40.0,))
        second = prepared.execute(params=(40.0,))
        assert second is first  # cache hit returns the same table object
        assert cache.stats()["hits"] == 1
        third = prepared.execute(params=(41.0,))
        assert third is not first


class TestMicroBatcher:
    def test_coalesces_requests_into_one_call(self, session, serving_setup):
        _database, pipeline = serving_setup
        calls: list[int] = []
        prepared = session.prepare(
            PREDICT_SQL, data={"requests": _request_row(30.0, 50.0)}
        )

        def runner(table: Table) -> Table:
            calls.append(table.num_rows)
            return prepared.execute(data={"requests": table})

        with MicroBatcher(
            runner, max_batch_rows=16, max_wait_seconds=5.0
        ) as batcher:
            futures = [
                batcher.submit(_request_row(20.0 + i, 40.0 + i))
                for i in range(16)
            ]
            wait(futures, timeout=30)
        results = [f.result() for f in futures]
        assert calls == [16]  # one vectorized call, not sixteen
        for i, result in enumerate(results):
            assert result.num_rows == 1
            expected = pipeline.predict(np.array([[20.0 + i, 40.0 + i]]))[0]
            assert result.column("pred")[0] == expected

    def test_deadline_flush_without_full_batch(self, session):
        prepared = session.prepare(
            PREDICT_SQL, data={"requests": _request_row(30.0, 50.0)}
        )
        with MicroBatcher(
            lambda t: prepared.execute(data={"requests": t}),
            max_batch_rows=1000,
            max_wait_seconds=0.01,
        ) as batcher:
            future = batcher.submit(_request_row(25.0, 80.0))
            assert future.result(timeout=30).num_rows == 1

    def test_non_row_preserving_plan_fails_loudly(self, session):
        prepared = session.prepare(FILTER_SQL)  # WHERE drops rows
        applicants = session.database.table("applicants")

        def runner(table: Table) -> Table:
            return prepared.execute(params=(30.0,))

        with MicroBatcher(runner, max_batch_rows=4, max_wait_seconds=0.01) as b:
            future = b.submit(applicants.head(2))
            with pytest.raises(ExecutionError, match="row-preserving"):
                future.result(timeout=30)

    def test_submit_after_close_raises(self, session):
        batcher = MicroBatcher(lambda t: t, max_batch_rows=4)
        batcher.close()
        with pytest.raises(ServerClosedError):
            batcher.submit(_request_row(1.0, 1.0))

    def test_cancelled_future_does_not_kill_worker(self, session):
        prepared = session.prepare(
            PREDICT_SQL, data={"requests": _request_row(30.0, 50.0)}
        )
        with MicroBatcher(
            lambda t: prepared.execute(data={"requests": t}),
            max_batch_rows=100,
            max_wait_seconds=0.05,
        ) as batcher:
            doomed = batcher.submit(_request_row(1.0, 1.0))
            assert doomed.cancel()
            # The worker must survive the cancelled future and keep
            # serving later requests.
            healthy = batcher.submit(_request_row(25.0, 80.0))
            batcher.flush()
            assert healthy.result(timeout=30).num_rows == 1

    def test_bounded_pending_queue_rejects_overload(self):
        import threading

        release = threading.Event()

        def slow_runner(table: Table) -> Table:
            release.wait(timeout=30)
            return table

        with MicroBatcher(
            slow_runner,
            max_batch_rows=1,
            max_wait_seconds=0.001,
            max_pending_requests=2,
        ) as batcher:
            futures = [batcher.submit(_request_row(1.0, 1.0))]
            # The worker is busy in slow_runner; fill the pending queue.
            deadline = 30.0
            import time as _time

            start = _time.monotonic()
            accepted = 0
            with pytest.raises(ServerOverloadedError):
                while _time.monotonic() - start < deadline:
                    futures.append(batcher.submit(_request_row(1.0, 1.0)))
                    accepted += 1
                    if accepted > 10:  # pragma: no cover — bound not enforced
                        break
            release.set()
            wait(futures, timeout=30)


class TestRavenServer:
    def test_end_to_end_batched_serving(self, session, serving_setup):
        _database, pipeline = serving_setup
        with RavenServer(
            session,
            workers=2,
            batch_max_rows=32,
            batch_max_wait_seconds=0.005,
        ) as server:
            server.prepare(
                "score",
                PREDICT_SQL,
                data={"requests": _request_row(30.0, 50.0)},
                batch=True,
            )
            futures = [
                server.submit(
                    "score",
                    data={"requests": _request_row(20.0 + i % 50, 45.0)},
                )
                for i in range(100)
            ]
            server.flush_batchers()
            wait(futures, timeout=60)
            results = [f.result() for f in futures]
            snapshot = server.stats_snapshot()
        assert all(r.num_rows == 1 for r in results)
        expected = pipeline.predict(np.array([[20.0 + 7, 45.0]]))[0]
        assert results[7].column("pred")[0] == expected
        assert snapshot["completed"] == 100
        assert snapshot["batches"] < 100  # coalescing actually happened
        histogram = snapshot["batch_size_histogram"]
        assert sum(size * count for size, count in histogram.items()) == 100
        assert max(histogram) > 1

    def test_parameterized_requests(self, session):
        with RavenServer(session, workers=2) as server:
            server.prepare("filtered", FILTER_SQL)
            narrow = server.query("filtered", params=(30.0,), timeout=30)
            wide = server.query("filtered", params=(80.0,), timeout=30)
        assert 0 < narrow.num_rows < wide.num_rows

    def test_unknown_prepared_name(self, session):
        with RavenServer(session, workers=1) as server:
            with pytest.raises(ServingError, match="unknown prepared"):
                server.submit("nope")

    def test_admission_control_rejects_when_full(self, session):
        server = RavenServer(session, workers=0, max_queue=2)
        try:
            server.prepare("filtered", FILTER_SQL)
            server.submit("filtered", params=(30.0,))
            server.submit("filtered", params=(31.0,))
            with pytest.raises(ServerOverloadedError):
                server.submit("filtered", params=(32.0,))
            assert server.stats.rejected == 1
        finally:
            server.shutdown(wait=False)

    def test_submit_after_shutdown_raises(self, session):
        server = RavenServer(session, workers=1)
        server.prepare("filtered", FILTER_SQL)
        server.shutdown()
        with pytest.raises(ServerClosedError):
            server.submit("filtered", params=(30.0,))

    def test_result_cache_round_trip_and_invalidation(
        self, session, serving_setup
    ):
        database, pipeline = serving_setup
        with RavenServer(
            session, workers=2, result_ttl_seconds=100.0
        ) as server:
            server.prepare(
                "score",
                PREDICT_SQL,
                data={"requests": _request_row(30.0, 50.0)},
                batch=True,
                cache_results=True,
            )
            row = {"requests": _request_row(33.0, 44.0)}
            first = server.submit("score", data=row)
            server.flush_batchers()
            first.result(timeout=30)
            hits_before = server.result_cache.stats()["hits"]
            second = server.submit("score", data=row)
            assert second.result(timeout=30).column("pred")[0] == (
                first.result().column("pred")[0]
            )
            assert server.result_cache.stats()["hits"] == hits_before + 1
            # A new model version drops the cached prediction.
            database.store_model(
                "approval",
                pipeline,
                metadata={"feature_names": ["age", "income"]},
            )
            assert server.result_cache.stats()["size"] == 0

    def test_malformed_request_rejected_at_admission(self, session):
        """One bad request must not poison the shared micro-batch."""
        with RavenServer(
            session, workers=2, batch_max_rows=8, batch_max_wait_seconds=0.005
        ) as server:
            server.prepare(
                "score",
                PREDICT_SQL,
                data={"requests": _request_row(30.0, 50.0)},
                batch=True,
            )
            good = [
                server.submit(
                    "score", data={"requests": _request_row(25.0 + i, 60.0)}
                )
                for i in range(3)
            ]
            # Reversed column order is normalized to the template...
            reordered = server.submit(
                "score",
                data={
                    "requests": Table.from_dict(
                        {"income": np.array([60.0]), "age": np.array([28.0])}
                    )
                },
            )
            # ...but a missing column is rejected synchronously, alone.
            with pytest.raises(ServingError, match="does not match"):
                server.submit(
                    "score",
                    data={"requests": Table.from_dict({"age": np.array([1.0])})},
                )
            server.flush_batchers()
            wait(good + [reordered], timeout=30)
            assert all(f.result().num_rows == 1 for f in good)
            assert reordered.result().num_rows == 1

    def test_shutdown_unregisters_model_listener(self, session, serving_setup):
        database, _pipeline = serving_setup
        listeners_before = len(database._model_listeners)
        server = RavenServer(session, workers=1)
        assert len(database._model_listeners) == listeners_before + 1
        server.shutdown()
        assert len(database._model_listeners) == listeners_before

    def test_ad_hoc_sql(self, session):
        with RavenServer(session, workers=1) as server:
            out = server.submit_sql(
                "SELECT id FROM applicants ORDER BY id LIMIT 3"
            ).result(timeout=30)
        assert out["id"].tolist() == [0, 1, 2]


class TestStatsEpochReplan:
    """Cached plans are stats-epoch-addressed: ANALYZE forces a replan."""

    def test_replan_after_analyze(self, session, serving_setup):
        database, _pipeline = serving_setup
        prepared = session.prepare(FILTER_SQL)
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0
        epoch_before = database.catalog.stats_epoch("applicants")
        database.execute("ANALYZE applicants")
        assert database.catalog.stats_epoch("applicants") > epoch_before
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1
        # The refreshed plan records the new epoch and is stable.
        assert dict(prepared._entry.stats_epochs)["applicants"] == (
            database.catalog.stats_epoch("applicants")
        )
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1

    def test_small_write_does_not_replan(self, session, serving_setup):
        database, _pipeline = serving_setup
        prepared = session.prepare(FILTER_SQL)
        prepared.execute(params=(40.0,))
        # A sub-threshold, in-range write (the routine append shape)
        # keeps the stats epoch, so the hot serving path never
        # stampedes into re-preparation.
        database.execute(
            "INSERT INTO applicants VALUES (600, 55.0, 55.0)"
        )
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0
        database.execute("DELETE FROM applicants WHERE id = 600")
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0

    def test_fresh_prepare_after_analyze_skips_stale_cache_entry(
        self, session, serving_setup
    ):
        database, _pipeline = serving_setup
        first = session.prepare(FILTER_SQL)
        database.execute("ANALYZE applicants")
        second = session.prepare(FILTER_SQL)
        assert second._entry is not first._entry  # stale entry not reused
        assert dict(second._entry.stats_epochs)["applicants"] == (
            database.catalog.stats_epoch("applicants")
        )

    def test_cached_plan_records_memo_rules(self, session, serving_setup):
        prepared = session.prepare(FILTER_SQL)
        fired = " ".join(prepared._entry.rules_fired)
        # The memo search's exploration log rides on the cached plan.
        assert "PushFilterBelowPredict" in fired


class TestColumnEpochReplan:
    """Plan invalidation is column-granular: a drift in a column the
    plan never references keeps the plan hot; a drift in a referenced
    column replans."""

    @pytest.fixture()
    def profile_session(self):
        database = Database()
        rng = np.random.default_rng(4)
        n = 500
        database.register_table(
            "profiles",
            Table.from_dict(
                {
                    "id": np.arange(n, dtype=np.int64),
                    "age": rng.uniform(18.0, 90.0, n),
                    "extra": rng.uniform(0.0, 1.0, n),
                }
            ),
        )
        return database, RavenSession(database)

    def test_untouched_column_drift_keeps_plan_hot(self, profile_session):
        database, session = profile_session
        prepared = session.prepare(
            "SELECT id FROM profiles WHERE age > ? ORDER BY id"
        )
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0
        epochs = {
            column: epoch
            for _t, column, epoch in prepared._entry.column_epochs
        }
        assert set(epochs) == {"id", "age"}  # `extra` is not referenced
        # Rewrite `extra` far outside its old range: per-column drift.
        database.catalog.table_statistics("profiles")
        table_epoch = database.catalog.stats_epoch("profiles")
        database.execute("UPDATE profiles SET extra = extra + 1000000")
        assert database.catalog.stats_epoch("profiles") > table_epoch
        assert database.catalog.column_stats_epoch(
            "profiles", "extra"
        ) > epochs["age"]
        assert database.catalog.column_stats_epoch(
            "profiles", "age"
        ) == epochs["age"]
        prepared.execute(params=(40.0,))
        assert prepared.replans == 0  # plan never read `extra`: stays hot

    def test_referenced_column_drift_replans(self, profile_session):
        database, session = profile_session
        prepared = session.prepare(
            "SELECT id FROM profiles WHERE age > ? ORDER BY id"
        )
        prepared.execute(params=(40.0,))
        database.catalog.table_statistics("profiles")
        database.execute("UPDATE profiles SET age = age + 1000000")
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1
        prepared.execute(params=(40.0,))
        assert prepared.replans == 1  # refreshed plan is stable
