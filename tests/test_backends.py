"""Tests for pluggable compiled scoring backends.

Covers backend equivalence (row-identical predictions across numpy /
fused / numba for randomized pipelines, including empty and singleton
batches), the memo's cost-based backend crossover (interpreter at small
batches, compiled at large scans, asserted via EXPLAIN), the process-wide
graph-optimization memo and its ``session_cache.*`` events, calibration
persistence in the catalog, and the distributed fragment protocol
carrying the backend choice.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import TensorError
from repro.distributed import serialize, worker
from repro.distributed.operators import ShardScan
from repro.distributed.shards import ShardedTable, ShardingSpec
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    LinearRegression,
    MLPRegressor,
    Pipeline,
    StandardScaler,
)
from repro.ml.ensemble import GradientBoostingRegressor, RandomForestRegressor
from repro.observability import events
from repro.observability.metrics import ServingMetrics
from repro.relational.algebra import logical
from repro.relational.algebra.executor import ExecutionOptions
from repro.relational.database import Database
from repro.relational.table import Table
from repro.tensor.backends import (
    BACKENDS,
    available_compiled_backends,
    compiled_pipeline_scorer,
    resolve_backend,
)
from repro.tensor.backends import calibrate
from repro.tensor.backends.fused import FusedExecutor
from repro.tensor.backends.numba_backend import numba_available
from repro.tensor.converters import convert, supports
from repro.tensor.session import InferenceSession, clear_optimization_memo

N_FEATURES = 5


@pytest.fixture(autouse=True)
def _clean_bus():
    events.BUS.reset()
    yield
    events.BUS.reset()


def _training_data(seed=0, n=400):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, N_FEATURES))
    y = X[:, 0] * 2.0 - X[:, 1] + 0.25 * rng.normal(size=n)
    return X, y


def _linear(seed):
    X, y = _training_data(seed)
    return Pipeline(
        [("scale", StandardScaler()), ("lr", LinearRegression())]
    ).fit(X, y)


def _tree(seed):
    X, y = _training_data(seed)
    return DecisionTreeRegressor(max_depth=6, random_state=seed).fit(X, y)


def _forest(seed):
    X, y = _training_data(seed)
    return RandomForestRegressor(
        n_estimators=12, max_depth=4, random_state=seed
    ).fit(X, y)


def _gbr(seed):
    X, y = _training_data(seed)
    return GradientBoostingRegressor(
        n_estimators=15, max_depth=3, random_state=seed
    ).fit(X, y)


def _mlp(seed):
    X, y = _training_data(seed)
    return MLPRegressor(
        hidden_layer_sizes=(8,), max_iter=30, random_state=seed
    ).fit(X, y)


def _classifier(seed):
    X, y = _training_data(seed)
    return Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=5, random_state=seed)),
        ]
    ).fit(X, (y > 0).astype(np.float64))


MODELS = {
    "linear": _linear,
    "tree": _tree,
    "forest": _forest,
    "gbr": _gbr,
    "mlp": _mlp,
    "classifier": _classifier,
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("batch", [0, 1, 7, 3000])
    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_row_identical_across_backends(self, kind, batch):
        model = MODELS[kind](seed=11)
        graph = convert(model, n_features=N_FEATURES)
        rng = np.random.default_rng(batch + 1)
        X = rng.normal(size=(batch, N_FEATURES))
        sessions = {
            name: InferenceSession(graph, backend=name) for name in BACKENDS
        }
        reference = sessions["numpy"].run({graph.inputs[0]: X})
        for name in ("fused", "numba"):
            outputs = sessions[name].run({graph.inputs[0]: X})
            assert len(outputs) == len(reference)
            for got, want in zip(outputs, reference):
                assert got.shape == want.shape
                np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_fused_executor_actually_fuses_tree_ensembles(self):
        model = _forest(seed=3)
        session = InferenceSession(
            convert(model, n_features=N_FEATURES), backend="fused"
        )
        assert isinstance(session._executor, FusedExecutor)
        assert session._executor.fused_tree_steps >= 1

    def test_fused_executor_fuses_elementwise_chains(self):
        # StandardScaler lowers to Sub -> Div, a two-op elementwise run.
        session = InferenceSession(
            convert(_linear(seed=5), n_features=N_FEATURES), backend="fused"
        )
        assert session._executor.fused_chain_steps >= 1

    def test_compiled_scorer_matches_interpreted_predict(self):
        model = _forest(seed=7)
        score = compiled_pipeline_scorer(model, N_FEATURES, "fused")
        assert score is not None and score.backend == "fused"
        X = np.random.default_rng(9).normal(size=(500, N_FEATURES))
        np.testing.assert_allclose(
            score(X), model.predict(X), rtol=1e-9, atol=1e-9
        )

    def test_compiled_scorer_tolerates_wider_matrix_like_interpreter(self):
        # Bare tree predictors address columns by split index, so the
        # interpreter silently ignores extra trailing columns; the
        # shape-exact GEMM path must reproduce that.
        model = _forest(seed=13)
        score = compiled_pipeline_scorer(model, None, "fused")
        wide = np.random.default_rng(1).normal(size=(64, N_FEATURES + 3))
        np.testing.assert_allclose(
            score(wide), model.predict(wide), rtol=1e-9, atol=1e-9
        )

    def test_unsupported_payload_returns_none(self):
        assert compiled_pipeline_scorer(object(), 4, "fused") is None
        assert not supports(object())
        assert supports(_forest(seed=1))


class TestBackendResolution:
    def test_unknown_backend_raises(self):
        graph = convert(_tree(seed=1), n_features=N_FEATURES)
        with pytest.raises(TensorError):
            InferenceSession(graph, backend="tvm")
        with pytest.raises(TensorError):
            resolve_backend("tvm", graph, graph.topological_order(), None)

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; fallback not exercised"
    )
    def test_numba_degrades_to_numpy_when_absent(self):
        session = InferenceSession(
            convert(_tree(seed=1), n_features=N_FEATURES), backend="numba"
        )
        assert session.backend == "numba"
        assert session.effective_backend == "numpy"
        assert available_compiled_backends() == ("fused",)

    @pytest.mark.skipif(
        not numba_available(), reason="numba not installed"
    )
    def test_numba_is_offered_when_present(self):
        assert available_compiled_backends() == ("fused", "numba")
        session = InferenceSession(
            convert(_forest(seed=1), n_features=N_FEATURES), backend="numba"
        )
        assert session.effective_backend == "numba"

    def test_compiled_backends_degrade_on_simulated_device(self):
        # The simulated GPU's analytical accounting is per-op; fusing
        # under it would silently change modelled time, so compiled
        # requests degrade to the interpreter there.
        session = InferenceSession(
            convert(_forest(seed=1), n_features=N_FEATURES),
            device="gpu",
            backend="fused",
        )
        assert session.effective_backend == "numpy"

    def test_backend_run_event_carries_effective_backend(self):
        seen = []
        events.BUS.subscribe(lambda e: seen.append(e), pattern="backend.run")
        session = InferenceSession(
            convert(_forest(seed=1), n_features=N_FEATURES), backend="fused"
        )
        session.run_single(np.zeros((3, N_FEATURES)))
        assert seen and seen[-1].attrs["backend"] == "fused"
        assert seen[-1].attrs["rows"] == 3


class TestGraphOptMemo:
    def test_identical_graphs_share_one_optimization(self):
        clear_optimization_memo()
        seen = []
        events.BUS.subscribe(
            lambda e: seen.append(e.name)
            if e.name.startswith("session_cache.graph_opt_")
            else None,
            pattern="session_cache.*",
        )
        model = _forest(seed=21)
        g1 = convert(model, n_features=N_FEATURES)
        g2 = convert(model, n_features=N_FEATURES)
        s1 = InferenceSession(g1)
        s2 = InferenceSession(g2)  # same content hash -> memo hit
        assert seen == [
            "session_cache.graph_opt_miss",
            "session_cache.graph_opt_hit",
        ]
        assert s1.graph is s2.graph

    def test_pass_profiles_do_not_collide(self):
        clear_optimization_memo()
        graph = convert(_forest(seed=22), n_features=N_FEATURES)
        interpreted = InferenceSession(graph, backend="numpy")
        fused = InferenceSession(graph, backend="fused")
        # Fused profile skips matmul+add -> Gemm rewriting to keep tree
        # chains matchable, so the two optimized graphs must differ.
        assert interpreted.graph is not fused.graph

    def test_content_hash_distinguishes_weights(self):
        a = convert(_tree(seed=1), n_features=N_FEATURES)
        b = convert(_tree(seed=2), n_features=N_FEATURES)
        assert a.content_hash() != b.content_hash()
        assert a.content_hash() == convert(
            _tree(seed=1), n_features=N_FEATURES
        ).content_hash()


class TestCalibration:
    def test_default_profiles_have_sane_crossover(self):
        # For the band of per-row interpreter costs real pipelines
        # produce (a handful of trees up to a wide forest), the memo
        # must keep the interpreter at 64 rows and flip to compiled by
        # 8192 — across defaults and both calibration clamp extremes.
        for name in ("fused", "numba"):
            setup, default_scale = calibrate.DEFAULT_PROFILES[name]
            assert setup > 0 and 0 < default_scale < 1
            low, high = calibrate._CLAMPS[name]
            for row_scale in (default_scale, low, high):
                for per_row in (15.0, 380.0):
                    interp_64 = 64 * per_row
                    compiled_64 = setup + 64 * per_row * row_scale
                    assert interp_64 < compiled_64, (name, row_scale, per_row)
                    interp_8k = 8192 * per_row
                    compiled_8k = setup + 8192 * per_row * row_scale
                    assert compiled_8k < interp_8k, (name, row_scale, per_row)

    def test_calibrated_scales_respect_clamps(self):
        calibrate.invalidate_cache()
        profiles = calibrate.profiles()
        for name, (low, high) in calibrate._CLAMPS.items():
            setup, row_scale = profiles[name]
            assert low <= row_scale <= high
            assert setup == calibrate.DEFAULT_PROFILES[name][0]
        calibrate.invalidate_cache()

    def test_catalog_persistence_round_trip(self):
        calibrate.invalidate_cache()
        db = Database()
        stored = {"numpy": [0.0, 1.0], "fused": [25_000.0, 0.2]}
        db.catalog.record_backend_costs(stored)
        assert db.catalog.backend_costs() == stored
        profiles = calibrate.profiles(db.catalog)
        assert profiles["fused"] == (25_000.0, 0.2)
        calibrate.invalidate_cache()


def _scored_db(n_rows, seed=0, distributed=False, shards=4):
    rng = np.random.default_rng(seed)
    model = _forest(seed=17)
    options = (
        ExecutionOptions(max_workers=8, distributed_mode="inprocess")
        if distributed
        else ExecutionOptions(enable_distributed=not distributed)
    )
    db = Database(options=options)
    cols = {"rid": np.arange(n_rows, dtype=np.int64)}
    for j in range(N_FEATURES):
        cols[f"f{j}"] = rng.normal(size=n_rows)
    db.register_table("t", Table.from_dict(cols))
    if distributed:
        db.shard_table("t", "rid", shards)
    db.store_model(
        "m",
        model,
        metadata={"feature_names": [f"f{j}" for j in range(N_FEATURES)]},
    )
    return db, model


PREDICT_SQL = (
    "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
    "WHERE model_name = 'm');"
    "SELECT d.rid, p.y FROM PREDICT(MODEL = @m, DATA = t AS d) "
    "WITH (y float) AS p"
)


class TestOptimizerCrossover:
    def test_small_batch_keeps_interpreter(self):
        db, _ = _scored_db(n_rows=64)
        plan = "\n".join(
            db.execute(PREDICT_SQL.replace("SELECT d.rid", "EXPLAIN SELECT d.rid"))["plan"]
        )
        assert "Predict" in plan
        assert "backend=" not in plan

    def test_large_scan_picks_fused(self):
        db, _ = _scored_db(n_rows=9000)
        plan = "\n".join(
            db.execute(PREDICT_SQL.replace("SELECT d.rid", "EXPLAIN SELECT d.rid"))["plan"]
        )
        assert "backend=fused" in plan

    def test_fused_plan_matches_interpreter_rows(self):
        db, model = _scored_db(n_rows=9000)
        result = db.execute(PREDICT_SQL)
        table = db.catalog.get_table("t")
        matrix = np.column_stack(
            [table.column(f"f{j}") for j in range(N_FEATURES)]
        )
        expected = model.predict(matrix)
        rid = np.asarray(result.column("rid")).astype(int)
        np.testing.assert_allclose(
            np.asarray(result.column("y")), expected[rid], rtol=1e-9, atol=1e-9
        )

    def test_session_cache_keys_backend_and_emits_events(self):
        db, _ = _scored_db(n_rows=9000)
        seen = []
        events.BUS.subscribe(
            lambda e: seen.append((e.name, e.attrs.get("key"))),
            pattern="session_cache.*",
        )
        db.execute(PREDICT_SQL)
        misses = [key for name, key in seen if name == "session_cache.miss"]
        assert any(key and key.endswith("|fused") for key in misses)
        seen.clear()
        db.execute(PREDICT_SQL)
        assert any(name == "session_cache.hit" for name, _ in seen)

    def test_prepared_plan_records_backend_choice(self):
        from repro import RavenSession

        db, _ = _scored_db(n_rows=9000)
        session = RavenSession(db)
        prepared = session.prepare(PREDICT_SQL)
        choices = session.plan_cache.get(prepared.fingerprint).backend_choices
        assert any(backend == "fused" for _ref, backend in choices)
        assert any(ref.startswith("m:v") for ref, _backend in choices)

    def test_explicit_session_backend_wins_over_default(self):
        model = _forest(seed=29)
        graph = convert(model, n_features=N_FEATURES)
        fused = InferenceSession(graph, backend="fused")
        assert fused.backend == "fused"
        assert fused.effective_backend == "fused"


class TestDistributedBackends:
    def test_fragment_codec_round_trips_backend(self):
        model = MODELS["tree"](seed=41)
        schema = Table.from_dict(
            {
                "rid": np.arange(4, dtype=np.int64),
                **{f"f{j}": np.zeros(4) for j in range(N_FEATURES)},
            }
        ).schema
        def _fragment(extra=()):
            return logical.Predict(
                ShardScan("t", schema, None, 4),
                "m",
                (("y", schema.column("f0").dtype),),
                flavor="ml.pipeline",
                payload=model,
                feature_names=tuple(f"f{j}" for j in range(N_FEATURES)),
                extra=extra,
            )

        spec = json.loads(
            json.dumps(serialize.encode_fragment(_fragment((("backend", "fused"),))))
        )
        decoded = serialize.decode_fragment(spec)
        assert dict(decoded.extra)["backend"] == "fused"
        plain = serialize.decode_fragment(
            json.loads(json.dumps(serialize.encode_fragment(_fragment())))
        )
        assert "backend" not in dict(plain.extra or ())

    def test_sharded_predict_matches_single_node(self):
        worker.clear_caches()
        db, model = _scored_db(n_rows=9000, distributed=True)
        baseline, _ = _scored_db(n_rows=9000, distributed=False)
        sql = PREDICT_SQL + " ORDER BY d.rid"
        distributed_rows = db.execute(sql)
        baseline_rows = baseline.execute(sql)
        np.testing.assert_array_equal(
            np.asarray(distributed_rows.column("rid")),
            np.asarray(baseline_rows.column("rid")),
        )
        np.testing.assert_allclose(
            np.asarray(distributed_rows.column("y")),
            np.asarray(baseline_rows.column("y")),
            rtol=1e-9,
            atol=1e-9,
        )


class TestBackendMetrics:
    def test_backend_and_session_cache_events_fold_into_registry(self):
        metrics = ServingMetrics().attach(events.BUS)
        try:
            session = InferenceSession(
                convert(_forest(seed=31), n_features=N_FEATURES),
                backend="fused",
            )
            session.run_single(np.zeros((5, N_FEATURES)))
            events.emit("session_cache.hit", key="m:v1|fused")
            snapshot = metrics.registry.snapshot()
            assert snapshot["backend.fused.runs"] == 1
            assert snapshot["backend.fused.rows"] == 5
            assert snapshot["backend.fused.seconds"]["count"] == 1
            assert snapshot["session_cache.hit"] == 1
        finally:
            metrics.detach()
