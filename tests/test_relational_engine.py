"""Integration tests for binder + executor through Database.execute."""

import numpy as np
import pytest

from repro.errors import BindError, CatalogError, TransactionError
from repro import Table
from repro.ml import DecisionTreeRegressor, Pipeline


class TestSelect:
    def test_projection_and_alias(self, simple_db):
        out = simple_db.execute("SELECT age * 2 AS double_age FROM people")
        assert out["double_age"].tolist() == [50.0, 70.0, 90.0, 110.0]

    def test_where(self, simple_db):
        out = simple_db.execute("SELECT id FROM people WHERE age >= 40")
        assert sorted(out["id"].tolist()) == [3, 4]

    def test_string_predicate(self, simple_db):
        out = simple_db.execute("SELECT id FROM people WHERE city = 'ny'")
        assert sorted(out["id"].tolist()) == [1, 3]

    def test_order_by_multi_key(self, simple_db):
        out = simple_db.execute(
            "SELECT city, age FROM people ORDER BY city ASC, age DESC"
        )
        assert out["city"].tolist() == ["la", "ny", "ny", "sf"]
        assert out["age"].tolist() == [55.0, 45.0, 25.0, 35.0]

    def test_limit_and_top(self, simple_db):
        assert simple_db.execute("SELECT TOP 2 id FROM people").num_rows == 2
        assert simple_db.execute("SELECT id FROM people LIMIT 3").num_rows == 3

    def test_distinct(self, simple_db):
        out = simple_db.execute("SELECT DISTINCT city FROM people")
        assert sorted(out["city"].tolist()) == ["la", "ny", "sf"]

    def test_case_expression(self, simple_db):
        out = simple_db.execute(
            "SELECT CASE WHEN age > 40 THEN 1 ELSE 0 END AS senior "
            "FROM people ORDER BY id"
        )
        assert out["senior"].tolist() == [0.0, 0.0, 1.0, 1.0]

    def test_scalar_functions(self, simple_db):
        out = simple_db.execute("SELECT SQRT(age) AS r FROM people WHERE id = 1")
        assert np.isclose(out["r"][0], 5.0)

    def test_unknown_table(self, simple_db):
        with pytest.raises(BindError):
            simple_db.execute("SELECT * FROM nope")


class TestJoins:
    def test_inner_join(self, simple_db):
        out = simple_db.execute(
            "SELECT p.id, s.salary FROM people AS p "
            "JOIN salaries AS s ON p.id = s.id ORDER BY p.id"
        )
        assert out["id"].tolist() == [1, 2, 3]
        assert out["salary"].tolist() == [50.0, 60.0, 70.0]

    def test_left_join_pads(self, simple_db):
        out = simple_db.execute(
            "SELECT p.id, s.salary FROM people AS p "
            "LEFT JOIN salaries AS s ON p.id = s.id ORDER BY p.id"
        )
        assert out.num_rows == 4
        assert np.isnan(out["salary"][3])

    def test_right_join_normalized(self, simple_db):
        out = simple_db.execute(
            "SELECT s.id FROM people AS p RIGHT JOIN salaries AS s "
            "ON p.id = s.id ORDER BY s.id"
        )
        assert out["id"].tolist() == [1, 2, 3, 5]

    def test_cross_join_cardinality(self, simple_db):
        out = simple_db.execute(
            "SELECT p.id FROM people AS p CROSS JOIN salaries AS s"
        )
        assert out.num_rows == 16

    def test_non_equi_residual(self, simple_db):
        out = simple_db.execute(
            "SELECT p.id FROM people AS p JOIN salaries AS s "
            "ON p.id = s.id AND s.salary > 55 ORDER BY p.id"
        )
        assert out["id"].tolist() == [2, 3]


class TestAggregates:
    def test_group_by(self, simple_db):
        out = simple_db.execute(
            "SELECT city, COUNT(*) AS n, AVG(age) AS mean_age "
            "FROM people GROUP BY city ORDER BY city"
        )
        assert out["city"].tolist() == ["la", "ny", "sf"]
        assert out["n"].tolist() == [1, 2, 1]
        assert out["mean_age"].tolist() == [55.0, 35.0, 35.0]

    def test_global_aggregates(self, simple_db):
        out = simple_db.execute(
            "SELECT COUNT(*) AS n, SUM(age) AS total, MIN(age) AS lo, "
            "MAX(age) AS hi FROM people"
        )
        assert out["n"][0] == 4
        assert out["total"][0] == 160.0
        assert out["lo"][0] == 25.0 and out["hi"][0] == 55.0

    def test_non_grouped_column_rejected(self, simple_db):
        with pytest.raises(BindError):
            simple_db.execute("SELECT age, COUNT(*) AS n FROM people GROUP BY city")


class TestCtesAndUnion:
    def test_cte(self, simple_db):
        out = simple_db.execute(
            "WITH old AS (SELECT * FROM people WHERE age > 30) "
            "SELECT COUNT(*) AS n FROM old"
        )
        assert out["n"][0] == 3

    def test_union_all(self, simple_db):
        out = simple_db.execute(
            "SELECT id FROM people WHERE age < 30 "
            "UNION ALL SELECT id FROM people WHERE age > 50"
        )
        assert sorted(out["id"].tolist()) == [1, 4]


class TestDml:
    def test_insert_update_delete(self, simple_db):
        simple_db.execute("INSERT INTO people (id, age, city) VALUES (9, 99.0, 'ny')")
        assert simple_db.table("people").num_rows == 5
        simple_db.execute("UPDATE people SET age = 100.0 WHERE id = 9")
        out = simple_db.execute("SELECT age FROM people WHERE id = 9")
        assert out["age"][0] == 100.0
        simple_db.execute("DELETE FROM people WHERE id = 9")
        assert simple_db.table("people").num_rows == 4

    def test_create_and_drop(self, simple_db):
        simple_db.execute("CREATE TABLE fresh (x int, y float)")
        assert simple_db.table("fresh").num_rows == 0
        with pytest.raises(CatalogError):
            simple_db.execute("CREATE TABLE fresh (x int)")
        simple_db.execute("DROP TABLE fresh")
        with pytest.raises(BindError):
            simple_db.execute("SELECT * FROM fresh")

    def test_insert_select(self, simple_db):
        simple_db.execute("CREATE TABLE ny_people (id int, age float)")
        simple_db.execute(
            "INSERT INTO ny_people SELECT id, age FROM people WHERE city = 'ny'"
        )
        assert simple_db.table("ny_people").num_rows == 2


class TestTransactions:
    def test_rollback_restores_table_and_models(self, simple_db):
        simple_db.execute("BEGIN TRANSACTION")
        simple_db.execute("DELETE FROM people")
        simple_db.store_model("m", object(), flavor="ml.pipeline")
        assert simple_db.table("people").num_rows == 0
        simple_db.execute("ROLLBACK")
        assert simple_db.table("people").num_rows == 4
        with pytest.raises(CatalogError):
            simple_db.get_model("m")

    def test_commit_keeps_changes(self, simple_db):
        simple_db.execute("BEGIN TRANSACTION")
        simple_db.execute("DELETE FROM people WHERE id = 1")
        simple_db.execute("COMMIT")
        assert simple_db.table("people").num_rows == 3

    def test_double_begin_rejected(self, simple_db):
        simple_db.execute("BEGIN TRANSACTION")
        with pytest.raises(TransactionError):
            simple_db.execute("BEGIN TRANSACTION")
        simple_db.execute("ROLLBACK")

    def test_commit_without_begin(self, simple_db):
        with pytest.raises(TransactionError):
            simple_db.execute("COMMIT")


class TestModelStore:
    def test_versioning_and_audit(self, simple_db):
        simple_db.store_model("m", "v1-payload", flavor="python.script")
        simple_db.store_model("m", "v2-payload", flavor="python.script")
        assert simple_db.get_model("m").version == 2
        assert simple_db.get_model("m", version=1).payload == "v1-payload"
        assert simple_db.get_model("m:v1").payload == "v1-payload"
        log = simple_db.catalog.audit_log(["store_model"])
        assert len(log) == 2

    def test_models_view_queryable(self, simple_db):
        simple_db.store_model("a_model", "payload", flavor="python.script")
        out = simple_db.execute(
            "SELECT model_name, version FROM scoring_models "
            "WHERE model_name = 'a_model'"
        )
        assert out.num_rows == 1
        assert out["version"][0] == 1

    def test_insert_into_models_view_registers_script(self, simple_db):
        simple_db.execute(
            "INSERT INTO models (model_name, model) VALUES "
            "('script_model', 'model_pipeline = 1')"
        )
        entry = simple_db.get_model("script_model")
        assert entry.flavor == "python.script"


class TestPredictStatement:
    def test_native_scoring_end_to_end(self, simple_db):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 2))
        y = X[:, 0] * 3.0 + 1.0
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=6))]).fit(X, y)
        simple_db.register_table(
            "inputs",
            Table.from_dict({"f1": X[:, 0], "f2": X[:, 1]}),
        )
        simple_db.store_model(
            "reg", pipe, metadata={"feature_names": ["f1", "f2"]}
        )
        out = simple_db.execute(
            "DECLARE @m varbinary(max) = "
            "(SELECT model FROM scoring_models WHERE model_name = 'reg');"
            "SELECT d.f1, p.yhat FROM PREDICT(MODEL = @m, DATA = inputs AS d) "
            "WITH (yhat float) AS p"
        )
        assert out.num_rows == 300
        expected = pipe.predict(X)
        assert np.allclose(np.asarray(out["yhat"]), expected)

    def test_session_cache_hits(self, simple_db):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=3))]).fit(
            X, X[:, 0]
        )
        simple_db.register_table(
            "inputs", Table.from_dict({"f1": X[:, 0], "f2": X[:, 1]})
        )
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        query = (
            "DECLARE @m varbinary(max) = "
            "(SELECT model FROM scoring_models WHERE model_name = 'reg');"
            "SELECT p.yhat FROM PREDICT(MODEL = @m, DATA = inputs AS d) "
            "WITH (yhat float) AS p"
        )
        simple_db.execute(query)
        misses = simple_db.session_cache.misses
        simple_db.execute(query)
        assert simple_db.session_cache.misses == misses  # second run cached
        assert simple_db.session_cache.hits >= 1

    def test_fresh_data_injection(self, simple_db):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 2))
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=3))]).fit(
            X, X[:, 1]
        )
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        fresh = Table.from_dict({"f1": X[:, 0], "f2": X[:, 1]})
        out = simple_db.execute(
            "DECLARE @m varbinary(max) = "
            "(SELECT model FROM scoring_models WHERE model_name = 'reg');"
            "SELECT p.yhat FROM PREDICT(MODEL = @m, DATA = fresh AS d) "
            "WITH (yhat float) AS p",
            data={"fresh": fresh},
        )
        assert out.num_rows == 40


class TestSessionCache:
    """LRU + invalidation contract of the scorer session cache."""

    def test_lru_eviction_order(self):
        from repro.relational.database import SessionCache

        cache = SessionCache(capacity=3)
        for key in ("a:v1", "b:v1", "c:v1"):
            cache.get_or_create(key, lambda k=key: k.upper())
        # Touch a:v1 so b:v1 becomes least recently used.
        cache.get_or_create("a:v1", lambda: "never called")
        cache.get_or_create("d:v1", lambda: "D")
        assert cache.keys() == ["c:v1", "a:v1", "d:v1"]
        # Evicted entry is rebuilt on next access (a miss, not stale data).
        misses = cache.misses
        cache.get_or_create("b:v1", lambda: "B2")
        assert cache.misses == misses + 1

    def test_invalidate_model_drops_all_versions(self):
        from repro.relational.database import SessionCache

        cache = SessionCache()
        cache.get_or_create("reg:v1", lambda: "r1")
        cache.get_or_create("reg:v2", lambda: "r2")
        cache.get_or_create("other:v1", lambda: "o1")
        assert cache.invalidate_model("REG") == 2
        assert cache.keys() == ["other:v1"]

    def test_store_model_invalidates_stale_sessions(self, simple_db):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 2))
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=3))]).fit(
            X, X[:, 0]
        )
        simple_db.register_table(
            "inputs", Table.from_dict({"f1": X[:, 0], "f2": X[:, 1]})
        )
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        query = (
            "DECLARE @m varbinary(max) = "
            "(SELECT model FROM scoring_models WHERE model_name = 'reg');"
            "SELECT p.yhat FROM PREDICT(MODEL = @m, DATA = inputs AS d) "
            "WITH (yhat float) AS p"
        )
        simple_db.execute(query)
        assert len(simple_db.session_cache) == 1
        # A repeated store under the same name drops every cached session
        # for that model, not just the latest version's key.
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        assert len(simple_db.session_cache) == 0

    def test_invalidation_on_transaction_rollback(self, simple_db):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 2))
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=3))]).fit(
            X, X[:, 0]
        )
        simple_db.register_table(
            "inputs", Table.from_dict({"f1": X[:, 0], "f2": X[:, 1]})
        )
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        simple_db.execute("BEGIN TRANSACTION")
        other = Pipeline([("m", DecisionTreeRegressor(max_depth=2))]).fit(
            X, -X[:, 0]
        )
        simple_db.store_model("reg", other, metadata={"feature_names": ["f1", "f2"]})
        query = (
            "DECLARE @m varbinary(max) = "
            "(SELECT model FROM scoring_models WHERE model_name = 'reg');"
            "SELECT p.yhat FROM PREDICT(MODEL = @m, DATA = inputs AS d) "
            "WITH (yhat float) AS p"
        )
        simple_db.execute(query)  # caches a scorer for reg:v2
        simple_db.execute("ROLLBACK")
        # The rollback removed v2; a later store reuses version number 2
        # with a different payload, so the cached v2 scorer must be gone.
        assert len(simple_db.session_cache) == 0
        simple_db.store_model("reg", pipe, metadata={"feature_names": ["f1", "f2"]})
        out = simple_db.execute(query)
        expected = pipe.predict(X)
        assert np.allclose(np.asarray(out["yhat"]), expected)

    def test_declared_scalar_variable_in_where(self, simple_db):
        out = simple_db.execute(
            "DECLARE @cutoff INT = 40; "
            "SELECT id FROM people WHERE age >= @cutoff"
        )
        assert sorted(out["id"].tolist()) == [3, 4]
