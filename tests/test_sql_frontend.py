"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.relational.expressions import BinaryOp, CaseWhen, ColumnRef, InList, Literal
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.lexer import TokenType, tokenize
from repro.relational.sql.parser import parse, parse_expression, parse_statement
from repro.relational.types import DataType


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("SELECT foo FROM bar")
        assert [t.type for t in tokens[:4]] == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ]

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block\ncomment */ + 2")
        values = [t.value for t in tokens if t.type is not TokenType.EOF]
        assert values == ["SELECT", "1", "+", "2"]

    def test_variable_and_bracket_identifier(self):
        tokens = tokenize("@model [weird name]")
        assert tokens[0].type is TokenType.VARIABLE
        assert tokens[0].value == "model"
        assert tokens[1].value == "weird name"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3", "2.5e-2"]

    def test_operators_normalized(self):
        tokens = tokenize("a != b <> c")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<>", "<>"]

    def test_line_numbers_in_errors(self):
        with pytest.raises(SQLSyntaxError) as info:
            tokenize("SELECT\n  #")
        assert info.value.line == 2


class TestParserStatements:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b AS bee FROM t WHERE a > 1")
        assert isinstance(stmt, ast.SelectStatement)
        assert stmt.items[1].alias == "bee"
        assert isinstance(stmt.where, BinaryOp)

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert stmt.items[0].star and stmt.items[0].star_qualifier is None
        assert stmt.items[1].star_qualifier == "t"

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.id "
            "LEFT JOIN c ON b.id = c.id CROSS JOIN d"
        )
        kinds = [j.kind for j in stmt.joins]
        assert kinds == ["INNER", "LEFT", "CROSS"]
        assert stmt.joins[2].condition is None

    def test_ctes_and_union(self):
        stmt = parse_statement(
            "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM u) "
            "SELECT a FROM x UNION ALL SELECT a FROM y"
        )
        assert [name for name, _ in stmt.ctes] == ["x", "y"]
        assert len(stmt.union) == 1

    def test_group_order_limit(self):
        stmt = parse_statement(
            "SELECT city, COUNT(*) AS n FROM t GROUP BY city "
            "ORDER BY n DESC LIMIT 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_top(self):
        assert parse_statement("SELECT TOP 3 a FROM t").limit == 3

    def test_predict_table(self):
        stmt = parse_statement(
            "SELECT d.id, p.out FROM PREDICT(MODEL = @m, DATA = data AS d) "
            "WITH (out float, score float) AS p WHERE p.out > 1"
        )
        source = stmt.source
        assert isinstance(source, ast.PredictTable)
        assert source.model_variable == "m"
        assert source.alias == "p"
        assert source.data_alias == "d"
        assert source.output_columns == (
            ("out", DataType.FLOAT),
            ("score", DataType.FLOAT),
        )

    def test_declare_with_subquery(self):
        stmt = parse_statement(
            "DECLARE @model varbinary(max) = "
            "(SELECT model FROM models WHERE model_name = 'x')"
        )
        assert isinstance(stmt, ast.DeclareStatement)
        assert stmt.subquery is not None

    def test_declare_with_literal(self):
        stmt = parse_statement("DECLARE @k int = 5")
        assert isinstance(stmt.value, Literal)

    def test_insert_values_and_select(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(stmt, ast.InsertStatement)
        assert len(stmt.rows) == 2
        stmt2 = parse_statement("INSERT INTO t SELECT a, b FROM u")
        assert stmt2.select is not None

    def test_create_drop_delete_update(self):
        create = parse_statement("CREATE TABLE t (a int, b varchar(10))")
        assert create.columns == (
            ("a", DataType.INT),
            ("b", DataType.STRING),
        )
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTableStatement)
        delete = parse_statement("DELETE FROM t WHERE a = 1")
        assert delete.where is not None
        update = parse_statement("UPDATE t SET a = 2, b = 'z' WHERE a = 1")
        assert len(update.assignments) == 2

    def test_transactions(self):
        script = parse("BEGIN TRANSACTION; COMMIT; ROLLBACK")
        actions = [s.action for s in script.statements]
        assert actions == ["begin", "commit", "rollback"]

    def test_exec_external_script(self):
        stmt = parse_statement(
            "EXEC sp_execute_external_script @language = 'python', "
            "@script = 'output = 1'"
        )
        assert isinstance(stmt, ast.ExecStatement)
        assert dict(stmt.parameters)["language"].value == "python"

    def test_batch_with_semicolons(self):
        script = parse("SELECT 1 AS one FROM t; SELECT 2 AS two FROM t;")
        assert len(script.statements) == 2

    def test_syntax_error_unbalanced_paren(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t WHERE (a > 1")

    def test_syntax_error_bad_statement_start(self):
        with pytest.raises(SQLSyntaxError):
            parse("FROB the database")


class TestParserExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert expr.right.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_between_desugars(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert expr.op == "AND"
        assert expr.left.op == ">="
        assert expr.right.op == "<="

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert expr.values == (1, 2, 3)

    def test_case_when(self):
        expr = parse_expression(
            "CASE WHEN x > 1 THEN 10 WHEN x > 0 THEN 5 ELSE 0 END"
        )
        assert isinstance(expr, CaseWhen)
        assert len(expr.branches) == 2

    def test_dotted_column(self):
        expr = parse_expression("t.col")
        assert isinstance(expr, ColumnRef)
        assert expr.name == "t.col"
        assert expr.unqualified == "col"

    def test_unary_minus_and_cast(self):
        negated = parse_expression("-3")
        assert negated.op == "-" and negated.operand.value == 3
        expr = parse_expression("CAST(x AS float)")
        assert isinstance(expr, ColumnRef)

    def test_function_with_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.name == "COUNT"
        assert isinstance(expr.args[0], ColumnRef)
