"""Shared fixtures: small seeded datasets and prebuilt databases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.data import flights, hospital
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)


@pytest.fixture(autouse=True)
def _no_leaked_pool_runtimes():
    """Fail any test that leaves a live worker pool behind.

    ``Database.close()`` must always tear down the distributed runtime's
    process pool; a leaked pool outlives the test and starves later
    fork-based tests of file descriptors. The check compares *pools*,
    not runtimes — ``database.distributed`` lazily creates a (poolless)
    runtime for stats snapshots, which is harmless.
    """
    from repro.distributed.runtime import live_pool_runtimes

    before = set(id(rt) for rt in live_pool_runtimes())
    yield
    leaked = [rt for rt in live_pool_runtimes() if id(rt) not in before]
    for runtime in leaked:
        runtime.shutdown()
    assert not leaked, (
        f"test leaked {len(leaked)} distributed pool runtime(s); "
        "close() the Database (or use it as a context manager)"
    )


@pytest.fixture(scope="session")
def hospital_small():
    """(database, dataset, pipeline) with 2000 hospital rows."""
    return hospital.setup_database(2000, seed=7, max_depth=6)


@pytest.fixture(scope="session")
def flights_small():
    """(database, dataset, pipeline) with 3000 flight rows."""
    return flights.setup_database(3000, seed=11)


@pytest.fixture()
def simple_db():
    """A tiny two-table database for relational tests."""
    db = Database()
    db.register_table(
        "people",
        Table.from_dict(
            {
                "id": np.array([1, 2, 3, 4], dtype=np.int64),
                "age": np.array([25.0, 35.0, 45.0, 55.0]),
                "city": np.array(["ny", "sf", "ny", "la"]),
            }
        ),
    )
    db.register_table(
        "salaries",
        Table.from_dict(
            {
                "id": np.array([1, 2, 3, 5], dtype=np.int64),
                "salary": np.array([50.0, 60.0, 70.0, 80.0]),
            }
        ),
    )
    return db


@pytest.fixture(scope="session")
def xy_binary():
    """A separable binary classification problem with known dead features."""
    rng = np.random.default_rng(3)
    X = rng.normal(size=(800, 6))
    w = np.array([2.0, 0.0, -1.5, 0.0, 1.0, 0.0])
    y = (X @ w + rng.normal(scale=0.3, size=800) > 0).astype(np.float64)
    return X, y


@pytest.fixture(scope="session")
def fitted_tree_pipeline(xy_binary):
    X, y = xy_binary
    pipe = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", DecisionTreeClassifier(max_depth=5, random_state=0)),
        ]
    )
    return pipe.fit(X, y)


@pytest.fixture(scope="session")
def fitted_logistic_pipeline(xy_binary):
    X, y = xy_binary
    pipe = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", LogisticRegression(penalty="l1", C=0.02, max_iter=600)),
        ]
    )
    return pipe.fit(X, y)


@pytest.fixture()
def raven(hospital_small):
    database, _dataset, _pipeline = hospital_small
    return RavenSession(database)
