"""Additional coverage: edge cases across layers that the main suites skip."""

import numpy as np
import pytest

from repro import Database, RavenSession, Table
from repro.core.analysis.knowledge_base import DEFAULT_KNOWLEDGE_BASE, KnowledgeBase
from repro.core.optimizer.cost import DEFAULT_ROWS, estimate_rows, plan_cost
from repro.core.optimizer.rule import RuleContext
from repro.errors import (
    BindError,
    ExecutionError,
    RavenError,
    ReproError,
    SQLSyntaxError,
)
from repro.ml import DecisionTreeRegressor, Pipeline
from repro.relational.algebra import logical
from repro.relational.types import DataType, Schema


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (BindError, ExecutionError, SQLSyntaxError, RavenError):
            assert issubclass(exc_type, ReproError)

    def test_sql_error_carries_position(self):
        error = SQLSyntaxError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)


class TestLogicalPlanPrinter:
    def test_plan_to_string_structure(self, simple_db):
        plan = simple_db.bind(
            "SELECT p.id FROM people AS p JOIN salaries AS s ON p.id = s.id "
            "WHERE p.age > 30 LIMIT 2"
        )
        text = logical.plan_to_string(plan)
        assert "Scan people AS p" in text
        assert "Join INNER" in text
        assert "Limit 2" in text
        # indentation encodes the tree
        assert text.splitlines()[0].startswith("Limit")


class TestEmptyInputs:
    def test_empty_table_through_full_query(self):
        db = Database()
        db.register_table(
            "t",
            Table.from_dict({"a": np.empty(0), "b": np.empty(0)}),
        )
        out = db.execute(
            "SELECT a, a + b AS s FROM t WHERE a > 1 ORDER BY a LIMIT 5"
        )
        assert out.num_rows == 0
        assert out.schema.names == ("a", "s")

    def test_empty_join_sides(self, simple_db):
        simple_db.execute("DELETE FROM salaries")
        out = simple_db.execute(
            "SELECT p.id FROM people AS p JOIN salaries AS s ON p.id = s.id"
        )
        assert out.num_rows == 0

    def test_aggregate_over_empty(self):
        db = Database()
        db.register_table("t", Table.from_dict({"x": np.empty(0)}))
        out = db.execute("SELECT COUNT(*) AS n, SUM(x) AS s FROM t")
        assert out["n"][0] == 0
        assert out["s"][0] == 0.0

    def test_predict_over_empty_input(self):
        db = Database()
        X = np.arange(10.0).reshape(-1, 2)
        pipe = Pipeline([("m", DecisionTreeRegressor(max_depth=2))]).fit(
            X, X[:, 0]
        )
        db.store_model("m", pipe, metadata={"feature_names": ["a", "b"]})
        db.register_table(
            "t", Table.from_dict({"a": np.empty(0), "b": np.empty(0)})
        )
        out = db.execute(
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'm');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = t AS d) "
            "WITH (y float) AS p"
        )
        assert out.num_rows == 0


class TestKnowledgeBase:
    def test_lookup_by_full_path_and_tail(self):
        assert DEFAULT_KNOWLEDGE_BASE.lookup(
            "sklearn.preprocessing.StandardScaler"
        ) is not None
        assert DEFAULT_KNOWLEDGE_BASE.lookup("StandardScaler") is not None
        assert DEFAULT_KNOWLEDGE_BASE.lookup("no.such.Thing") is None

    def test_runtime_registration(self):
        kb = KnowledgeBase()

        class CustomFeaturizer:
            pass

        kb.register("my.lib.CustomFeaturizer", CustomFeaturizer, "transformer")
        entry = kb.lookup("my.lib.CustomFeaturizer")
        assert entry is not None and entry.constructor is CustomFeaturizer

    def test_known_paths_cover_both_spellings(self):
        paths = DEFAULT_KNOWLEDGE_BASE.known_paths()
        assert any(p.startswith("sklearn.") for p in paths)
        assert any(p.startswith("repro.ml") for p in paths)


class TestCostModel:
    def test_default_rows_without_database(self):
        from repro.core.ir.graph import IRGraph

        graph = IRGraph()
        scan = graph.add(
            "ra.scan", table="ghost", schema=Schema.of(("a", DataType.FLOAT))
        )
        graph.set_output(scan)
        context = RuleContext()  # no database attached
        assert estimate_rows(graph, scan, context) == float(DEFAULT_ROWS)

    def test_filter_reduces_estimated_rows(self, simple_db):
        from repro.core.analysis import SQLAnalyzer

        graph_all = SQLAnalyzer(simple_db).analyze("SELECT id FROM people")
        graph_some = SQLAnalyzer(simple_db).analyze(
            "SELECT id FROM people WHERE age > 30 AND id > 1"
        )
        context = RuleContext(database=simple_db)
        assert plan_cost(graph_some, context) != plan_cost(graph_all, context)
        filter_node = graph_some.find("ra.filter")[0]
        scan = graph_some.find("ra.scan")[0]
        assert estimate_rows(graph_some, filter_node, context) < estimate_rows(
            graph_some, scan, context
        )


class TestBinderEdges:
    def test_having(self, simple_db):
        out = simple_db.execute(
            "SELECT city, COUNT(*) AS n FROM people GROUP BY city "
            "HAVING n > 1"
        )
        assert out["city"].tolist() == ["ny"]

    def test_union_arity_mismatch(self, simple_db):
        with pytest.raises(BindError):
            simple_db.execute(
                "SELECT id, age FROM people UNION ALL SELECT id FROM people"
            )

    def test_union_renames_mismatched_columns(self, simple_db):
        out = simple_db.execute(
            "SELECT id AS k FROM people WHERE id = 1 "
            "UNION ALL SELECT id FROM people WHERE id = 2"
        )
        assert sorted(out["k"].tolist()) == [1, 2]

    def test_duplicate_output_names_deduplicated(self, simple_db):
        out = simple_db.execute("SELECT age, age FROM people LIMIT 1")
        assert out.schema.names == ("age", "age_2")

    def test_expression_select_items_get_names(self, simple_db):
        out = simple_db.execute("SELECT age + 1, age * 2 FROM people LIMIT 1")
        assert out.schema.names == ("expr_1", "expr_2")


class TestAuditLog:
    def test_filtering_and_ordering(self, simple_db):
        simple_db.store_model("m1", "x", flavor="python.script")
        simple_db.execute("DELETE FROM salaries WHERE id = 1")
        log = simple_db.catalog.audit_log()
        actions = [record.action for record in log]
        assert "store_model" in actions and "set_table" in actions
        only_models = simple_db.catalog.audit_log(["store_model"])
        assert all(r.action == "store_model" for r in only_models)
        timestamps = [r.timestamp for r in log]
        assert timestamps == sorted(timestamps)


class TestSessionReuse:
    def test_many_queries_one_session(self, hospital_small):
        db, _, _ = hospital_small
        session = RavenSession(db)
        from repro.data import hospital as hosp

        first = session.execute(hosp.INFERENCE_QUERY)
        for _ in range(3):
            again = session.execute(hosp.INFERENCE_QUERY)
            assert again.table.num_rows == first.table.num_rows

    def test_model_update_changes_results(self):
        """New model versions take effect immediately (versioned catalog +
        cache keyed by qualified name)."""
        db = Database()
        X = np.arange(20.0).reshape(-1, 2)
        low = Pipeline([("m", DecisionTreeRegressor(max_depth=1))]).fit(
            X, np.zeros(10)
        )
        high = Pipeline([("m", DecisionTreeRegressor(max_depth=1))]).fit(
            X, np.ones(10)
        )
        db.register_table(
            "t", Table.from_dict({"a": X[:, 0], "b": X[:, 1]})
        )
        sql = (
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'm' ORDER BY version DESC LIMIT 1);"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = t AS d) "
            "WITH (y float) AS p"
        )
        db.store_model("m", low, metadata={"feature_names": ["a", "b"]})
        assert np.allclose(db.execute(sql)["y"], 0.0)
        db.store_model("m", high, metadata={"feature_names": ["a", "b"]})
        assert np.allclose(db.execute(sql)["y"], 1.0)
