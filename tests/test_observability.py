"""Tests for the observability layer: event bus, traces, metrics,
EXPLAIN ANALYZE, and the serving/database integration points."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Database, RavenServer, RavenSession, Table
from repro.observability import events
from repro.observability import trace as qtrace
from repro.observability.events import EventBus
from repro.observability.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    ServingMetrics,
)
from repro.relational.algebra.executor import ExecutionOptions
from repro.serving.stats import ServingStats

from test_distributed import (
    PREDICT_SQL,
    distributed_db,
    make_table,
    train_pipeline,
)


@pytest.fixture(autouse=True)
def _clean_bus():
    """Each test starts and ends with an unsubscribed process-wide bus."""
    events.BUS.reset()
    yield
    events.BUS.reset()


@pytest.fixture(scope="module")
def shard_table():
    return make_table(20_000, seed=3)


@pytest.fixture(scope="module")
def shard_pipeline(shard_table):
    return train_pipeline(shard_table, n_estimators=10)


# -- event bus ---------------------------------------------------------------


class TestEventBus:
    def test_zero_cost_when_unsubscribed(self):
        bus = EventBus()
        assert not bus.active
        bus.emit("serving.completed", latency_seconds=0.1)
        assert bus.emitted == 0  # early-returned before counting

    def test_callback_and_pattern_matching(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.name), pattern="serving.*")
        bus.emit("serving.completed")
        bus.emit("plan_cache.hit")
        bus.emit("serving.failed")
        assert seen == ["serving.completed", "serving.failed"]

    def test_exact_pattern(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.name), pattern="plan_cache.hit")
        bus.emit("plan_cache.hit")
        bus.emit("plan_cache.miss")
        assert seen == ["plan_cache.hit"]

    def test_queue_subscription_bounded_drop_oldest(self):
        bus = EventBus()
        with bus.subscribe_queue(maxsize=3) as sub:
            for i in range(5):
                bus.emit("serving.completed", i=i)
            drained = sub.drain()
            assert [e.attrs["i"] for e in drained] == [2, 3, 4]
            assert sub.dropped == 2
        assert not bus.active  # close() restored the unsubscribed state

    def test_broken_callback_never_fails_emitter(self):
        bus = EventBus()

        def boom(_event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(boom)
        bus.emit("serving.completed")  # must not raise
        assert bus.stats()["callback_errors"] == 1

    def test_unsubscribe_restores_inactive(self):
        bus = EventBus()
        cb = bus.subscribe(lambda e: None)
        assert bus.active
        bus.unsubscribe(cb)
        assert not bus.active

    def test_event_to_dict_is_json_serializable(self):
        bus = EventBus()
        with bus.subscribe_queue() as sub:
            bus.emit("serving.batch", size=4, requests=2)
            [event] = sub.drain()
        payload = json.loads(json.dumps(event.to_dict()))
        assert payload["name"] == "serving.batch"
        assert payload["size"] == 4


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_histogram_percentiles_interpolate(self):
        hist = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["max"] == 3.0
        assert 0.0 < snap["p50"] <= 2.0
        assert snap["p99"] <= 4.0

    def test_histogram_overflow_reports_observed_max(self):
        hist = Histogram("x", buckets=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(0.99) == 50.0

    def test_registry_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_serving_metrics_fold_events(self):
        bus = EventBus()
        metrics = ServingMetrics().attach(bus)
        try:
            bus.emit("serving.submitted", query="q")
            bus.emit("serving.completed", query="q", latency_seconds=0.01)
            bus.emit("serving.batch", size=8, requests=3)
            bus.emit("plan_cache.hit", fingerprint="f")
            bus.emit("plan_cache.miss", fingerprint="g")
            bus.emit(
                "distributed.gather",
                scanned=2,
                pruned=6,
                fragment_seconds=[0.001, 0.002],
                mode="inprocess",
            )
        finally:
            metrics.detach()
        snap = metrics.registry.snapshot()
        assert snap["serving.submitted"] == 1
        assert snap["serving.completed"] == 1
        assert snap["serving.latency_seconds"]["count"] == 1
        assert snap["serving.batch_size"]["count"] == 1
        assert snap["plan_cache.hit"] == 1
        assert snap["plan_cache.miss"] == 1
        assert snap["distributed.shards_scanned"] == 2
        assert snap["distributed.shards_pruned"] == 6
        assert snap["distributed.fragment_seconds"]["count"] == 2
        assert not bus.active  # detach restored zero-cost state
        json.dumps(snap)  # snapshot must be JSON-serializable

    def test_size_buckets_cover_batch_range(self):
        assert DEFAULT_SIZE_BUCKETS[0] == 1.0
        assert DEFAULT_SIZE_BUCKETS[-1] >= 64.0


# -- traces ------------------------------------------------------------------


class TestTraces:
    def test_span_is_null_when_untraced(self):
        assert qtrace.current_span() is None
        with qtrace.span("anything") as sp:
            assert sp is qtrace.NULL_SPAN
            sp.set("ignored", 1)  # no-op, must not raise

    def test_nested_spans_and_find(self):
        with qtrace.trace_query("q") as trace:
            with qtrace.span("outer"):
                with qtrace.span("inner", detail=1):
                    pass
                with qtrace.span("inner", detail=2):
                    pass
        assert trace.span_count == 4  # root + outer + 2 inner
        [outer] = trace.find("outer")
        assert [s.attrs["detail"] for s in outer.find("inner")] == [1, 2]
        assert trace.root.end is not None

    def test_trace_json_round_trip(self):
        with qtrace.trace_query("q", label="x") as trace:
            with qtrace.span("stage") as sp:
                sp.set("rows", 10)
        payload = json.loads(trace.to_json())
        assert payload["trace"] == "q"
        [stage] = payload["root"]["children"]
        assert stage["attrs"]["rows"] == 10
        assert stage["duration_ms"] >= 0.0

    def test_add_span_attaches_retroactive_child(self):
        with qtrace.trace_query("q") as trace:
            with qtrace.span("gather"):
                qtrace.add_span("fragment", 1.0, 1.5, key=("t", 0))
        [fragment] = trace.find("fragment")
        assert fragment.duration == pytest.approx(0.5)
        [gather] = trace.find("gather")
        assert fragment in gather.children

    def test_wrap_propagates_span_into_plain_callable(self):
        def work():
            with qtrace.span("child"):
                return qtrace.current_span().name

        with qtrace.trace_query("q") as trace:
            with qtrace.span("parent"):
                wrapped = qtrace.wrap(work)
            # Simulate a pool thread: no inherited context.
            ctx_name = wrapped()
        assert ctx_name == "child"
        [parent] = trace.find("parent")
        assert [c.name for c in parent.children] == ["child"]

    def test_wrap_is_identity_when_untraced(self):
        def work():
            return 1

        assert qtrace.wrap(work) is work

    def test_span_cap_degrades_to_null(self):
        with qtrace.trace_query("q") as trace:
            for _ in range(qtrace.MAX_SPANS + 10):
                with qtrace.span("s"):
                    pass
        assert trace.span_count == qtrace.MAX_SPANS
        assert trace.spans_dropped == 10 + 1

    def test_trace_completed_event(self):
        with events.BUS.subscribe_queue("trace.*") as sub:
            with qtrace.trace_query("q"):
                pass
            [event] = sub.drain()
        assert event.name == "trace.completed"
        assert event.attrs["trace"] == "q"


# -- reservoir sampling (satellite: ServingStats bias fix) -------------------


class TestReservoirSampling:
    def test_reservoir_stays_uniform_over_stream(self):
        """Algorithm R must keep early observations representable.

        The old ring buffer overwrote slots cyclically: after 3x
        wraparound the sample held only the newest window, so a
        latency regression in the first half of a run vanished from
        p95. With reservoir sampling the retained sample draws
        uniformly from the whole stream.
        """
        stats = ServingStats(max_latency_samples=500)
        # First half slow (1.0 s), second half fast (0.001 s).
        for _ in range(5_000):
            stats.record_completed(1.0)
        for _ in range(5_000):
            stats.record_completed(0.001)
        slow = sum(1 for v in stats._latencies if v == 1.0)
        # Uniform over the stream -> ~50% slow samples. The ring buffer
        # kept 0% (the last 500 observations were all fast).
        assert 0.35 <= slow / len(stats._latencies) <= 0.65
        assert stats.latency_percentile(0.95) == 1.0

    def test_reservoir_is_deterministic_across_runs(self):
        def run():
            stats = ServingStats(max_latency_samples=50)
            for i in range(1_000):
                stats.record_completed(float(i))
            return list(stats._latencies)

        assert run() == run()

    def test_fragment_reservoir_uses_same_scheme(self):
        stats = ServingStats(max_latency_samples=100)
        stats.record_shard_query(2, 6, fragment_seconds=[1.0] * 500)
        stats.record_shard_query(2, 6, fragment_seconds=[0.001] * 500)
        slow = sum(1 for v in stats._fragment_latencies if v == 1.0)
        assert 0.25 <= slow / len(stats._fragment_latencies) <= 0.75


# -- database lifecycle (satellite: close() teardown) ------------------------


class TestDatabaseClose:
    def test_close_is_idempotent(self):
        db = Database()
        db.close()
        db.close()  # second close must be a no-op, not an error

    def test_close_emits_database_closed(self, shard_table):
        db = distributed_db(shard_table, shards=4)
        db.execute("SELECT COUNT(*) AS n FROM t WHERE grp = 3")
        with events.BUS.subscribe_queue("database.*") as sub:
            db.close()
            names = [e.name for e in sub.drain()]
        assert names == ["database.closed"]
        db.close()  # idempotent even after a runtime existed

    def test_context_manager_closes(self, shard_table):
        from repro.distributed.runtime import live_pool_runtimes

        with Database(
            options=ExecutionOptions(
                max_workers=2, distributed_mode="process"
            )
        ) as db:
            db.register_table("t", shard_table)
            db.shard_table("t", "grp", 2)
            db.execute("SELECT COUNT(*) AS n FROM t WHERE grp = 3")
            assert len(live_pool_runtimes()) >= 1
        # __exit__ closed the runtime: no pool survives the with-block.
        assert db._distributed is None
        assert not live_pool_runtimes()


# -- server stats surface ----------------------------------------------------


class TestServerStats:
    @pytest.fixture()
    def session(self):
        rng = np.random.default_rng(0)
        n = 200
        db = Database()
        db.register_table(
            "applicants",
            Table.from_dict(
                {
                    "id": np.arange(n),
                    "age": rng.uniform(18, 90, n),
                    "income": rng.normal(55.0, 20.0, n),
                }
            ),
        )
        return RavenSession(db)

    SQL = "SELECT id FROM applicants WHERE age < ? ORDER BY id"

    def test_stats_is_attribute_and_callable(self, session):
        with RavenServer(session, workers=1) as server:
            server.prepare("q", self.SQL)
            server.query("q", params=(40.0,), timeout=30)
            assert server.stats.completed == 1  # attribute surface
            snapshot = server.stats()  # callable surface -> full JSON
        assert snapshot["completed"] == 1
        assert "events" in snapshot
        json.dumps(snapshot)

    def test_enable_metrics_folds_serving_events(self, session):
        with RavenServer(session, workers=1) as server:
            server.prepare("q", self.SQL)
            registry = server.enable_metrics()
            assert server.enable_metrics() is registry  # idempotent
            server.query("q", params=(40.0,), timeout=30)
            snapshot = server.stats()
            assert snapshot["metrics"]["serving.completed"] == 1
            assert snapshot["metrics"]["serving.latency_seconds"]["count"] == 1
        assert not events.BUS.active  # shutdown detached the subscriber

    def test_traced_requests_produce_trace_dicts(self, session):
        with RavenServer(session, workers=1, trace_requests=True) as server:
            server.prepare("q", self.SQL)
            server.query("q", params=(40.0,), timeout=30)
            trace = server.last_trace()
        assert trace is not None
        assert trace["trace"] == "q"
        names = {c["name"] for c in trace["root"]["children"]}
        assert "bind_params" in names
        assert "execute" in names
        json.dumps(trace)

    def test_serving_events_emitted(self, session):
        with events.BUS.subscribe_queue("serving.*") as sub:
            with RavenServer(session, workers=1) as server:
                server.prepare("q", self.SQL)
                server.query("q", params=(40.0,), timeout=30)
            names = [e.name for e in sub.drain()]
        assert "serving.submitted" in names
        assert "serving.completed" in names


# -- end-to-end trace correctness (satellite: sharded PREDICT-over-join) -----


class TestDistributedTraceCorrectness:
    def test_sharded_predict_trace_spans_are_consistent(
        self, shard_table, shard_pipeline
    ):
        """One served query -> one trace whose fragment spans nest under
        the gather span and sum to (at most) its duration."""
        db = distributed_db(shard_table, shard_pipeline, shards=6)
        try:
            session = RavenSession(db)
            with RavenServer(
                session, workers=1, trace_requests=True
            ) as server:
                future = server.submit_sql(PREDICT_SQL.format(value=7))
                result = future.result(timeout=60)
                trace_dict = server.last_trace()
            assert result.num_rows > 0
            assert trace_dict is not None

            def find(node, name):
                found = [node] if node["name"] == name else []
                for child in node["children"]:
                    found.extend(find(child, name))
                return found

            root = trace_dict["root"]
            gathers = find(root, "gather")
            assert len(gathers) == 1
            gather = gathers[0]
            # Every fragment span is a *direct child* of the gather span
            # (stable parentage), and none exist anywhere else.
            fragments = [
                c for c in gather["children"] if c["name"] == "fragment"
            ]
            assert len(fragments) == len(find(root, "fragment"))
            # grp = 7 routes to exactly the shards holding that group.
            assert len(fragments) == gather["attrs"]["shards_scanned"]
            assert gather["attrs"]["shards_scanned"] < 6  # pruning worked
            # In-process dispatch runs fragments sequentially inside the
            # gather, so their durations sum to at most the gather's
            # (scheduling slack only adds to the gather side).
            fragment_total = sum(f["duration_ms"] for f in fragments)
            assert fragment_total <= gather["duration_ms"] * 1.01
            # Worker-side timings shipped back in the task protocol.
            for fragment in fragments:
                assert fragment["attrs"]["worker_seconds"] is not None
                assert fragment["attrs"]["rows"] >= 0
            # Routing happened under the trace too.
            assert len(find(root, "routing")) == 1
            json.dumps(trace_dict)  # single JSON-serializable trace
        finally:
            db.close()

    def test_trace_survives_degraded_pool(self, shard_table, shard_pipeline):
        """Parentage stays stable when the pool degrades to in-process."""
        db = distributed_db(shard_table, shard_pipeline, shards=4)
        try:
            with events.BUS.subscribe_queue("distributed.*") as sub:
                with qtrace.trace_query("degraded") as trace:
                    db.execute(PREDICT_SQL.format(value=3))
                gather_events = [
                    e for e in sub.drain() if e.name == "distributed.gather"
                ]
            assert len(gather_events) == 1
            assert gather_events[0].attrs["scanned"] >= 1
            [gather] = trace.find("gather")
            fragments = trace.find("fragment")
            assert fragments
            assert all(f in gather.children for f in fragments)
        finally:
            db.close()


# -- EXPLAIN ANALYZE ---------------------------------------------------------


class TestExplainAnalyze:
    @pytest.fixture()
    def db(self):
        rng = np.random.default_rng(5)
        n = 5_000
        database = Database()
        database.register_table(
            "people",
            Table.from_dict(
                {
                    "id": np.arange(n, dtype=np.int64),
                    "age": rng.uniform(18, 90, n),
                    "city": rng.integers(0, 20, n).astype(np.int64),
                }
            ),
        )
        return database

    def test_plain_explain_has_no_actuals(self, db):
        lines = db.execute(
            "EXPLAIN SELECT id FROM people WHERE age < 30"
        ).column("plan")
        text = "\n".join(lines)
        assert "est_rows=" in text
        assert "actual_rows=" not in text

    def test_analyze_prints_actuals_and_q_error(self, db):
        lines = db.execute(
            "EXPLAIN ANALYZE SELECT id FROM people WHERE age < 30"
        ).column("plan")
        text = "\n".join(lines)
        assert "actual_rows=" in text
        assert "time_ms=" in text
        assert "q_error=" in text
        assert "analyze: rows=" in text
        # The estimate-feedback hook recorded a per-table summary.
        summary = db.catalog.q_error_summary("people")
        assert summary is not None
        assert summary["count"] >= 1
        assert summary["max"] >= 1.0
        assert summary["geo_mean"] >= 1.0

    def test_analyze_q_error_accumulates(self, db):
        for _ in range(3):
            db.execute("EXPLAIN ANALYZE SELECT id FROM people WHERE age < 30")
        summary = db.catalog.q_error_summary("people")
        assert summary["count"] >= 3

    def test_analyze_on_sharded_plan(self, shard_table, shard_pipeline):
        db = distributed_db(shard_table, shard_pipeline, shards=4)
        try:
            lines = db.execute(
                PREDICT_SQL.format(value=7).replace(
                    "SELECT id, p.out", "EXPLAIN ANALYZE SELECT id, p.out", 1
                )
            ).column("plan")
            text = "\n".join(lines)
            assert "Gather" in text
            assert "actual_rows=" in text
            assert "q_error=" in text
            summary = db.catalog.q_error_summary("t")
            assert summary is not None and summary["count"] >= 1
        finally:
            db.close()

    def test_analyze_result_matches_execution(self, db):
        analyzed = db.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM people WHERE age < 30"
        )
        assert analyzed.num_rows > 0  # plan lines, not the query result
        # The analyze footer reports the executed query's result rows
        # (COUNT(*) returns exactly one).
        footer = [
            line for line in analyzed.column("plan") if "analyze: rows=" in line
        ]
        assert len(footer) == 1
        assert "rows=1" in footer[0]

    def test_q_error_floor_is_one(self):
        from repro.observability.explain import q_error

        assert q_error(100.0, 100) == 1.0
        assert q_error(0.0, 0) == 1.0
        assert q_error(10.0, 100) == pytest.approx(10.0)
        assert q_error(100.0, 10) == pytest.approx(10.0)


# -- plan-cache events -------------------------------------------------------


class TestPlanCacheEvents:
    def test_hit_miss_put_events(self):
        from repro.serving.plan_cache import CachedPlan, PlanCache

        cache = PlanCache(capacity=1)

        def entry(fp):
            return CachedPlan(
                fingerprint=fp,
                graph=None,
                report=None,
                generated_sql=None,
                param_names=(),
                data_names=(),
                model_refs=(),
            )

        with events.BUS.subscribe_queue("plan_cache.*") as sub:
            cache.get("a")  # miss
            cache.put(entry("a"))
            cache.get("a")  # hit
            cache.put(entry("b"))  # evicts a
            cache.invalidate("b")
            names = [e.name for e in sub.drain()]
        assert names == [
            "plan_cache.miss",
            "plan_cache.put",
            "plan_cache.hit",
            "plan_cache.put",
            "plan_cache.evict",
            "plan_cache.invalidate",
        ]
