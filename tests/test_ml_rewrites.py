"""Tests for the model rewrite machinery behind the cross-optimizer."""

import math

import numpy as np
import pytest

from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    UnsupportedRewrite,
    apply_predicate_pruning,
    apply_projection_pushdown,
    fold_linear_constants,
    fold_mlp_constants,
    pipeline_to_expression,
    propagate_facts,
    prune_tree,
    restrict_transformer,
    zero_weight_features,
)
from repro.ml import (
    Binarizer,
    ColumnTransformer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FeatureUnion,
    LogisticRegression,
    MLPClassifier,
    OneHotEncoder,
    Pipeline,
    RandomForestClassifier,
    StandardScaler,
)
from repro.relational.table import Table


class TestFactPropagation:
    def test_scaler(self):
        scaler = StandardScaler().fit(np.array([[0.0, 0.0], [10.0, 2.0]]))
        facts = ColumnFacts(constants={0: 10.0}, bounds={1: (0.0, 2.0)})
        out = propagate_facts(scaler, facts, 2)
        assert np.isclose(out.constants[0], 1.0)  # (10-5)/5
        assert np.isclose(out.bounds[1][0], -1.0)

    def test_binarizer(self):
        binarizer = Binarizer(threshold=0.5).fit(np.zeros((2, 2)))
        facts = ColumnFacts(bounds={0: (0.6, 2.0)}, constants={1: 0.2})
        out = propagate_facts(binarizer, facts, 2)
        assert out.constants[0] == 1.0
        assert out.constants[1] == 0.0

    def test_one_hot_constant_pins_all_outputs(self):
        encoder = OneHotEncoder().fit(np.array([[0.0], [1.0], [2.0]]))
        out = propagate_facts(encoder, ColumnFacts(constants={0: 1.0}), 1)
        assert out.constants == {0: 0.0, 1: 1.0, 2: 0.0}

    def test_one_hot_bounds_zero_out_of_range(self):
        encoder = OneHotEncoder().fit(np.array([[0.0], [1.0], [2.0], [3.0]]))
        out = propagate_facts(encoder, ColumnFacts(bounds={0: (1.0, 2.0)}), 1)
        assert out.constants[0] == 0.0 and out.constants[3] == 0.0
        assert 1 not in out.constants and 2 not in out.constants

    def test_unsupported_transformer(self):
        class Weird:
            pass

        with pytest.raises(UnsupportedRewrite):
            propagate_facts(Weird(), ColumnFacts(), 2)


class TestTreePruning:
    def build_tree(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(1500, 3))
        y = ((X[:, 0] > 5) & (X[:, 1] > 3)).astype(float)
        model = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        return model, X, y

    def test_prune_with_point_constant(self):
        model, X, _ = self.build_tree()
        pruned = prune_tree(model.tree_, ColumnFacts(constants={0: 8.0}))
        assert pruned.node_count < model.tree_.node_count
        # Predictions agree on the fixed slice.
        mask = np.isclose(X[:, 0], 8.0, atol=2.0) & (X[:, 0] > 5)

    def test_prune_correctness_on_restricted_domain(self):
        model, X, _ = self.build_tree()
        facts = ColumnFacts(bounds={0: (6.0, math.inf)})
        pruned = prune_tree(model.tree_, facts)
        mask = X[:, 0] >= 6.0
        original = model.tree_.leaf_values(X[mask])
        reduced = pruned.leaf_values(X[mask])
        assert np.allclose(original, reduced)

    def test_prune_noop_without_facts(self):
        model, _, _ = self.build_tree()
        pruned = prune_tree(model.tree_, ColumnFacts())
        assert pruned.node_count == model.tree_.node_count

    def test_prune_to_single_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = DecisionTreeClassifier().fit(X, y)
        pruned = prune_tree(model.tree_, ColumnFacts(bounds={0: (2.0, 3.0)}))
        assert pruned.node_count == 1


class TestConstantFolding:
    def test_linear_fold_preserves_scores(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = (X @ np.array([1.0, 2.0, -1.0, 0.5]) > 0).astype(float)
        model = LogisticRegression(max_iter=300).fit(X, y)
        folded, kept = fold_linear_constants(model, {1: 0.7})
        assert kept == [0, 2, 3]
        fixed = X.copy()
        fixed[:, 1] = 0.7
        assert np.allclose(
            model.decision_function(fixed),
            folded.decision_function(fixed[:, kept]),
        )

    def test_mlp_fold_preserves_probabilities(self, xy_binary):
        X, y = xy_binary
        model = MLPClassifier(
            hidden_layer_sizes=(8,), max_iter=15, random_state=0
        ).fit(X, y)
        folded, kept = fold_mlp_constants(model, {2: 1.5})
        fixed = X.copy()
        fixed[:, 2] = 1.5
        assert np.allclose(
            model.predict_proba(fixed), folded.predict_proba(fixed[:, kept])
        )

    def test_zero_weight_features_tolerance(self):
        model = LogisticRegression()
        model.coef_ = np.array([0.0, 0.001, 2.0])
        model.intercept_ = 0.0
        assert zero_weight_features(model) == [0]
        assert zero_weight_features(model, tolerance=0.01) == [0, 1]


class TestRestriction:
    def test_scaler_restriction(self):
        scaler = StandardScaler().fit(np.random.default_rng(0).normal(size=(50, 4)))
        new, needed = restrict_transformer(scaler, [1, 3], 4)
        assert needed == [1, 3]
        assert np.allclose(new.mean_, scaler.mean_[[1, 3]])

    def test_one_hot_restriction_drops_categories(self):
        encoder = OneHotEncoder().fit(
            np.column_stack([np.repeat([0.0, 1.0, 2.0], 5), np.repeat([7.0, 8.0], [5, 10])])
        )
        # Keep only category 1 of column 0 and category 8 of column 1.
        new, needed = restrict_transformer(encoder, [1, 4], 2)
        assert needed == [0, 1]
        assert [c.tolist() for c in new.categories_] == [[1.0], [8.0]]

    def test_feature_union_restriction_becomes_column_transformer(self):
        X = np.random.default_rng(0).normal(size=(40, 3))
        union = FeatureUnion(
            [("sc", StandardScaler()), ("bin", Binarizer())]
        ).fit(X)
        new, needed = restrict_transformer(union, [0, 5], 3)  # sc col0, bin col2
        assert isinstance(new, ColumnTransformer)
        assert needed == [0, 2]
        restricted = new.transform(X[:, needed])
        full = union.transform(X)[:, [0, 5]]
        assert np.allclose(restricted, full)

    def test_column_transformer_restriction(self):
        X = np.column_stack(
            [np.repeat([0.0, 1.0, 2.0], 10), np.arange(30.0), np.ones(30)]
        )
        ct = ColumnTransformer(
            [("oh", OneHotEncoder(), [0]), ("sc", StandardScaler(), [1, 2])]
        ).fit(X)
        # keep one-hot cat 2 (output 2) and scaled col 1 (output 3)
        new, needed = restrict_transformer(ct, [2, 3], 3)
        assert needed == [0, 1]
        out = new.transform(X[:, needed])
        full = ct.transform(X)[:, [2, 3]]
        assert np.allclose(out, full)


class TestEndToEndRewrites:
    def test_predicate_pruning_exact_on_subset(self, hospital_small):
        _db, dataset, pipeline = hospital_small
        facts = ColumnFacts(constants={1: 1.0})  # pregnant = 1
        result = apply_predicate_pruning(pipeline, facts)
        assert result.detail["nodes_after"] <= result.detail["nodes_before"]
        mask = dataset.features[:, 1] == 1.0
        reference = pipeline.predict(dataset.features[mask])
        reduced = result.pipeline.predict(
            dataset.features[mask][:, result.kept_inputs]
        )
        assert np.array_equal(reference, reduced)

    def test_forest_pruning(self, xy_binary):
        X, y = xy_binary
        forest_pipe = Pipeline(
            [
                ("sc", StandardScaler()),
                (
                    "rf",
                    RandomForestClassifier(
                        n_estimators=5, max_depth=5, random_state=0
                    ),
                ),
            ]
        ).fit(X, y)
        result = apply_predicate_pruning(
            forest_pipe, ColumnFacts(bounds={0: (1.0, math.inf)})
        )
        assert result.detail["nodes_after"] < result.detail["nodes_before"]
        mask = X[:, 0] >= 1.0
        assert np.array_equal(
            forest_pipe.predict(X[mask]),
            result.pipeline.predict(X[mask][:, result.kept_inputs]),
        )

    def test_projection_pushdown_zero_weights(self, fitted_logistic_pipeline, xy_binary):
        X, _ = xy_binary
        result = apply_projection_pushdown(fitted_logistic_pipeline)
        assert result.detail["features_dropped"] > 0
        assert np.array_equal(
            fitted_logistic_pipeline.predict(X),
            result.pipeline.predict(X[:, result.kept_inputs]),
        )

    def test_projection_pushdown_tree_unused_features(self, xy_binary):
        X, y = xy_binary
        pipe = Pipeline(
            [("clf", DecisionTreeClassifier(max_depth=2, random_state=0))]
        ).fit(X, y)
        result = apply_projection_pushdown(pipe)
        used = pipe.final_estimator.tree_.used_features()
        assert set(result.kept_inputs) == used
        assert np.array_equal(
            pipe.predict(X), result.pipeline.predict(X[:, result.kept_inputs])
        )

    def test_lossy_pushdown_changes_predictions_little(self, xy_binary):
        X, y = xy_binary
        pipe = Pipeline(
            [("clf", LogisticRegression(penalty="l2", max_iter=300))]
        ).fit(X, y)
        result = apply_projection_pushdown(pipe, tolerance=0.05)
        reduced = result.pipeline.predict(X[:, result.kept_inputs])
        agreement = (reduced == pipe.predict(X)).mean()
        assert agreement > 0.95


class TestInliningExpressions:
    def test_tree_pipeline_to_case_expression(self, hospital_small):
        _db, dataset, pipeline = hospital_small
        from repro.data.hospital import QUERY_FEATURE_NAMES

        expression = pipeline_to_expression(pipeline, QUERY_FEATURE_NAMES)
        table = Table.from_dict(
            {
                name: dataset.features[:, i]
                for i, name in enumerate(QUERY_FEATURE_NAMES)
            }
        )
        values = expression.evaluate(table)
        assert np.array_equal(
            values.astype(float), pipeline.predict(dataset.features)
        )

    def test_logistic_pipeline_to_expression(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] - X[:, 2] > 0).astype(float)
        pipe = Pipeline(
            [("sc", StandardScaler()), ("clf", LogisticRegression(max_iter=300))]
        ).fit(X, y)
        expression = pipeline_to_expression(pipe, ["a", "b", "c"])
        table = Table.from_dict({"a": X[:, 0], "b": X[:, 1], "c": X[:, 2]})
        assert np.array_equal(
            expression.evaluate(table).astype(float), pipe.predict(X)
        )

    def test_one_hot_pipeline_to_expression(self):
        rng = np.random.default_rng(5)
        X = np.column_stack(
            [rng.integers(0, 4, 200).astype(float), rng.normal(size=200)]
        )
        y = ((X[:, 0] == 2) | (X[:, 1] > 1)).astype(float)
        pipe = Pipeline(
            [
                (
                    "ct",
                    ColumnTransformer(
                        [
                            ("oh", OneHotEncoder(), [0]),
                            ("sc", StandardScaler(), [1]),
                        ]
                    ),
                ),
                ("clf", DecisionTreeClassifier(max_depth=4, random_state=0)),
            ]
        ).fit(X, y)
        expression = pipeline_to_expression(pipe, ["cat", "num"])
        table = Table.from_dict({"cat": X[:, 0], "num": X[:, 1]})
        assert np.array_equal(
            expression.evaluate(table).astype(float), pipe.predict(X)
        )

    def test_regressor_inlining(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 2))
        y = X[:, 0] * 3.0
        pipe = Pipeline(
            [("clf", DecisionTreeRegressor(max_depth=4, random_state=0))]
        ).fit(X, y)
        expression = pipeline_to_expression(pipe, ["a", "b"])
        table = Table.from_dict({"a": X[:, 0], "b": X[:, 1]})
        assert np.allclose(expression.evaluate(table), pipe.predict(X))

    def test_mlp_not_inlinable(self, xy_binary):
        X, y = xy_binary
        pipe = Pipeline(
            [("clf", MLPClassifier(hidden_layer_sizes=(4,), max_iter=5))]
        ).fit(X, y)
        with pytest.raises(UnsupportedRewrite):
            pipeline_to_expression(pipe, [f"f{i}" for i in range(6)])


class TestEnsembleInlining:
    """§4.2: 'the same technique would work for tree ensembles'."""

    def test_forest_regressor_inlines_exactly(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(300, 3))
        y = X[:, 0] * 2.0 - X[:, 2] + np.sin(X[:, 1])
        from repro.ml import RandomForestRegressor

        pipe = Pipeline(
            [
                (
                    "rf",
                    RandomForestRegressor(
                        n_estimators=5, max_depth=4, random_state=0
                    ),
                )
            ]
        ).fit(X, y)
        expression = pipeline_to_expression(pipe, ["a", "b", "c"])
        table = Table.from_dict({"a": X[:, 0], "b": X[:, 1], "c": X[:, 2]})
        assert np.allclose(expression.evaluate(table), pipe.predict(X))

    def test_gradient_boosting_inlines_exactly(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(250, 2))
        y = X[:, 0] ** 2 + X[:, 1]
        from repro.ml import GradientBoostingRegressor

        pipe = Pipeline(
            [
                (
                    "gb",
                    GradientBoostingRegressor(
                        n_estimators=8, max_depth=3, random_state=0
                    ),
                )
            ]
        ).fit(X, y)
        expression = pipeline_to_expression(pipe, ["a", "b"])
        table = Table.from_dict({"a": X[:, 0], "b": X[:, 1]})
        assert np.allclose(expression.evaluate(table), pipe.predict(X))

    def test_binary_forest_classifier_inlines_exactly(self, xy_binary):
        X, y = xy_binary
        pipe = Pipeline(
            [
                ("sc", StandardScaler()),
                (
                    "rf",
                    RandomForestClassifier(
                        n_estimators=5, max_depth=4, random_state=0
                    ),
                ),
            ]
        ).fit(X, y)
        names = [f"f{i}" for i in range(X.shape[1])]
        expression = pipeline_to_expression(pipe, names)
        table = Table.from_dict({n: X[:, i] for i, n in enumerate(names)})
        assert np.array_equal(
            expression.evaluate(table).astype(float), pipe.predict(X)
        )

    def test_multiclass_forest_rejected(self):
        rng = np.random.default_rng(10)
        X = rng.normal(size=(200, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5]).astype(float)  # 3 classes
        pipe = Pipeline(
            [
                (
                    "rf",
                    RandomForestClassifier(
                        n_estimators=3, max_depth=3, random_state=0
                    ),
                )
            ]
        ).fit(X, y)
        with pytest.raises(UnsupportedRewrite):
            pipeline_to_expression(pipe, ["a", "b"])
