"""Tests for the unified IR, schema inference, and static analysis."""

import numpy as np
import pytest

from repro.errors import IRValidationError, StaticAnalysisError
from repro.core.analysis import PythonStaticAnalyzer, SQLAnalyzer
from repro.core.analysis.type_inference import (
    TypeSet,
    infer_binop,
    infer_literal,
    narrow_with_schema,
)
from repro.core.ir import IRGraph, OpCategory, columns_required_above, infer_schema
from repro.ml import Pipeline, StandardScaler
from repro.relational.expressions import BinaryOp, col, lit
from repro.relational.types import DataType, Schema


def small_ir():
    graph = IRGraph()
    scan = graph.add(
        "ra.scan",
        table="t",
        schema=Schema.of(("a", DataType.FLOAT), ("b", DataType.FLOAT)),
    )
    filt = graph.add(
        "ra.filter", [scan.id], predicate=BinaryOp(">", col("a"), lit(1.0))
    )
    proj = graph.add("ra.project", [filt.id], items=[(col("a"), "a")])
    graph.set_output(proj)
    return graph, scan, filt, proj


class TestIRGraph:
    def test_categories(self):
        graph, scan, filt, proj = small_ir()
        assert scan.category is OpCategory.RA
        pipeline_node = graph.add(
            "mld.pipeline", [proj.id], pipeline=None, output_columns=()
        )
        assert pipeline_node.category is OpCategory.MLD

    def test_unknown_op_rejected(self):
        graph = IRGraph()
        with pytest.raises(IRValidationError):
            graph.add("ra.teleport")

    def test_topological_order_and_validate(self):
        graph, *_ = small_ir()
        ops = [n.op for n in graph.topological_order()]
        assert ops == ["ra.scan", "ra.filter", "ra.project"]
        graph.validate()

    def test_insert_above_and_splice_out(self):
        graph, scan, filt, proj = small_ir()
        inserted = graph.insert_above(
            scan, "ra.filter", predicate=BinaryOp("<", col("b"), lit(5.0))
        )
        assert filt.inputs == [inserted.id]
        graph.validate()
        graph.splice_out(inserted)
        assert filt.inputs == [scan.id]
        graph.validate()

    def test_insert_below(self):
        graph, scan, filt, proj = small_ir()
        limit = graph.insert_below(proj, 0, "ra.limit", count=3)
        assert proj.inputs == [limit.id]
        assert limit.inputs == [filt.id]
        graph.validate()

    def test_replace_and_gc(self):
        graph, scan, filt, proj = small_ir()
        replacement = graph.add("ra.limit", [scan.id], count=1)
        graph.replace(filt, replacement)
        removed = graph.garbage_collect()
        assert removed == 1  # the orphaned filter
        graph.validate()

    def test_copy_independent(self):
        graph, scan, *_ = small_ir()
        clone = graph.copy()
        clone.node(scan.id).attrs["table"] = "other"
        assert graph.node(scan.id).attrs["table"] == "t"

    def test_join_arity_validation(self):
        graph = IRGraph()
        scan = graph.add(
            "ra.scan", table="t", schema=Schema.of(("a", DataType.INT))
        )
        join = graph.add("ra.join", [scan.id], kind="INNER", condition=None)
        join.inputs = [scan.id]
        graph.set_output(join)
        with pytest.raises(IRValidationError):
            graph.validate()

    def test_pretty_mentions_ops(self):
        graph, *_ = small_ir()
        text = graph.pretty()
        assert "ra.scan(t)" in text and "ra.project" in text


class TestSchemaInference:
    def test_scan_filter_project(self):
        graph, scan, filt, proj = small_ir()
        assert infer_schema(graph, scan).names == ("a", "b")
        assert infer_schema(graph, filt).names == ("a", "b")
        assert infer_schema(graph, proj).names == ("a",)

    def test_predict_appends_aliased_outputs(self):
        graph, _, _, proj = small_ir()
        predict = graph.add(
            "mld.pipeline",
            [proj.id],
            pipeline=None,
            output_columns=(("score", DataType.FLOAT),),
            alias="p",
        )
        graph.set_output(predict)
        assert infer_schema(graph, predict).names == ("a", "p.score")

    def test_columns_required_above(self):
        graph, scan, filt, proj = small_ir()
        required = columns_required_above(graph, scan)
        assert required == {"a"}

    def test_udf_makes_requirements_opaque(self):
        graph, scan, filt, proj = small_ir()
        udf = graph.add("udf.python", [proj.id], source="x")
        graph.set_output(udf)
        assert columns_required_above(graph, scan) is None


class TestPythonAnalyzer:
    def test_pipeline_reconstruction(self):
        source = """
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier
model_pipeline = Pipeline([
    ('scaler', StandardScaler()),
    ('clf', DecisionTreeClassifier(max_depth=4)),
])
"""
        pipeline = PythonStaticAnalyzer().extract_pipeline(source)
        assert isinstance(pipeline, Pipeline)
        assert isinstance(pipeline.steps[0][1], StandardScaler)
        assert pipeline.final_estimator.max_depth == 4

    def test_dataframe_ops_become_ra(self):
        source = """
df = table('patients')
df = df[df.age > 30]
df = df[['age', 'bp']]
df
"""
        result = PythonStaticAnalyzer().analyze(source)
        plan = result.plan
        ops = [n.op for n in plan.topological_order()]
        assert ops == ["ra.scan", "ra.filter", "ra.project"]

    def test_merge_becomes_join(self):
        source = """
a = table('a')
b = table('b')
joined = a.merge(b, on='id')
joined
"""
        plan = PythonStaticAnalyzer().analyze(source).plan
        assert [n.op for n in plan.topological_order()] == [
            "ra.scan",
            "ra.scan",
            "ra.join",
        ]

    def test_predict_becomes_mld_node(self):
        source = """
from repro.ml.pipeline import Pipeline
from repro.ml.tree import DecisionTreeClassifier
model = Pipeline([('clf', DecisionTreeClassifier())])
df = table('patients')
scored = model.predict(df)
scored
"""
        plan = PythonStaticAnalyzer().analyze(source).plan
        assert plan.output.op == "mld.pipeline"

    def test_conditionals_fork_plans(self):
        source = """
df = table('t')
if flag:
    df = df[df.a > 1]
else:
    df = df[df.a > 2]
df
"""
        result = PythonStaticAnalyzer().analyze(source)
        assert len(result.plans) == 2

    def test_loops_become_udfs(self):
        source = """
df = table('t')
df = df[df.a > 1]
for i in range(3):
    df = something(df)
df
"""
        result = PythonStaticAnalyzer().analyze(source)
        assert result.udf_count >= 1
        assert any(n.op == "udf.python" for n in result.plan.nodes())

    def test_unknown_method_becomes_udf(self):
        source = """
df = table('t')
df = df.pivot_table(index='a')
df
"""
        result = PythonStaticAnalyzer().analyze(source)
        assert result.plan.output.op == "udf.python"

    def test_syntax_error_raises(self):
        with pytest.raises(StaticAnalysisError):
            PythonStaticAnalyzer().analyze("def broken(:\n    pass")

    def test_analysis_under_10ms(self):
        """The paper's §3.2 claim: static analysis < 10 ms typical."""
        import time

        source = """
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier
model_pipeline = Pipeline([('s', StandardScaler()), ('c', DecisionTreeClassifier())])
"""
        analyzer = PythonStaticAnalyzer()
        analyzer.analyze(source)  # warm imports
        start = time.perf_counter()
        analyzer.analyze(source)
        assert time.perf_counter() - start < 0.05  # generous CI margin


class TestSQLAnalyzer:
    def test_fig1_query_shape(self, hospital_small):
        database, _, _ = hospital_small
        from repro.data import hospital

        graph = SQLAnalyzer(database).analyze(hospital.INFERENCE_QUERY)
        ops = {n.op for n in graph.nodes()}
        assert "mld.pipeline" in ops
        assert "ra.join" in ops
        pipeline_node = graph.find("mld.pipeline")[0]
        assert pipeline_node.attrs["feature_names"] == hospital.QUERY_FEATURE_NAMES

    def test_tensor_flavor_lowered_to_la(self, simple_db):
        from repro.ml import DecisionTreeRegressor
        from repro.tensor import convert

        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        model = DecisionTreeRegressor(max_depth=3).fit(X, X[:, 0])
        simple_db.store_model(
            "graph_model",
            convert(model),
            flavor="tensor.graph",
            metadata={"feature_names": ["age", "salary"]},
        )
        graph = SQLAnalyzer(simple_db).analyze(
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'graph_model');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = people AS d) "
            "WITH (y float) AS p"
        )
        assert graph.find("la.tensor_graph")

    def test_script_flavor_falls_back_to_udf(self, simple_db):
        simple_db.store_model(
            "script_model", "output = input_columns['age'] * 2", flavor="python.script"
        )
        graph = SQLAnalyzer(simple_db).analyze(
            "DECLARE @m varbinary(max) = (SELECT model FROM scoring_models "
            "WHERE model_name = 'script_model');"
            "SELECT p.y FROM PREDICT(MODEL = @m, DATA = people AS d) "
            "WITH (y float) AS p"
        )
        assert graph.find("udf.python")


class TestTypeInference:
    def test_literals(self):
        assert infer_literal(3).types == {"int"}
        assert infer_literal("x").types == {"str"}
        assert infer_literal(None).types == {"none"}

    def test_binop_rules(self):
        i = TypeSet.exactly("int")
        f = TypeSet.exactly("float")
        assert infer_binop(i, f, "+").types == {"float"}
        assert infer_binop(i, i, "+").types == {"int"}
        assert infer_binop(i, i, "/").types == {"float"}
        assert infer_binop(i, f, "<").types == {"bool"}

    def test_lattice_join_meet(self):
        a = TypeSet.exactly("int", "float")
        b = TypeSet.exactly("float", "str")
        assert a.join(b).types == {"int", "float", "str"}
        assert a.meet(b).types == {"float"}
        assert a.meet(TypeSet.exactly("str")).is_contradiction

    def test_schema_narrowing(self):
        schema = Schema.of(("age", DataType.FLOAT), ("name", DataType.STRING))
        narrowed = narrow_with_schema(
            {"x": TypeSet.unknown()},
            {"x": ("people", "age")},
            {"people": schema},
        )
        assert narrowed["x"].types == {"float"}
