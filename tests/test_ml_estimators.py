"""Unit tests for the ML substrate: estimators, transformers, metrics."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml import (
    Binarizer,
    ColumnTransformer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FeatureUnion,
    GradientBoostingRegressor,
    KMeans,
    LabelEncoder,
    Lasso,
    LinearRegression,
    LogisticRegression,
    MinMaxScaler,
    MLPClassifier,
    MLPRegressor,
    OneHotEncoder,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    Ridge,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    roc_auc_score,
)


class TestPreprocessing:
    def test_standard_scaler_roundtrip(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(100, 4))
        scaler = StandardScaler().fit(X)
        Z = scaler.transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)
        assert np.allclose(scaler.inverse_transform(Z), X)

    def test_scaler_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)  # no division by zero

    def test_minmax_scaler(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z.ravel().tolist() == [0.0, 0.5, 1.0]

    def test_one_hot_layout_and_unknowns(self):
        X = np.array([[0.0, 10.0], [1.0, 20.0], [2.0, 10.0]])
        encoder = OneHotEncoder().fit(X)
        assert encoder.n_features_out_ == 5
        Z = encoder.transform(np.array([[1.0, 30.0]]))
        assert Z.tolist() == [[0.0, 1.0, 0.0, 0.0, 0.0]]  # unknown -> all zero
        strict = OneHotEncoder(handle_unknown="error").fit(X)
        with pytest.raises(MLError):
            strict.transform(np.array([[9.0, 10.0]]))

    def test_binarizer(self):
        Z = Binarizer(threshold=0.5).fit_transform(np.array([[0.2], [0.9]]))
        assert Z.ravel().tolist() == [0.0, 1.0]

    def test_imputer_strategies(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        mean = SimpleImputer("mean").fit_transform(X)
        assert mean[2, 0] == 2.0 and mean[0, 1] == 6.0
        const = SimpleImputer("constant", fill_value=-1.0).fit_transform(X)
        assert const[2, 0] == -1.0

    def test_label_encoder(self):
        encoder = LabelEncoder().fit(["b", "a", "c"])
        codes = encoder.transform(["a", "c"])
        assert codes.tolist() == [0, 2]
        assert encoder.inverse_transform(codes).tolist() == ["a", "c"]
        with pytest.raises(MLError):
            encoder.transform(["zz"])

    def test_not_fitted_errors(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))


class TestTrees:
    def test_perfect_split(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0
        assert tree.tree_.node_count == 3
        assert tree.tree_.threshold[0] == 1.5

    def test_max_depth_respected(self, xy_binary):
        X, y = xy_binary
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.tree_.max_depth() <= 3

    def test_min_samples_leaf(self, xy_binary):
        X, y = xy_binary
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        leaves = tree.tree_.n_node_samples[tree.tree_.feature == -1]
        assert (leaves >= 50).all()

    def test_regressor_reduces_mse(self, xy_binary):
        X, _ = xy_binary
        y = X[:, 0] * 2.0 + X[:, 2]
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert mean_squared_error(y, tree.predict(X)) < np.var(y) * 0.3

    def test_paths_align_with_leaves(self, fitted_tree_pipeline):
        tree = fitted_tree_pipeline.final_estimator.tree_
        assert len(tree.paths()) == len(tree.leaves_dfs()) == tree.n_leaves

    def test_decision_path_matches_predict(self, xy_binary):
        X, y = xy_binary
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        leaves = tree.tree_.decision_path_apply(X)
        proba = tree.tree_.value[leaves]
        assert np.allclose(proba, tree.predict_proba(X))

    def test_entropy_criterion(self, xy_binary):
        X, y = xy_binary
        tree = DecisionTreeClassifier(criterion="entropy", max_depth=4).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.85

    def test_bad_criterion_rejected(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier(criterion="chi2")


class TestEnsembles:
    def test_forest_beats_chance(self, xy_binary):
        X, y = xy_binary
        forest = RandomForestClassifier(
            n_estimators=10, max_depth=5, random_state=0
        ).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.9
        assert len(forest.estimators_) == 10

    def test_forest_deterministic_under_seed(self, xy_binary):
        X, y = xy_binary
        a = RandomForestClassifier(n_estimators=4, random_state=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=4, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_forest_regressor(self, xy_binary):
        X, _ = xy_binary
        y = X[:, 0] - 2.0 * X[:, 4]
        forest = RandomForestRegressor(
            n_estimators=8, max_depth=6, random_state=0
        ).fit(X, y)
        assert r2_score(y, forest.predict(X)) > 0.8

    def test_gradient_boosting_improves_with_rounds(self, xy_binary):
        X, _ = xy_binary
        y = np.sin(X[:, 0]) + X[:, 2]
        small = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        big = GradientBoostingRegressor(n_estimators=60, random_state=0).fit(X, y)
        assert mean_squared_error(y, big.predict(X)) < mean_squared_error(
            y, small.predict(X)
        )


class TestLinear:
    def test_ols_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [1.0, -2.0, 0.5], atol=1e-8)
        assert np.isclose(model.intercept_, 3.0)

    def test_ridge_shrinks(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 5))
        y = X @ np.ones(5)
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=100.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_lasso_produces_exact_zeros(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 8))
        y = X[:, 0] * 4.0 + X[:, 3] * -2.0 + rng.normal(scale=0.1, size=300)
        lasso = Lasso(alpha=0.5).fit(X, y)
        assert lasso.sparsity_ > 0.5
        assert lasso.coef_[0] != 0.0

    def test_logistic_l1_sparsity_monotone_in_C(self, xy_binary):
        X, y = xy_binary
        strong = LogisticRegression(penalty="l1", C=0.01, max_iter=500).fit(X, y)
        weak = LogisticRegression(penalty="l1", C=5.0, max_iter=500).fit(X, y)
        assert strong.sparsity_ >= weak.sparsity_
        assert accuracy_score(y, weak.predict(X)) > 0.9

    def test_logistic_predict_proba_sums_to_one(self, xy_binary):
        X, y = xy_binary
        model = LogisticRegression(max_iter=200).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_logistic_multiclass_rejected(self):
        X = np.zeros((3, 1))
        with pytest.raises(MLError):
            LogisticRegression().fit(X, np.array([0.0, 1.0, 2.0]))


class TestNeuralAndCluster:
    def test_mlp_classifier_learns(self, xy_binary):
        X, y = xy_binary
        mlp = MLPClassifier(
            hidden_layer_sizes=(16,), max_iter=80, random_state=0
        ).fit(X, y)
        assert accuracy_score(y, mlp.predict(X)) > 0.9
        assert len(mlp.loss_curve_) == mlp.n_iter_
        assert mlp.loss_curve_[-1] < mlp.loss_curve_[0]

    def test_mlp_regressor_learns(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = X[:, 0] * 2.0 - X[:, 1]
        mlp = MLPRegressor(
            hidden_layer_sizes=(16,), max_iter=150, random_state=0
        ).fit(X, y)
        assert r2_score(y, mlp.predict(X)) > 0.9

    def test_kmeans_separated_blobs(self):
        rng = np.random.default_rng(0)
        blobs = np.vstack(
            [rng.normal(c, 0.1, size=(50, 2)) for c in (0.0, 5.0, 10.0)]
        )
        km = KMeans(n_clusters=3, random_state=0).fit(blobs)
        labels = km.predict(blobs)
        # All points in one blob share a label.
        for start in range(0, 150, 50):
            assert len(set(labels[start : start + 50].tolist())) == 1

    def test_kmeans_more_clusters_lower_inertia(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        i2 = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        i8 = KMeans(n_clusters=8, random_state=0).fit(X).inertia_
        assert i8 < i2

    def test_kmeans_constant_feature_detection(self):
        X = np.column_stack(
            [
                np.repeat([0.0, 10.0], 50),
                np.random.default_rng(0).normal(size=100),
            ]
        )
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        constants = km.cluster_constant_features(X)
        assert all(0 in c for c in constants)


class TestPipelineCombinators:
    def test_pipeline_predict_matches_manual(self, xy_binary):
        X, y = xy_binary
        pipe = Pipeline(
            [("sc", StandardScaler()), ("clf", LogisticRegression(max_iter=200))]
        ).fit(X, y)
        manual = pipe.final_estimator.predict(
            pipe.named_steps["sc"].transform(X)
        )
        assert np.array_equal(pipe.predict(X), manual)

    def test_duplicate_step_names_rejected(self):
        with pytest.raises(MLError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_feature_union_width(self, xy_binary):
        X, _ = xy_binary
        union = FeatureUnion(
            [("sc", StandardScaler()), ("bin", Binarizer())]
        ).fit(X)
        assert union.transform(X).shape[1] == 2 * X.shape[1]
        assert union.n_features_out_ == 2 * X.shape[1]

    def test_column_transformer_blocks(self):
        X = np.column_stack(
            [np.repeat([0.0, 1.0, 2.0], 10), np.arange(30.0)]
        )
        ct = ColumnTransformer(
            [("oh", OneHotEncoder(), [0]), ("sc", StandardScaler(), [1])]
        ).fit(X)
        Z = ct.transform(X)
        assert Z.shape[1] == 4
        blocks = ct.output_blocks()
        assert blocks[0][2] == 3 and blocks[1][2] == 1

    def test_column_transformer_passthrough(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        ct = ColumnTransformer(
            [("sc", StandardScaler(), [0])], remainder="passthrough"
        ).fit(X)
        Z = ct.transform(X)
        assert Z.shape[1] == 3
        assert np.allclose(Z[:, 1:], X[:, 1:])

    def test_clone_resets_state(self, fitted_tree_pipeline):
        clone = fitted_tree_pipeline.clone()
        assert clone.final_estimator.tree_ is None

    def test_get_set_params(self):
        tree = DecisionTreeClassifier(max_depth=4)
        assert tree.get_params()["max_depth"] == 4
        tree.set_params(max_depth=2)
        assert tree.max_depth == 2
        with pytest.raises(MLError):
            tree.set_params(bogus=1)


class TestMetrics:
    def test_accuracy_and_confusion(self):
        y, p = np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])
        assert accuracy_score(y, p) == 0.75
        cm = confusion_matrix(y, p)
        assert cm.tolist() == [[2, 0], [1, 1]]

    def test_roc_auc_perfect_and_random(self):
        y = np.array([0, 0, 1, 1])
        assert roc_auc_score(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc_score(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
        assert roc_auc_score(y, np.array([0.5, 0.5, 0.5, 0.5])) == 0.5

    def test_roc_auc_requires_both_classes(self):
        with pytest.raises(MLError):
            roc_auc_score(np.ones(4), np.ones(4))

    def test_regression_metrics(self):
        y, p = np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0, 4.0])
        assert np.isclose(mean_squared_error(y, p), 1 / 3)
        assert np.isclose(mean_absolute_error(y, p), 1 / 3)
        assert r2_score(y, y) == 1.0

    def test_log_loss_bounds(self):
        y = np.array([1.0, 0.0])
        good = log_loss(y, np.array([0.99, 0.01]))
        bad = log_loss(y, np.array([0.01, 0.99]))
        assert good < 0.05 < bad

    def test_length_mismatch(self):
        with pytest.raises(MLError):
            accuracy_score(np.zeros(3), np.zeros(4))
