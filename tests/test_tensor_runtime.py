"""Tests for the tensor substrate: graphs, kernels, optimizer, sessions."""

import numpy as np
import pytest

from repro.errors import GraphValidationError, TensorError, UnsupportedOpError
from repro.tensor import (
    CPUDevice,
    Graph,
    InferenceSession,
    Node,
    SimulatedGPU,
    convert,
)
from repro.tensor import serialize
from repro.tensor.device import get_device
from repro.tensor.ops import estimate_cost, kernel_for
from repro.tensor.optimizer import (
    constant_fold,
    eliminate_dead_code,
    eliminate_identities,
    fuse_matmul_add,
    optimize,
)


def linear_graph():
    """X @ W + b with W, b constant."""
    graph = Graph(inputs=["X"], outputs=["y"])
    graph.add_initializer("W", np.array([[2.0], [3.0]]))
    graph.add_initializer("b", np.array([[1.0]]))
    graph.add_node("MatMul", ["X", "W"], ["xw"])
    graph.add_node("Add", ["xw", "b"], ["y"])
    return graph


class TestGraphStructure:
    def test_validate_ok(self):
        linear_graph().validate()

    def test_undefined_input_rejected(self):
        graph = Graph(inputs=["X"], outputs=["y"])
        graph.add_node("Relu", ["ghost"], ["y"])
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_duplicate_producer_rejected(self):
        graph = Graph(inputs=["X"], outputs=["y"])
        graph.add_node("Relu", ["X"], ["y"])
        graph.add_node("Tanh", ["X"], ["y"])
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_cycle_rejected(self):
        graph = Graph(inputs=["X"], outputs=["a"])
        graph.nodes.append(Node("Add", ["X", "b"], ["a"]))
        graph.nodes.append(Node("Relu", ["a"], ["b"]))
        with pytest.raises(GraphValidationError):
            graph.topological_order()

    def test_topological_order(self):
        graph = linear_graph()
        order = [n.op_type for n in graph.topological_order()]
        assert order == ["MatMul", "Add"]

    def test_fresh_names_unique(self):
        graph = linear_graph()
        names = {graph.fresh_name() for _ in range(10)}
        assert len(names) == 10


class TestKernels:
    def test_gemm_transpose_and_alpha(self):
        gemm = kernel_for("Gemm")
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0], [4.0]])
        out = gemm([a, b], {})[0]
        assert out.tolist() == [[11.0]]
        out2 = gemm([a.T, b, np.zeros((1, 1))], {"transA": True, "alpha": 2.0})[0]
        assert out2.tolist() == [[22.0]]

    def test_elementwise_and_comparisons(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert kernel_for("Relu")([x], {})[0].tolist() == [0.0, 0.0, 2.0]
        assert kernel_for("Sigmoid")([np.zeros(1)], {})[0][0] == 0.5
        assert kernel_for("LessOrEqual")([x, np.zeros(3)], {})[0].tolist() == [
            True,
            True,
            False,
        ]
        assert kernel_for("Where")(
            [np.array([True, False]), np.ones(2), np.zeros(2)], {}
        )[0].tolist() == [1.0, 0.0]

    def test_shape_ops(self):
        x = np.arange(6.0).reshape(2, 3)
        assert kernel_for("Reshape")([x], {"shape": [3, 2]})[0].shape == (3, 2)
        assert kernel_for("Transpose")([x], {})[0].shape == (3, 2)
        assert kernel_for("Slice")([x], {"axis": 1, "start": 1, "stop": 3})[
            0
        ].shape == (2, 2)
        gathered = kernel_for("Gather")(
            [x, np.array([2, 0])], {"axis": 1}
        )[0]
        assert gathered[:, 0].tolist() == [2.0, 5.0]

    def test_softmax_rows_sum_to_one(self):
        out = kernel_for("Softmax")([np.random.default_rng(0).normal(size=(4, 3))], {})[0]
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_reductions(self):
        x = np.arange(6.0).reshape(2, 3)
        assert kernel_for("ReduceSum")([x], {"axis": 1})[0].tolist() == [3.0, 12.0]
        assert kernel_for("ArgMax")([x], {"axis": 1})[0].tolist() == [2, 2]

    def test_unknown_op(self):
        with pytest.raises(UnsupportedOpError):
            kernel_for("Conv3D")

    def test_cost_estimates_scale(self):
        small = estimate_cost("MatMul", [np.zeros((10, 10)), np.zeros((10, 10))])
        big = estimate_cost("MatMul", [np.zeros((100, 10)), np.zeros((10, 10))])
        assert big.flops == 10 * small.flops


class TestGraphOptimizer:
    def test_constant_fold_removes_constant_subgraph(self):
        graph = Graph(inputs=["X"], outputs=["y"])
        graph.add_initializer("a", np.array(2.0))
        graph.add_initializer("b", np.array(3.0))
        graph.add_node("Mul", ["a", "b"], ["ab"])
        graph.add_node("Add", ["X", "ab"], ["y"])
        folded = constant_fold(graph)
        assert len(folded.nodes) == 1
        assert folded.initializers["ab"] == 6.0

    def test_identity_elimination(self):
        graph = Graph(inputs=["X"], outputs=["y"])
        graph.add_initializer("zero", np.zeros(1))
        graph.add_node("Identity", ["X"], ["a"])
        graph.add_node("Add", ["a", "zero"], ["y"])
        slim = eliminate_identities(graph)
        assert slim.outputs == ["X"]
        assert len(slim.nodes) == 0

    def test_dead_code_elimination(self):
        graph = linear_graph()
        graph.add_node("Relu", ["xw"], ["unused"])
        assert len(eliminate_dead_code(graph).nodes) == 2

    def test_gemm_fusion(self):
        fused = fuse_matmul_add(linear_graph())
        assert [n.op_type for n in fused.nodes] == ["Gemm"]

    def test_optimize_preserves_semantics(self):
        graph = linear_graph()
        x = np.array([[1.0, 1.0], [2.0, 0.0]])
        raw = InferenceSession(graph, optimize_graph=False).run({"X": x})[0]
        optimized = InferenceSession(optimize(graph)).run({"X": x})[0]
        assert np.allclose(raw, optimized)


class TestSessions:
    def test_run_and_missing_feed(self):
        session = InferenceSession(linear_graph())
        out = session.run({"X": np.array([[1.0, 1.0]])})[0]
        assert out.tolist() == [[6.0]]
        with pytest.raises(TensorError):
            session.run({})

    def test_run_single(self):
        session = InferenceSession(linear_graph())
        assert session.run_single(np.array([[0.0, 1.0]])).tolist() == [[4.0]]

    def test_stats_populated(self):
        session = InferenceSession(linear_graph())
        session.run({"X": np.ones((10, 2))})
        stats = session.last_run_stats
        assert stats is not None and stats.ops_executed >= 1
        assert stats.wall_seconds > 0

    def test_serialization_roundtrip(self, tmp_path):
        graph = linear_graph()
        path = serialize.save_graph(graph, tmp_path / "model.json")
        restored = serialize.load_graph(path)
        x = np.array([[3.0, -1.0]])
        assert np.allclose(
            InferenceSession(restored).run({"X": x})[0],
            InferenceSession(graph).run({"X": x})[0],
        )

    def test_serialize_rejects_bad_version(self):
        with pytest.raises(TensorError):
            serialize.loads('{"format_version": 99}')


class TestDevices:
    def test_get_device(self):
        assert isinstance(get_device("cpu"), CPUDevice)
        assert isinstance(get_device("gpu"), SimulatedGPU)
        with pytest.raises(Exception):
            get_device("tpu")

    def test_gpu_matches_cpu_results(self, xy_binary):
        X, y = xy_binary
        from repro.ml import RandomForestClassifier

        model = RandomForestClassifier(
            n_estimators=4, max_depth=4, random_state=0
        ).fit(X, y)
        graph = convert(model)
        cpu_out = InferenceSession(graph, device="cpu").run({"X": X})[0]
        gpu_out = InferenceSession(graph, device="gpu").run({"X": X})[0]
        assert np.allclose(cpu_out, gpu_out)

    def test_gpu_simulated_time_scales_with_batch(self):
        graph = linear_graph()
        gpu = InferenceSession(graph, device=SimulatedGPU())
        gpu.run({"X": np.ones((10, 2))})
        small = gpu.last_run_stats.simulated_seconds
        gpu.run({"X": np.ones((100_000, 2))})
        large = gpu.last_run_stats.simulated_seconds
        assert large > small

    def test_gpu_launch_floor(self):
        """Tiny batches are launch-latency bound, the Fig 2(d) crossover."""
        device = SimulatedGPU(kernel_launch_seconds=1e-3)
        graph = linear_graph()
        session = InferenceSession(graph, device=device)
        session.run({"X": np.ones((1, 2))})
        assert session.last_run_stats.simulated_seconds >= 1e-3


class TestConverters:
    @pytest.mark.parametrize("depth", [1, 3, 6])
    def test_tree_gemm_exact(self, xy_binary, depth):
        X, y = xy_binary
        from repro.ml import DecisionTreeClassifier

        model = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(X, y)
        out = InferenceSession(convert(model)).run({"X": X})[0]
        assert np.array_equal(out.ravel(), model.predict(X))

    def test_full_featurized_pipeline_exact(self):
        rng = np.random.default_rng(2)
        X = np.column_stack(
            [
                rng.integers(0, 5, 400).astype(float),
                rng.normal(size=400),
                rng.normal(size=400),
            ]
        )
        y = ((X[:, 0] == 2) | (X[:, 1] > 0)).astype(float)
        from repro.ml import (
            ColumnTransformer,
            LogisticRegression,
            OneHotEncoder,
            Pipeline,
            StandardScaler,
        )

        pipe = Pipeline(
            [
                (
                    "ct",
                    ColumnTransformer(
                        [
                            ("oh", OneHotEncoder(), [0]),
                            ("sc", StandardScaler(), [1, 2]),
                        ]
                    ),
                ),
                ("clf", LogisticRegression(max_iter=300)),
            ]
        ).fit(X, y)
        graph = convert(pipe)
        prediction, probability = InferenceSession(graph).run({"X": X})
        assert np.array_equal(prediction.ravel(), pipe.predict(X))
        assert np.allclose(probability.ravel(), pipe.predict_proba(X)[:, 1])

    def test_unsupported_model_raises(self):
        class Strange:
            pass

        with pytest.raises(UnsupportedOpError):
            convert(Strange())

    def test_single_leaf_tree(self):
        from repro.ml import DecisionTreeRegressor

        X = np.ones((10, 2))
        model = DecisionTreeRegressor().fit(X, np.full(10, 7.0))
        out = InferenceSession(convert(model)).run({"X": X})[0]
        assert np.allclose(out, 7.0)
