"""Tests for the MLflow-style model bundle format."""

import numpy as np
import pytest

from repro.errors import ModelFormatError
from repro.ml import (
    ColumnTransformer,
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    OneHotEncoder,
    Pipeline,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml import model_format


def roundtrip(model):
    return model_format.loads(model_format.dumps(model))


class TestRoundtrip:
    def test_tree_pipeline(self, fitted_tree_pipeline, xy_binary):
        X, _ = xy_binary
        restored = roundtrip(fitted_tree_pipeline)
        assert np.array_equal(
            restored.predict(X), fitted_tree_pipeline.predict(X)
        )

    def test_logistic(self, xy_binary):
        X, y = xy_binary
        model = LogisticRegression(max_iter=100).fit(X, y)
        restored = roundtrip(model)
        assert np.allclose(restored.coef_, model.coef_)
        assert np.array_equal(restored.classes_, model.classes_)

    def test_forest(self, xy_binary):
        X, _ = xy_binary
        y = X[:, 0] * 2.0
        model = RandomForestRegressor(
            n_estimators=4, max_depth=4, random_state=0
        ).fit(X, y)
        restored = roundtrip(model)
        assert np.allclose(restored.predict(X), model.predict(X))

    def test_mlp(self, xy_binary):
        X, y = xy_binary
        model = MLPClassifier(
            hidden_layer_sizes=(8,), max_iter=20, random_state=0
        ).fit(X, y)
        restored = roundtrip(model)
        assert np.array_equal(restored.predict(X), model.predict(X))

    def test_column_transformer_pipeline(self):
        X = np.column_stack(
            [np.repeat([0.0, 1.0, 2.0], 20), np.arange(60.0)]
        )
        y = (X[:, 0] == 1.0).astype(float)
        pipe = Pipeline(
            [
                (
                    "ct",
                    ColumnTransformer(
                        [
                            ("oh", OneHotEncoder(), [0]),
                            ("sc", StandardScaler(), [1]),
                        ]
                    ),
                ),
                ("clf", DecisionTreeClassifier(max_depth=3)),
            ]
        ).fit(X, y)
        restored = roundtrip(pipe)
        assert np.array_equal(restored.predict(X), pipe.predict(X))


class TestBundleFiles:
    def test_save_and_load_directory(self, tmp_path, fitted_tree_pipeline, xy_binary):
        X, _ = xy_binary
        path = model_format.save_model(
            fitted_tree_pipeline,
            tmp_path / "bundle",
            metadata={"feature_names": ["a", "b", "c", "d", "e", "f"]},
        )
        assert (path / "MLmodel").exists()
        descriptor = model_format.load_metadata(path)
        assert descriptor["flavor"] == "repro.ml"
        assert descriptor["metadata"]["feature_names"][0] == "a"
        restored = model_format.load_model(path)
        assert np.array_equal(
            restored.predict(X), fitted_tree_pipeline.predict(X)
        )

    def test_missing_bundle(self, tmp_path):
        with pytest.raises(ModelFormatError):
            model_format.load_model(tmp_path / "nope")

    def test_malformed_json(self):
        with pytest.raises(ModelFormatError):
            model_format.loads("{not json")

    def test_wrong_version(self):
        with pytest.raises(ModelFormatError):
            model_format.loads('{"format_version": 999, "model": null}')

    def test_no_pickle_in_payload(self, fitted_tree_pipeline):
        payload = model_format.dumps(fitted_tree_pipeline)
        assert "pickle" not in payload
        assert payload.startswith("{")  # plain JSON
