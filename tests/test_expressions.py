"""Unit tests for scalar expressions: evaluation, SQL text, fact extraction."""

import math

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    FunctionCall,
    InList,
    Literal,
    UnaryOp,
    col,
    conjoin,
    conjuncts,
    equality_constants,
    lit,
    range_bounds,
)
from repro.relational.sql.parser import parse_expression
from repro.relational.table import Table
from repro.relational.types import DataType, Schema


@pytest.fixture()
def table():
    return Table.from_dict(
        {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([10.0, 20.0, 30.0, 40.0]),
            "s": np.array(["x", "y", "x", "z"]),
        }
    )


class TestEvaluation:
    def test_arithmetic(self, table):
        expr = BinaryOp("+", col("a"), BinaryOp("*", col("b"), lit(2)))
        assert expr.evaluate(table).tolist() == [21.0, 42.0, 63.0, 84.0]

    def test_operator_builders(self, table):
        combined = BinaryOp(">", col("a"), lit(1.5)) & BinaryOp(
            "<", col("b"), lit(40.0)
        )
        assert combined.op == "AND"
        assert (~combined).op == "NOT"

    def test_comparison_and_boolean_eval(self, table):
        expr = BinaryOp(
            "AND",
            BinaryOp(">", col("a"), lit(1.5)),
            BinaryOp("<", col("b"), lit(40.0)),
        )
        assert expr.evaluate(table).tolist() == [False, True, True, False]

    def test_unary(self, table):
        assert UnaryOp("-", col("a")).evaluate(table)[0] == -1.0
        assert UnaryOp("NOT", BinaryOp(">", col("a"), lit(2))).evaluate(
            table
        ).tolist() == [True, True, False, False]

    def test_in_list(self, table):
        expr = InList(col("s"), ("x", "z"))
        assert expr.evaluate(table).tolist() == [True, False, True, True]

    def test_case_when_first_match_wins(self, table):
        expr = CaseWhen(
            (
                (BinaryOp(">", col("a"), lit(3.0)), lit(100.0)),
                (BinaryOp(">", col("a"), lit(1.0)), lit(50.0)),
            ),
            lit(0.0),
        )
        assert expr.evaluate(table).tolist() == [0.0, 50.0, 50.0, 100.0]

    def test_function_call(self, table):
        assert FunctionCall("ABS", (UnaryOp("-", col("a")),)).evaluate(table)[
            -1
        ] == 4.0
        sig = FunctionCall("SIGMOID", (lit(0.0),)).evaluate(table)
        assert np.allclose(sig, 0.5)

    def test_unknown_function_raises(self, table):
        with pytest.raises(ExecutionError):
            FunctionCall("NOPE", (col("a"),)).evaluate(table)

    def test_unknown_operator_raises(self, table):
        with pytest.raises(ExecutionError):
            BinaryOp("XOR", col("a"), col("b")).evaluate(table)


class TestTypesAndSql:
    def test_output_types(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        assert BinaryOp("+", col("a"), lit(1)).output_type(schema) is DataType.INT
        assert BinaryOp("/", col("a"), lit(2)).output_type(schema) is DataType.FLOAT
        assert BinaryOp(">", col("a"), col("b")).output_type(schema) is DataType.BOOL

    def test_sql_text_roundtrip(self, table):
        expr = BinaryOp(
            "AND",
            BinaryOp("<=", col("a"), lit(3.0)),
            BinaryOp(">", col("b"), lit(15.0)),
        )
        reparsed = parse_expression(expr.to_sql())
        assert np.array_equal(reparsed.evaluate(table), expr.evaluate(table))

    def test_string_literal_escaping(self):
        assert Literal("it's").to_sql() == "'it''s'"

    def test_case_when_sql_roundtrip(self, table):
        expr = CaseWhen(
            ((BinaryOp(">", col("a"), lit(2.0)), lit(9.0)),), lit(1.0)
        )
        reparsed = parse_expression(expr.to_sql())
        assert np.array_equal(reparsed.evaluate(table), expr.evaluate(table))


class TestStructuralHelpers:
    def test_conjuncts_and_conjoin(self):
        expr = conjoin([lit(True), BinaryOp(">", col("a"), lit(1))])
        parts = conjuncts(expr)
        assert len(parts) == 2
        assert conjoin([]) == lit(True)

    def test_equality_constants_both_orders(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("=", col("t.pregnant"), lit(1)),
            BinaryOp("=", lit(5.0), col("x")),
        )
        assert equality_constants(expr) == {"pregnant": 1, "x": 5.0}

    def test_range_bounds_intersection(self):
        expr = conjoin(
            [
                BinaryOp(">", col("age"), lit(30)),
                BinaryOp("<=", col("age"), lit(60)),
                BinaryOp("=", col("bp"), lit(120)),
            ]
        )
        bounds = range_bounds(expr)
        assert bounds["age"] == (30.0, 60.0)
        assert bounds["bp"] == (120.0, 120.0)

    def test_range_bounds_swapped_literal(self):
        expr = BinaryOp("<", lit(10), col("age"))  # 10 < age  =>  age > 10
        assert range_bounds(expr)["age"] == (10.0, math.inf)

    def test_columns_collects_all_refs(self):
        expr = CaseWhen(
            ((BinaryOp(">", col("a"), col("b")), col("c")),), lit(0.0)
        )
        assert expr.columns() == {"a", "b", "c"}

    def test_substitute(self, table):
        expr = BinaryOp("+", col("a"), col("b"))
        substituted = expr.substitute({"a": lit(100.0)})
        assert substituted.evaluate(table)[0] == 110.0

    def test_structural_equality_and_hash(self):
        left = BinaryOp(">", col("a"), lit(1))
        right = BinaryOp(">", col("a"), lit(1))
        assert left == right
        assert hash(left) == hash(right)
        assert left != BinaryOp(">=", col("a"), lit(1))
